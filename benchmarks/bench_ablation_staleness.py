"""Ablation: real-time scanning vs scanning a stale address list.

Section 6 argues that *aggregating NTP-sourced addresses into a list is
not useful* — end-user prefixes churn so fast that the list is outdated
almost immediately.  This bench quantifies that: it collects addresses
with real-time scanning, then re-scans the same address list after the
world has churned for a week, and compares responsive counts.
"""

from benchmarks.conftest import write_report
from repro.core.campaign import CampaignConfig, CollectionCampaign
from repro.core.realtime import RealTimeScanQueue
from repro.report import fmt_int, fmt_pct, render_table, shape_check
from repro.scan.engine import EngineConfig, ScanEngine
from repro.world.population import WorldConfig, build_world


def _run(delay_days: int):
    world = build_world(WorldConfig(scale=0.15))
    engine = ScanEngine(world.network, int("20010db800aa0000", 16) << 64,
                        EngineConfig(drive_clock=False))
    queue = RealTimeScanQueue(engine)
    campaign = CollectionCampaign(
        world, CampaignConfig(days=10, wire_fraction=0.0), scan_queue=queue)
    campaign.run()
    realtime_hits = {
        protocol: len(queue.results.responsive_addresses(protocol))
        for protocol in ("http", "https", "ssh", "coap")}

    for _ in range(delay_days):
        world.churn.step_day()
    batch_engine = ScanEngine(world.network,
                              int("20010db800ab0000", 16) << 64,
                              EngineConfig(drive_clock=False, seed=7))
    batch = batch_engine.run(sorted(campaign.dataset.addresses),
                             label="stale")
    batch_hits = {protocol: len(batch.responsive_addresses(protocol))
                  for protocol in ("http", "https", "ssh", "coap")}
    return realtime_hits, batch_hits


def test_ablation_staleness(benchmark):
    realtime, stale = benchmark.pedantic(_run, args=(7,), rounds=2,
                                         iterations=1)

    rows = []
    losses = []
    for protocol in ("http", "https", "ssh", "coap"):
        fresh, old = realtime[protocol], stale[protocol]
        loss = 1 - old / fresh if fresh else 0.0
        losses.append(loss)
        rows.append([protocol, fmt_int(fresh), fmt_int(old), fmt_pct(loss)])
    text = render_table(
        ["protocol", "real-time hits", "hits after 7 churn days",
         "lost to staleness"],
        rows, title="Ablation - real-time scanning vs a week-old list")

    checks = [
        shape_check("a stale list loses a large share of end-user hits "
                    "(the paper's 'lists are outdated almost immediately')",
                    max(losses) > 0.2),
        shape_check("real-time scanning finds at least as much everywhere",
                    all(realtime[p] >= stale[p]
                        for p in ("http", "https", "ssh", "coap"))),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("ablation_staleness", text)

    benchmark.extra_info.update({
        "max_loss": round(max(losses), 4),
    })
    assert max(losses) > 0.1
