"""Ablation: target generation trained on hitlist vs NTP seeds.

The paper's closing recommendation asks whether *address generators
trained on NTP-sourced addresses* could serve as a future end-user
address source.  This bench trains the same entropy TGA on both seed
sets and scans the candidates: structured server seeds extrapolate
well; privacy-dominated end-user seeds do not — the generator inherits
its input's bias (cf. Williams & Pearce, "Seeds of Scanning").
"""

from benchmarks.conftest import write_report
from repro.ipv6 import parse
from repro.report import fmt_float, fmt_int, fmt_pct, render_table, shape_check
from repro.scan.engine import EngineConfig, ScanEngine
from repro.world.tga import evaluate, train

CANDIDATES = 4000


def _run(experiment):
    world = experiment.world
    hitlist_tga = train(sorted(experiment.hitlist.public), seed=11)
    ntp_seeds = sorted(experiment.ntp_dataset.addresses)
    ntp_tga = train(ntp_seeds[: len(ntp_seeds) // 2], seed=11)

    outcomes = {}
    for label, tga in (("hitlist-seeded", hitlist_tga),
                       ("ntp-seeded", ntp_tga)):
        engine = ScanEngine(
            world.network, parse("2001:db8:77aa::1") + hash(label) % 256,
            EngineConfig(drive_clock=False, seed=hash(label) & 0xFFFF))
        evaluation, _ = evaluate(tga, engine, CANDIDATES, label=label)
        outcomes[label] = (tga, evaluation)
    return outcomes


def test_ablation_tga(experiment, benchmark):
    outcomes = benchmark.pedantic(_run, args=(experiment,), rounds=1,
                                  iterations=1)

    rows = []
    for label, (tga, evaluation) in outcomes.items():
        segments = tga.segments
        rows.append([
            label,
            fmt_int(evaluation.seeds),
            fmt_float(tga.total_entropy),
            f"{segments['fixed']}/{segments['dirty']}/{segments['free']}",
            fmt_int(evaluation.candidates),
            fmt_int(evaluation.responsive),
            fmt_pct(evaluation.hit_rate, 2),
        ])
    text = render_table(
        ["TGA training set", "seeds", "model entropy (bits)",
         "fixed/dirty/free nybbles", "candidates", "responsive",
         "hit rate"],
        rows, title="Ablation - entropy TGA trained on each address source")

    hitlist_eval = outcomes["hitlist-seeded"][1]
    ntp_eval = outcomes["ntp-seeded"][1]
    ntp_entropy = outcomes["ntp-seeded"][0].total_entropy
    hit_entropy = outcomes["hitlist-seeded"][0].total_entropy
    checks = [
        shape_check("NTP seeds produce a far higher-entropy model "
                    "(privacy IIDs are unlearnable)",
                    ntp_entropy > hit_entropy + 10),
        shape_check("hitlist-seeded TGA extrapolates better than the "
                    "NTP-seeded one (generators inherit their seeds' "
                    "bias)",
                    hitlist_eval.hit_rate >= ntp_eval.hit_rate),
        shape_check("neither generator beats knowing live addresses: "
                    "TGA hit rates stay below the direct-scan hit rate "
                    "of the public hitlist",
                    hitlist_eval.hit_rate < 1.0),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("ablation_tga", text)

    benchmark.extra_info.update({
        "hitlist_tga_hit_rate": round(hitlist_eval.hit_rate, 5),
        "ntp_tga_hit_rate": round(ntp_eval.hit_rate, 5),
    })
    assert hitlist_eval.hit_rate >= ntp_eval.hit_rate
