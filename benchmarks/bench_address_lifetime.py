"""Address lifetimes & survival (the staleness mechanics of Section 6)."""

from benchmarks.conftest import write_report
from repro.analysis import lifetime
from repro.report import fmt_float, fmt_int, fmt_pct, render_table, shape_check


def _both(experiment):
    return (lifetime.analyze(experiment.ntp_dataset),
            lifetime.survival_curve(experiment.ntp_dataset),
            lifetime.turnover_rate(experiment.ntp_dataset))


def test_address_lifetime(experiment, benchmark):
    report, curve, turnover = benchmark(_both, experiment)

    text = render_table(
        ["metric", "value"],
        [
            ["collected addresses", fmt_int(report.total_addresses)],
            ["single-sighting addresses",
             f"{fmt_int(report.single_sighting)} "
             f"({fmt_pct(report.single_sighting_share)})"],
            ["median observation span",
             f"{fmt_float(report.median_span_days, 2)} days"],
            ["share observed >= 7 days", fmt_pct(report.long_lived_share)],
            ["daily new-address turnover", fmt_pct(turnover)],
        ],
        title="NTP-collected address lifetimes")
    text += "\n\n" + render_table(
        ["still observed after", "share of addresses"],
        [[f"{day} d", fmt_pct(share)] for day, share in sorted(curve.items())])

    checks = [
        shape_check("most collected addresses are ephemeral (privacy "
                    "rotation + prefix churn)",
                    report.single_sighting_share > 0.4),
        shape_check("survival decays with age — a d-day-old list decays "
                    "with it (Section 6: 'outdated almost immediately')",
                    curve[14] < curve[3] < curve[1]),
        shape_check("a stable core exists (static premises, EUI-64 "
                    "routers)", report.long_lived_share > 0.005),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("address_lifetime", text)

    benchmark.extra_info.update({
        "single_sighting_share": round(report.single_sighting_share, 4),
        "turnover": round(turnover, 4),
    })
    assert report.single_sighting_share > 0.4
    assert curve[14] < curve[1]
