"""The monlist amplification study: exposure shares and worker parity.

Benchmarks ``api.amplification`` (the mode-6/7 control-plane scan over
the profiled pool) and commits its rendered exposure/distribution
artefact.  Two unconditional gates ride along: the seeded exposure
share must sit in the paper's plausible band, and a 2-worker run must
reproduce the sequential table byte for byte.
"""

from benchmarks.conftest import write_report
from repro import api
from repro.report import fmt_int, fmt_pct, shape_check

CONFIG = dict(servers=96, seed=20240720, max_entries=48)


def _amplification_run(workers=0):
    return api.amplification(api.AmplificationConfig(
        workers=workers, **CONFIG))


def test_amplification_study(benchmark):
    """Full study at bench scale: 96 profiled servers, 4 shards."""
    result = benchmark.pedantic(_amplification_run, rounds=3, iterations=1)
    with api.ExecutionContext(workers=2) as ctx:
        pooled = api.amplification(
            api.AmplificationConfig(workers=2, **CONFIG), ctx=ctx)

    exposure = result.exposure
    distribution = result.distribution
    parity_identical = pooled.table == result.table
    # Czyz et al. measured ~7% of v4 servers still open in 2014 after
    # the patch shipped; our seeded pool models the pre-cleanup era the
    # paper's Fig 2/3 describes — 12% v3 + 28% unpatched v4 gives an
    # expected exposure share near 40%.
    gate_passed = 0.2 <= exposure.exposed_share <= 0.6 \
        and distribution.maximum <= 60.0

    text = result.table
    text += (f"\n\nresponsive servers: {fmt_int(exposure.responsive)} "
             f"({fmt_pct(exposure.exposed_share)} answer monlist)")
    text += "\n\n" + shape_check(
        "monlist exposure share in the seeded band (20-60%)",
        0.2 <= exposure.exposed_share <= 0.6)
    text += "\n" + shape_check(
        "amplification bounded by the 48-entry table (max <= 60x)",
        distribution.maximum <= 60.0)
    text += "\n" + shape_check(
        "pooled scan (2 workers) reproduces the table byte for byte",
        parity_identical)
    write_report("amplification", text)

    benchmark.extra_info.update({
        "responsive": exposure.responsive,
        "exposed": exposure.exposed,
        "exposed_share": round(exposure.exposed_share, 4),
        "mean_amplification": round(distribution.mean, 2),
        "max_amplification": round(distribution.maximum, 2),
        "gate_armed": True,
        "gate_status": "armed-passed" if gate_passed else "armed-failed",
        "parity_identical": parity_identical,
    })
    assert gate_passed, (
        f"exposure {exposure.exposed_share:.1%} / "
        f"max {distribution.maximum:.1f}x outside the seeded band")
    assert parity_identical
