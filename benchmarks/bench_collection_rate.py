"""Collection rate over time (Section 3.2's "constant rate" claim)."""

from benchmarks.conftest import write_report
from repro.report import fmt_int, render_table, shape_check


def test_collection_rate(experiment, benchmark):
    histogram = benchmark(experiment.ntp_dataset.new_addresses_per_day)

    # The experiment's clock starts after the R&L campaign and the gap,
    # so normalize day indices to the campaign's own window.
    days = sorted(histogram)
    first = days[0]
    rows = [[f"day {day - first + 1}", fmt_int(histogram[day])]
            for day in days]
    text = render_table(["collection day", "new addresses"], rows,
                        title="New distinct addresses per collection day")

    counts = [histogram[day] for day in days]
    # Ignore day 1 (everything is new) when judging steadiness.
    tail = counts[1:]
    steady = min(tail) > 0.25 * (sum(tail) / len(tail)) if tail else False
    checks = [
        shape_check("new addresses keep arriving on every collection day "
                    "(paper: 'a constant rate of new addresses over the "
                    "complete collection period')",
                    all(count > 0 for count in counts)),
        shape_check("the discovery rate does not collapse after day 1 "
                    "(prefix churn keeps minting addresses)", steady),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("collection_rate", text)

    benchmark.extra_info.update({
        "days": len(days),
        "day1": counts[0],
        "tail_min": min(tail) if tail else 0,
    })
    assert all(count > 0 for count in counts)
    assert steady
