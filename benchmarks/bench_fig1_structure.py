"""Figure 1: address shares by IID class and by Cable/DSL/ISP AS label.

Also hosts the columnar scaling sweep: classification throughput of the
scalar loop vs the packed AddressColumn at 10^4..10^6 addresses, with a
hard gate requiring the *pure-python* columnar path to beat the scalar
path by >= 3x at the largest size.
"""

import os
import random
import time

from benchmarks.conftest import write_report
from repro.analysis import structure
from repro.ipv6 import address as addr
from repro.ipv6 import eui64, iid
from repro.ipv6.columnar import AddressColumn, available_backends
from repro.ipv6.iid import CLASSES
from repro.report import fmt_pct, render_table, shape_check


def _reports(experiment):
    asdb = experiment.world.asdb
    return [
        structure.analyze("ntp", experiment.ntp_dataset.addresses, asdb),
        structure.analyze("rl", experiment.rl_dataset.addresses, asdb),
        structure.analyze("hitlist-full", experiment.hitlist.full, asdb),
        structure.analyze("hitlist-public", experiment.hitlist.public, asdb),
    ]


def test_fig1_structure(experiment, benchmark):
    reports = benchmark(_reports, experiment)

    rows = []
    for report in reports:
        rows.append([report.label]
                    + [fmt_pct(report.class_shares.get(cls, 0.0))
                       for cls in CLASSES]
                    + [fmt_pct(report.eyeball_as_share)])
    text = render_table(
        ["dataset"] + list(CLASSES) + ["Cable/DSL/ISP AS"],
        rows, title="Figure 1 - Prop. of addresses grouped by IID and AS")

    ntp, rl, full, public = reports
    checks = [
        shape_check("hitlist has the highest structured share "
                    "(manually configured servers/routers)",
                    full.structured_share > ntp.structured_share and
                    public.structured_share > ntp.structured_share),
        shape_check("NTP data is dominated by high-entropy (privacy) IIDs",
                    ntp.high_entropy_share > 0.4),
        shape_check("NTP and R&L shapes are similar (both client-heavy)",
                    abs(ntp.high_entropy_share - rl.high_entropy_share) < 0.3),
        shape_check("Cable/DSL/ISP share higher for NTP than hitlist",
                    ntp.eyeball_as_share > full.eyeball_as_share),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fig1_structure", text)

    benchmark.extra_info.update({
        "ntp_high_entropy": round(ntp.high_entropy_share, 4),
        "hitlist_structured": round(full.structured_share, 4),
        "ntp_eyeball_share": round(ntp.eyeball_as_share, 4),
    })
    assert ntp.structured_share < full.structured_share
    assert ntp.eyeball_as_share > full.eyeball_as_share


# -- columnar scaling sweep ------------------------------------------------

#: Largest sweep size; override for quick local runs
#: (e.g. REPRO_BENCH_COLUMNAR_MAX=100000).
MAX_SWEEP = int(os.environ.get("REPRO_BENCH_COLUMNAR_MAX", str(10**6)))

#: The pure-python column must beat the scalar loop by this factor at
#: the largest sweep size (conversion from ints included).
GATE_SPEEDUP = 3.0


def _synthetic_corpus(count: int, seed: int = 0x51CA) -> list:
    """A Fig-1-shaped address mix exercising every IID class."""
    rng = random.Random(seed)
    base = addr.parse("2001:db8::")
    values = []
    for index in range(count):
        prefix = base + (rng.getrandbits(16) << 64)
        draw = rng.random()
        if draw < 0.45:  # privacy extensions: random IID
            value = addr.with_iid(prefix, rng.getrandbits(64))
        elif draw < 0.55:  # EUI-64 from a MAC
            value = addr.with_iid(
                prefix, eui64.mac_to_iid(rng.getrandbits(48)))
        elif draw < 0.70:  # low-byte: manually numbered hosts
            value = addr.with_iid(prefix, rng.randint(1, 255))
        elif draw < 0.75:  # subnet router anycast
            value = addr.with_iid(prefix, 0)
        elif draw < 0.80:  # low-two-byte
            value = addr.with_iid(prefix, rng.randint(256, 0xFFFF))
        elif draw < 0.90:  # low-entropy: a couple of distinct bytes
            byte = rng.getrandbits(8)
            value = addr.with_iid(prefix, byte * 0x0101010101010101)
        else:  # medium-entropy: structured but varied
            value = addr.with_iid(
                prefix, (rng.getrandbits(16) << 32) | rng.getrandbits(16))
        values.append(value)
    return values


def _time(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def test_fig1_columnar_scaling_gate():
    """Scaling sweep 10^4 -> 10^6 + the >=3x pure-python speedup gate."""
    sizes = [size for size in (10**4, 10**5, 10**6) if size <= MAX_SWEEP]
    backends = available_backends()
    rows = []
    final_speedups = {}
    for size in sizes:
        values = _synthetic_corpus(size)
        scalar_profile, scalar_s = _time(lambda: iid.profile_scalar(values))
        row = [f"{size:,}", f"{scalar_s:.3f}s"]
        for backend in ("python", "numpy"):
            if backend not in backends:
                row += ["n/a", "n/a"]
                continue
            # Conversion is charged to the columnar path: the gate
            # covers "ints in hand -> profile out", not just the kernel.
            def columnar():
                column = AddressColumn.from_ints(values, backend=backend)
                return iid.profile(column)
            col_profile, col_s = _time(columnar)
            assert col_profile.as_dict() == scalar_profile.as_dict(), \
                f"columnar/{backend} diverged from scalar at n={size}"
            speedup = scalar_s / col_s if col_s else float("inf")
            row += [f"{col_s:.3f}s", f"{speedup:.1f}x"]
            if size == sizes[-1]:
                final_speedups[backend] = speedup
        rows.append(row)

    text = render_table(
        ["addresses", "scalar", "python col", "speedup",
         "numpy col", "speedup"],
        rows, title="Columnar IID classification scaling "
                    "(conversion included)")
    checks = [
        shape_check(
            f"pure-python columnar >= {GATE_SPEEDUP}x scalar at "
            f"{sizes[-1]:,} addresses",
            final_speedups["python"] >= GATE_SPEEDUP),
    ]
    if "numpy" in final_speedups:
        checks.append(shape_check(
            "numpy columnar at least as fast as pure-python",
            final_speedups["numpy"] >= final_speedups["python"]))
    text += "\n\n" + "\n".join(checks)
    write_report("fig1_structure_scaling", text)

    assert final_speedups["python"] >= GATE_SPEEDUP, (
        f"pure-python columnar speedup {final_speedups['python']:.2f}x "
        f"below the {GATE_SPEEDUP}x gate at n={sizes[-1]:,}")
