"""Figure 1: address shares by IID class and by Cable/DSL/ISP AS label."""

from benchmarks.conftest import write_report
from repro.analysis import structure
from repro.ipv6.iid import CLASSES
from repro.report import fmt_pct, render_table, shape_check


def _reports(experiment):
    asdb = experiment.world.asdb
    return [
        structure.analyze("ntp", experiment.ntp_dataset.addresses, asdb),
        structure.analyze("rl", experiment.rl_dataset.addresses, asdb),
        structure.analyze("hitlist-full", experiment.hitlist.full, asdb),
        structure.analyze("hitlist-public", experiment.hitlist.public, asdb),
    ]


def test_fig1_structure(experiment, benchmark):
    reports = benchmark(_reports, experiment)

    rows = []
    for report in reports:
        rows.append([report.label]
                    + [fmt_pct(report.class_shares.get(cls, 0.0))
                       for cls in CLASSES]
                    + [fmt_pct(report.eyeball_as_share)])
    text = render_table(
        ["dataset"] + list(CLASSES) + ["Cable/DSL/ISP AS"],
        rows, title="Figure 1 - Prop. of addresses grouped by IID and AS")

    ntp, rl, full, public = reports
    checks = [
        shape_check("hitlist has the highest structured share "
                    "(manually configured servers/routers)",
                    full.structured_share > ntp.structured_share and
                    public.structured_share > ntp.structured_share),
        shape_check("NTP data is dominated by high-entropy (privacy) IIDs",
                    ntp.high_entropy_share > 0.4),
        shape_check("NTP and R&L shapes are similar (both client-heavy)",
                    abs(ntp.high_entropy_share - rl.high_entropy_share) < 0.3),
        shape_check("Cable/DSL/ISP share higher for NTP than hitlist",
                    ntp.eyeball_as_share > full.eyeball_as_share),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fig1_structure", text)

    benchmark.extra_info.update({
        "ntp_high_entropy": round(ntp.high_entropy_share, 4),
        "hitlist_structured": round(full.structured_share, 4),
        "ntp_eyeball_share": round(ntp.eyeball_as_share, 4),
    })
    assert ntp.structured_share < full.structured_share
    assert ntp.eyeball_as_share > full.eyeball_as_share
