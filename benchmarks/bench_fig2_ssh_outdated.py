"""Figure 2: SSH patch-level up-to-dateness, NTP vs hitlist."""

from benchmarks.conftest import write_report
from repro.analysis import security
from repro.report import fmt_int, fmt_pct, render_table, shape_check


def _both(ntp_scan, hitlist_scan):
    return (security.ssh_outdatedness("ntp", ntp_scan),
            security.ssh_outdatedness("hitlist", hitlist_scan))


def test_fig2_ssh_outdated(experiment, benchmark):
    ntp, hitlist = benchmark(_both, experiment.ntp_scan,
                             experiment.hitlist_scan)

    text = render_table(
        ["dataset", "assessed keys", "outdated", "outdated share",
         "patch hidden"],
        [[report.label, fmt_int(report.assessed), fmt_int(report.outdated),
          fmt_pct(report.outdated_share), fmt_int(report.unassessable)]
         for report in (ntp, hitlist)],
        title="Figure 2 - NTP-sourcing unveils more outdated SSH hosts")

    checks = [
        shape_check("both datasets show worryingly many outdated servers",
                    ntp.outdated_share > 0.3
                    and hitlist.outdated_share > 0.2),
        shape_check("far higher outdated share via NTP (end-user admins)",
                    ntp.outdated_share > hitlist.outdated_share + 0.1),
        shape_check("non-Debian-derived hosts excluded (patch level hidden)",
                    hitlist.unassessable > 0),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fig2_ssh_outdated", text)

    benchmark.extra_info.update({
        "ntp_outdated_share": round(ntp.outdated_share, 4),
        "hitlist_outdated_share": round(hitlist.outdated_share, 4),
    })
    assert ntp.outdated_share > hitlist.outdated_share
