"""Figure 3: MQTT/AMQP access control + the combined security headline."""

from benchmarks.conftest import write_report
from repro.analysis import security
from repro.report import fmt_int, fmt_pct, render_table, shape_check


def _all_reports(ntp_scan, hitlist_scan):
    return {
        ("mqtt", "ntp"): security.broker_access_control("ntp", ntp_scan,
                                                        "mqtt"),
        ("mqtt", "hitlist"): security.broker_access_control(
            "hitlist", hitlist_scan, "mqtt"),
        ("amqp", "ntp"): security.broker_access_control("ntp", ntp_scan,
                                                        "amqp"),
        ("amqp", "hitlist"): security.broker_access_control(
            "hitlist", hitlist_scan, "amqp"),
        "gap": security.security_gap(ntp_scan, hitlist_scan),
    }


def test_fig3_access_control(experiment, benchmark):
    reports = benchmark(_all_reports, experiment.ntp_scan,
                        experiment.hitlist_scan)

    rows = []
    for protocol in ("mqtt", "amqp"):
        for side in ("ntp", "hitlist"):
            report = reports[(protocol, side)]
            rows.append([protocol.upper(), side, fmt_int(report.total),
                         fmt_int(report.open_count),
                         fmt_pct(report.access_control_share)])
    text = render_table(
        ["protocol", "dataset", "brokers", "open", "access control"],
        rows, title="Figure 3 - NTP-sourced brokers show worse security")

    ntp_gap, hitlist_gap = reports["gap"]
    text += (f"\n\nCombined secure share (SSH up-to-date + brokers with "
             f"access control):\n"
             f"  hitlist: {fmt_pct(hitlist_gap.secure_share)} of "
             f"{fmt_int(hitlist_gap.total)} hosts "
             f"(paper: 43.5 % of 854 704)\n"
             f"  NTP:     {fmt_pct(ntp_gap.secure_share)} of "
             f"{fmt_int(ntp_gap.total)} hosts (paper: 28.4 % of 73 975)")

    mqtt_ntp = reports[("mqtt", "ntp")]
    mqtt_hit = reports[("mqtt", "hitlist")]
    amqp_ntp = reports[("amqp", "ntp")]
    amqp_hit = reports[("amqp", "hitlist")]
    checks = [
        shape_check("over half of NTP-found MQTT brokers lack access "
                    "control (paper: >50 % open)",
                    mqtt_ntp.open_share > 0.5),
        shape_check("hitlist MQTT brokers mostly enforce access control "
                    "(paper: 80 %)", mqtt_hit.access_control_share > 0.6),
        shape_check("AMQP widely access-controlled on both sides "
                    "(heavyweight, professional deployments)",
                    amqp_ntp.access_control_share >= 0.6
                    and amqp_hit.access_control_share >= 0.6),
        shape_check("headline: secure share drops for NTP-sourced hosts",
                    ntp_gap.secure_share < hitlist_gap.secure_share - 0.05),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fig3_access_control", text)

    benchmark.extra_info.update({
        "ntp_secure_share": round(ntp_gap.secure_share, 4),
        "hitlist_secure_share": round(hitlist_gap.secure_share, 4),
    })
    assert ntp_gap.secure_share < hitlist_gap.secure_share
    assert mqtt_ntp.access_control_share < mqtt_hit.access_control_share
