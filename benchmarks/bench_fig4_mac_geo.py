"""Figure 4 (Appendix B): collecting-server location by MAC class."""

from benchmarks.conftest import write_report
from repro.analysis import macs
from repro.report import fmt_pct, render_table, shape_check

#: European capture-server locations (the AVM market).
EUROPEAN = ("Germany", "Spain", "Poland", "the Netherlands",
            "United Kingdom")


def test_fig4_mac_geo(experiment, benchmark):
    shares = benchmark(macs.server_location_distribution,
                       experiment.ntp_dataset, experiment.world.oui)

    locations = sorted(
        {loc for share in shares.values() for loc in share},
        key=lambda loc: -shares["listed"].get(loc, 0.0))
    rows = []
    for mac_class in macs.MAC_CLASSES:
        rows.append([mac_class]
                    + [fmt_pct(shares[mac_class].get(loc, 0.0))
                       for loc in locations])
    text = render_table(
        ["MAC class"] + [loc[:12] for loc in locations], rows,
        title="Figure 4 - NTP server location distribution by MAC class")

    listed_eu = sum(shares["listed"].get(loc, 0.0) for loc in EUROPEAN)
    local_eu = sum(shares["local"].get(loc, 0.0) for loc in EUROPEAN)
    checks = [
        shape_check("listed (IEEE-registered) MACs skew towards the "
                    "European servers (AVM market share)",
                    listed_eu > local_eu),
        shape_check("every MAC class observed somewhere",
                    all(shares[cls] for cls in macs.MAC_CLASSES)),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fig4_mac_geo", text)

    benchmark.extra_info.update({
        "listed_eu_share": round(listed_eu, 4),
        "local_eu_share": round(local_eu, 4),
    })
    assert listed_eu > local_eu
