"""Figure 5 (Appendix C): SSH up-to-dateness counting addresses, not keys."""

from benchmarks.conftest import write_report
from repro.analysis import security
from repro.report import fmt_int, fmt_pct, render_table, shape_check


def _views(ntp_scan, hitlist_scan):
    return {
        ("ntp", "by-key"): security.ssh_outdatedness("ntp", ntp_scan,
                                                     by_key=True),
        ("ntp", "by-address"): security.ssh_outdatedness("ntp", ntp_scan,
                                                         by_key=False),
        ("hitlist", "by-key"): security.ssh_outdatedness(
            "hitlist", hitlist_scan, by_key=True),
        ("hitlist", "by-address"): security.ssh_outdatedness(
            "hitlist", hitlist_scan, by_key=False),
    }


def test_fig5_ssh_networks(experiment, benchmark):
    views = benchmark(_views, experiment.ntp_scan, experiment.hitlist_scan)

    rows = []
    for (side, view), report in views.items():
        rows.append([side, view, fmt_int(report.assessed),
                     fmt_pct(report.outdated_share)])
    text = render_table(
        ["dataset", "counting", "assessed", "outdated share"],
        rows, title="Figure 5 - outdatedness by unique key vs by address")

    ntp_key = views[("ntp", "by-key")]
    ntp_addr = views[("ntp", "by-address")]
    hit_key = views[("hitlist", "by-key")]
    hit_addr = views[("hitlist", "by-address")]
    gap_key = ntp_key.outdated_share - hit_key.outdated_share
    gap_addr = ntp_addr.outdated_share - hit_addr.outdated_share
    checks = [
        shape_check("counting addresses yields more outdated hosts than "
                    "counting keys (outdated servers reuse keys)",
                    ntp_addr.outdated_share >= ntp_key.outdated_share),
        shape_check("the NTP-vs-hitlist gap persists (paper: it widens)",
                    gap_addr > 0 and gap_key > 0),
        shape_check("address view assesses more hosts than key view",
                    ntp_addr.assessed >= ntp_key.assessed
                    and hit_addr.assessed >= hit_key.assessed),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fig5_ssh_networks", text)

    benchmark.extra_info.update({
        "gap_by_key": round(gap_key, 4),
        "gap_by_address": round(gap_addr, 4),
    })
    assert gap_addr > 0
