"""Figure 6 (Appendix C): MQTT access control by network granularity."""

from benchmarks.conftest import write_report
from repro.analysis import security
from repro.report import fmt_int, fmt_pct, render_table, shape_check

LEVELS = (None, 64, 56, 48)


def _views(ntp_scan, hitlist_scan):
    views = {}
    for level in LEVELS:
        views[("ntp", level)] = security.broker_access_control(
            "ntp", ntp_scan, "mqtt", by_network=level)
        views[("hitlist", level)] = security.broker_access_control(
            "hitlist", hitlist_scan, "mqtt", by_network=level)
    return views


def test_fig6_mqtt_networks(experiment, benchmark):
    views = benchmark(_views, experiment.ntp_scan, experiment.hitlist_scan)

    rows = []
    for level in LEVELS:
        label = "IPs" if level is None else f"/{level}"
        ntp = views[("ntp", level)]
        hit = views[("hitlist", level)]
        rows.append([label,
                     fmt_int(ntp.total), fmt_pct(ntp.access_control_share),
                     fmt_int(hit.total), fmt_pct(hit.access_control_share)])
    text = render_table(
        ["granularity", "NTP brokers", "NTP access ctrl",
         "hitlist brokers", "hitlist access ctrl"],
        rows, title="Figure 6 - MQTT access control by network counting")

    gaps = [views[("hitlist", level)].access_control_share
            - views[("ntp", level)].access_control_share
            for level in LEVELS]
    checks = [
        shape_check("the NTP-vs-hitlist access-control gap persists at "
                    "every granularity (paper: ~40 pp)",
                    all(gap > 0.05 for gap in gaps)),
        shape_check("hitlist access control stays high at all levels "
                    "(paper: near 100 % for IPs and /64)",
                    views[("hitlist", None)].access_control_share > 0.5),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fig6_mqtt_networks", text)

    benchmark.extra_info.update({
        "gap_by_ip": round(gaps[0], 4),
        "gap_by_48": round(gaps[-1], 4),
    })
    assert all(gap > 0 for gap in gaps)
