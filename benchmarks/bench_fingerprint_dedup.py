"""Host-fingerprint deduplication vs ground truth (Section 6 extension).

The simulation knows exactly how many devices stand behind the
collected addresses, so — uniquely — we can validate the paper's
future-work idea: do MAC/stable-IID fingerprints produce *correct*
host-count bounds?
"""

from benchmarks.conftest import write_report
from repro.analysis import fingerprint
from repro.report import fmt_float, fmt_int, render_table, shape_check


def test_fingerprint_dedup(experiment, benchmark):
    # A fresh iterator per benchmark round (a consumed iterator would
    # leave later rounds measuring an empty input).
    report = benchmark(lambda: fingerprint.dedup_addresses(
        experiment.ntp_dataset.iter_addresses()))

    # Ground truth: devices that emitted at least one captured request.
    collected = experiment.ntp_dataset.addresses
    true_hosts = sum(
        1 for device in experiment.world.devices
        if device.is_ntp_client)

    text = render_table(
        ["metric", "value"],
        [
            ["collected addresses", fmt_int(report.total_addresses)],
            ["MAC-identified hosts",
             fmt_int(sum(1 for c in report.clusters if c.kind == "mac"))],
            ["stable-IID-identified hosts",
             fmt_int(sum(1 for c in report.clusters
                         if c.kind == "stable-iid"))],
            ["unattributable (privacy) addresses",
             fmt_int(report.unattributable)],
            ["host-count lower bound", fmt_int(report.lower_bound)],
            ["host-count upper bound", fmt_int(report.upper_bound)],
            ["NTP-client devices in the world (ground truth ceiling)",
             fmt_int(true_hosts)],
            ["deduplication factor",
             fmt_float(report.deduplication_factor, 2)],
        ],
        title="Fingerprint dedup of the collected dataset")

    max_cluster = max((c.prefix_count for c in report.clusters), default=0)
    checks = [
        shape_check("fingerprinting shrinks the address set "
                    "(paper: lists double-count dynamic hosts)",
                    report.upper_bound < report.total_addresses),
        shape_check("bounds bracket plausibly: lower <= upper <= addresses",
                    report.lower_bound <= report.upper_bound
                    <= report.total_addresses),
        shape_check("identified hosts do not exceed the true device count",
                    report.identified_hosts <= true_hosts),
        shape_check("some interface tracked across multiple prefixes",
                    max_cluster > 1),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("fingerprint_dedup", text)

    benchmark.extra_info.update({
        "dedup_factor": round(report.deduplication_factor, 3),
        "identified_hosts": report.identified_hosts,
    })
    assert report.upper_bound < report.total_addresses
    assert report.identified_hosts <= true_hosts
