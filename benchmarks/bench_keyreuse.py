"""Section 6: certificate and key reuse across ASes."""

from benchmarks.conftest import write_report
from repro.analysis import keyreuse
from repro.report import fmt_float, fmt_int, render_table, shape_check


def _both(experiment):
    asdb = experiment.world.asdb
    return (keyreuse.analyze("ntp", experiment.ntp_scan, asdb),
            keyreuse.analyze("hitlist", experiment.hitlist_scan, asdb))


def test_keyreuse(experiment, benchmark):
    ntp, hitlist = benchmark(_both, experiment)

    rows = []
    for report in (ntp, hitlist):
        most_used = report.most_used
        most_wide = report.most_widespread
        rows.append([
            report.label,
            fmt_int(report.reused_key_count),
            fmt_int(report.total_reused_addresses),
            fmt_float(report.addresses_per_key),
            (f"{fmt_int(most_used.addresses)} addrs / {most_used.ases} ASes"
             if most_used else "-"),
            (f"{most_wide.ases} ASes" if most_wide else "-"),
        ])
    text = render_table(
        ["dataset", "reused keys", "addresses", "addrs/key",
         "most-used key", "most-widespread key"],
        rows, title="Section 6 - secrets reused across >2 ASes")

    checks = [
        shape_check("reuse present in both datasets (paper: 304 vs 3 846 "
                    "keys)", ntp.reused_key_count > 0
                    and hitlist.reused_key_count > 0),
        shape_check("NTP data shows more addresses per reused key "
                    "(paper: pre-built image secrets on end-user gear)",
                    ntp.addresses_per_key > hitlist.addresses_per_key),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("keyreuse", text)

    benchmark.extra_info.update({
        "ntp_addrs_per_key": round(ntp.addresses_per_key, 2),
        "hitlist_addrs_per_key": round(hitlist.addresses_per_key, 2),
    })
    assert ntp.addresses_per_key > hitlist.addresses_per_key
