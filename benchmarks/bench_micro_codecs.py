"""Microbenchmarks of the wire codecs the substrate is built on.

These are the hot paths of every campaign: a four-week collection
exchanges millions of NTP packets, and every scanned endpoint parses
and produces protocol messages.  Regressions here directly slow the
experiments, so the codecs get their own benchmark coverage.
"""

from repro.ntp.packet import NtpPacket, client_request, server_response
from repro.proto.coap import CoapMessage, get_request
from repro.proto.mqtt import ConnackPacket, ConnectPacket
from repro.proto.ssh import SshIdentification
from repro.tlslib.certificate import Certificate, issue_public
from repro.tlslib.handshake import client_hello, parse_client_hello


def test_ntp_roundtrip(benchmark):
    request = client_request(1_000_000.0)
    wire = request.encode()

    def roundtrip():
        decoded = NtpPacket.decode(wire)
        return server_response(decoded, 1_000_000.1, 1_000_000.1).encode()

    result = benchmark(roundtrip)
    assert len(result) == 48


def test_mqtt_connect_roundtrip(benchmark):
    wire = ConnectPacket(client_id="repro-scan").encode()

    def roundtrip():
        ConnectPacket.decode(wire)
        return ConnackPacket(return_code=5).encode()

    assert len(benchmark(roundtrip)) == 4


def test_coap_discovery_roundtrip(benchmark):
    wire = get_request("/.well-known/core", message_id=7).encode()

    def roundtrip():
        return CoapMessage.decode(wire).uri_path

    assert benchmark(roundtrip) == "/.well-known/core"


def test_ssh_banner_parse(benchmark):
    wire = b"SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3\r\n"
    result = benchmark(SshIdentification.decode, wire)
    assert result.software == "OpenSSH_9.2p1"


def test_certificate_roundtrip(benchmark):
    cert = issue_public("bench.example.sim")
    wire = cert.encode()

    def roundtrip():
        return Certificate.decode(wire).fingerprint

    assert benchmark(roundtrip) == cert.fingerprint


def test_client_hello_roundtrip(benchmark):
    wire = client_hello("bench.example.sim")
    assert benchmark(parse_client_hello, wire) == "bench.example.sim"


def test_levenshtein_clustering(benchmark):
    from repro.analysis.levenshtein import cluster_counts

    titles = [(f"Plesk Obsidian 18.0.{i}", 5) for i in range(20)]
    titles += [(f"FRITZ!Box {7000 + i}", 3) for i in range(20)]
    titles += [(f"Completely distinct page {i:04d}", 1) for i in range(40)]

    groups = benchmark(cluster_counts, titles)
    assert 2 <= len(groups) <= 45
