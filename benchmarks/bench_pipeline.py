"""End-to-end pipeline cost: one full (small) study per round."""

import random
import time

from benchmarks.conftest import write_report
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.ipv6 import parse
from repro.net.simnet import Network
from repro.obs import Histogram, use_registry
from repro.report import fmt_int, shape_check
from repro.runtime.sharding import ShardedScanEngine
from repro.scan.engine import EngineConfig
from repro.world import devices as dev
from repro.world.population import WorldConfig


def _small_study(shards=1):
    return run_experiment(ExperimentConfig(
        world=WorldConfig(scale=0.1),
        campaign=CampaignConfig(days=14, wire_fraction=0.02),
        rl_days=3, gap_days=3, lead_days=10, final_days=4,
        scan_shards=shards,
    ))


def _metrics_lines(registry, label):
    """Drop counts and probe-latency quantiles for one shard config.

    Quantiles come from the fixed-bucket ``probe_seconds`` histograms,
    so each is an upper bound (the bucket boundary the quantile falls
    in), merged across every engine/shard/protocol series.
    """
    dropped = sum(c.value for _, c in registry.find("stage_dropped_total"))
    cooled = sum(c.value
                 for _, c in registry.find("scheduler_cooldown_hits_total"))
    latency = Histogram.merged(
        [h for _, h in registry.find("probe_seconds")])
    return (
        f"  {label}\n"
        f"    queue drops:          {fmt_int(int(dropped))}\n"
        f"    cool-down rejections: {fmt_int(int(cooled))}\n"
        f"    probes observed:      {fmt_int(int(latency.count))}\n"
        f"    probe latency:        p50 <= {latency.quantile(0.5):g} s, "
        f"p99 <= {latency.quantile(0.99):g} s\n"
    )


def test_pipeline_end_to_end(benchmark):
    result = benchmark.pedantic(_small_study, rounds=3, iterations=1)

    text = (
        "End-to-end pipeline (scale 0.1, 14 collection days per round)\n"
        f"  devices simulated:   {fmt_int(len(result.world.devices))}\n"
        f"  addresses collected: {fmt_int(len(result.ntp_dataset))}\n"
        f"  targets scanned:     "
        f"{fmt_int(result.ntp_scan.targets_seen + result.hitlist_scan.targets_seen)}\n"
    )
    text += "\n" + shape_check(
        "full study completes with populated artefacts",
        len(result.ntp_dataset) > 0 and result.hitlist.full_size > 0)
    write_report("pipeline_end_to_end", text)

    benchmark.extra_info.update({
        "devices": len(result.world.devices),
        "collected": len(result.ntp_dataset),
    })
    assert len(result.ntp_dataset) > 0


def test_pipeline_sharded_vs_single(benchmark):
    """shards=4 must merge to identical results at no extra cost."""
    single_times, sharded_times = [], []
    results = {}

    def _paired_round():
        """One single + one sharded study, back to back.

        Interleaving the two configurations inside each round cancels
        machine-load drift, and alternating which goes first cancels
        the position effect (the second study runs on a dirtier heap).
        """
        single_first = len(single_times) % 2 == 0
        order = (1, 4) if single_first else (4, 1)
        # CPU time, not wall clock: the comparison must not hinge on
        # scheduler preemption by whatever else shares this machine.
        start = time.process_time()
        first = _small_study(shards=order[0])
        mid = time.process_time()
        second = _small_study(shards=order[1])
        end = time.process_time()
        if single_first:
            results["single"], results["sharded"] = first, second
            single_times.append(mid - start)
            sharded_times.append(end - mid)
        else:
            results["sharded"], results["single"] = first, second
            sharded_times.append(mid - start)
            single_times.append(end - mid)

    benchmark.pedantic(_paired_round, rounds=4, iterations=1,
                       warmup_rounds=1)
    # The warmup pair lands in the lists too; drop it — its first leg
    # pays cold-start costs (imports, allocator growth) unfairly.
    single_times, sharded_times = single_times[1:], sharded_times[1:]
    rounds = len(single_times)
    single, sharded = results["single"], results["sharded"]

    def _median(times):
        ordered = sorted(times)
        return ordered[len(ordered) // 2]

    single_median = _median(single_times)
    sharded_median = _median(sharded_times)

    identical = all(
        single.hitlist_scan.responsive_addresses(protocol)
        == sharded.hitlist_scan.responsive_addresses(protocol)
        for protocol in single.hitlist_scan.protocols())
    text = (
        "Sharded scan engine vs single engine (scale 0.1 study)\n"
        f"  single engine (median of {rounds}):  {single_median:8.3f} cpu-s\n"
        f"  4 shards      (median of {rounds}):  {sharded_median:8.3f} cpu-s\n"
        f"  ratio (sharded/single):      "
        f"{sharded_median / single_median:8.3f}\n"
        "\n"
        "Runtime metrics per shard configuration (embedded mode: probes\n"
        "run synchronously, so latency collapses to the first bucket)\n"
    )
    text += _metrics_lines(single.metrics, "single engine")
    text += _metrics_lines(sharded.metrics, "4 shards")
    text += "\n" + shape_check(
        "sharded responsive sets identical to single engine", identical)
    text += "\n" + shape_check(
        "sharding adds no end-to-end slowdown (<=5% tolerance)",
        sharded_median <= single_median * 1.05)
    write_report("pipeline_sharded_vs_single", text)

    single_latency = Histogram.merged(
        [h for _, h in single.metrics.find("probe_seconds")])
    benchmark.extra_info.update({
        "single_median_cpu_s": round(single_median, 4),
        "sharded_median_cpu_s": round(sharded_median, 4),
        "single_drops": int(sum(
            c.value for _, c in single.metrics.find("stage_dropped_total"))),
        "sharded_drops": int(sum(
            c.value for _, c in sharded.metrics.find("stage_dropped_total"))),
        "single_probe_p99_s": single_latency.quantile(0.99),
    })
    assert identical
    assert sharded.hitlist_scan.targets_seen == single.hitlist_scan.targets_seen


def _driving_scan(shards):
    """One driving-mode scan campaign under a fresh metrics registry.

    Driving mode advances the virtual clock through token-bucket waits
    and politeness delays, so ``probe_seconds`` records real (simulated)
    per-probe latency instead of the zeros of embedded mode.  Targets
    repeat, so the cool-down path is exercised too.
    """
    rng = random.Random(1905)
    network = Network()
    prefix = parse("2001:db8:600::")
    for index in range(40):
        device = dev.make_fritzbox(rng, index, 0x3C3786000000 + index)
        device.assign_address(prefix, rng)
        device.materialize(network)
    targets = [prefix | rng.getrandbits(64) for _ in range(300)]
    targets += rng.sample(targets, 60)          # duplicates hit cool-down
    with use_registry() as registry:
        engine = ShardedScanEngine(
            network, parse("2001:db8:5c::1"),
            EngineConfig(packets_per_second=100.0),
            shards=shards, name="bench")
        results = engine.run(targets, label=f"driving/{shards}")
    return registry, results


def test_probe_latency_driving_mode(benchmark):
    """p50/p99 probe latency per shard configuration (driving mode)."""
    registries = {shards: _driving_scan(shards)[0] for shards in (1, 4)}
    benchmark.pedantic(_driving_scan, args=(4,), rounds=3, iterations=1)

    text = "Driving-mode probe latency by shard configuration\n"
    latencies = {}
    for shards, registry in sorted(registries.items()):
        latencies[shards] = Histogram.merged(
            [h for _, h in registry.find("probe_seconds")])
        text += _metrics_lines(registry, f"{shards} shard(s)")
    text += "\n" + shape_check(
        "driving mode records nonzero probe latency",
        all(latency.sum > 0 for latency in latencies.values()))
    text += "\n" + shape_check(
        "cool-down rejections recorded for duplicate targets",
        all(sum(c.value
                for _, c in registry.find("scheduler_cooldown_hits_total")) > 0
            for registry in registries.values()))
    write_report("pipeline_probe_latency", text)

    benchmark.extra_info.update({
        f"p99_s_{shards}shards": latencies[shards].quantile(0.99)
        for shards in latencies
    })
    assert all(latency.count > 0 for latency in latencies.values())
