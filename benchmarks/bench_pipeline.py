"""End-to-end pipeline cost: one full (small) study per round."""

import os
import random
import time

from benchmarks.conftest import write_report
from repro import api
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.ipv6 import parse
from repro.net.simnet import Network
from repro.obs import Histogram, use_registry
from repro.report import fmt_int, fmt_pct, render_table, shape_check
from repro.runtime.parallel import ParallelShardedScanEngine
from repro.runtime.sharding import ShardedScanEngine
from repro.scan.engine import EngineConfig
from repro.world import devices as dev
from repro.world.population import WorldConfig, build_world


def _small_study(shards=1):
    return run_experiment(ExperimentConfig(
        world=WorldConfig(scale=0.1),
        campaign=CampaignConfig(days=14, wire_fraction=0.02),
        rl_days=3, gap_days=3, lead_days=10, final_days=4,
        scan_shards=shards,
    ))


def _metrics_lines(registry, label):
    """Drop counts and probe-latency quantiles for one shard config.

    Quantiles come from the fixed-bucket ``probe_seconds`` histograms,
    so each is an upper bound (the bucket boundary the quantile falls
    in), merged across every engine/shard/protocol series.
    """
    dropped = sum(c.value for _, c in registry.find("stage_dropped_total"))
    cooled = sum(c.value
                 for _, c in registry.find("scheduler_cooldown_hits_total"))
    latency = Histogram.merged(
        [h for _, h in registry.find("probe_seconds")])
    return (
        f"  {label}\n"
        f"    queue drops:          {fmt_int(int(dropped))}\n"
        f"    cool-down rejections: {fmt_int(int(cooled))}\n"
        f"    probes observed:      {fmt_int(int(latency.count))}\n"
        f"    probe latency:        p50 <= {latency.quantile(0.5):g} s, "
        f"p99 <= {latency.quantile(0.99):g} s\n"
    )


def test_pipeline_end_to_end(benchmark):
    result = benchmark.pedantic(_small_study, rounds=3, iterations=1)

    text = (
        "End-to-end pipeline (scale 0.1, 14 collection days per round)\n"
        f"  devices simulated:   {fmt_int(len(result.world.devices))}\n"
        f"  addresses collected: {fmt_int(len(result.ntp_dataset))}\n"
        f"  targets scanned:     "
        f"{fmt_int(result.ntp_scan.targets_seen + result.hitlist_scan.targets_seen)}\n"
    )
    text += "\n" + shape_check(
        "full study completes with populated artefacts",
        len(result.ntp_dataset) > 0 and result.hitlist.full_size > 0)
    write_report("pipeline_end_to_end", text)

    benchmark.extra_info.update({
        "devices": len(result.world.devices),
        "collected": len(result.ntp_dataset),
    })
    assert len(result.ntp_dataset) > 0


def test_pipeline_sharded_vs_single(benchmark):
    """shards=4 must merge to identical results at no extra cost."""
    single_times, sharded_times = [], []
    results = {}

    def _paired_round():
        """One single + one sharded study, back to back.

        Interleaving the two configurations inside each round cancels
        machine-load drift, and alternating which goes first cancels
        the position effect (the second study runs on a dirtier heap).
        """
        single_first = len(single_times) % 2 == 0
        order = (1, 4) if single_first else (4, 1)
        # CPU time, not wall clock: the comparison must not hinge on
        # scheduler preemption by whatever else shares this machine.
        start = time.process_time()
        first = _small_study(shards=order[0])
        mid = time.process_time()
        second = _small_study(shards=order[1])
        end = time.process_time()
        if single_first:
            results["single"], results["sharded"] = first, second
            single_times.append(mid - start)
            sharded_times.append(end - mid)
        else:
            results["sharded"], results["single"] = first, second
            sharded_times.append(mid - start)
            single_times.append(end - mid)

    benchmark.pedantic(_paired_round, rounds=4, iterations=1,
                       warmup_rounds=1)
    # The warmup pair lands in the lists too; drop it — its first leg
    # pays cold-start costs (imports, allocator growth) unfairly.
    single_times, sharded_times = single_times[1:], sharded_times[1:]
    rounds = len(single_times)
    single, sharded = results["single"], results["sharded"]

    def _median(times):
        ordered = sorted(times)
        return ordered[len(ordered) // 2]

    single_median = _median(single_times)
    sharded_median = _median(sharded_times)

    identical = all(
        single.hitlist_scan.responsive_addresses(protocol)
        == sharded.hitlist_scan.responsive_addresses(protocol)
        for protocol in single.hitlist_scan.protocols())
    text = (
        "Sharded scan engine vs single engine (scale 0.1 study)\n"
        f"  single engine (median of {rounds}):  {single_median:8.3f} cpu-s\n"
        f"  4 shards      (median of {rounds}):  {sharded_median:8.3f} cpu-s\n"
        f"  ratio (sharded/single):      "
        f"{sharded_median / single_median:8.3f}\n"
        "\n"
        "Runtime metrics per shard configuration (embedded mode: probes\n"
        "run synchronously, so latency collapses to the first bucket)\n"
    )
    text += _metrics_lines(single.metrics, "single engine")
    text += _metrics_lines(sharded.metrics, "4 shards")
    text += "\n" + shape_check(
        "sharded responsive sets identical to single engine", identical)
    text += "\n" + shape_check(
        "sharding adds no end-to-end slowdown (<=5% tolerance)",
        sharded_median <= single_median * 1.05)
    write_report("pipeline_sharded_vs_single", text)

    single_latency = Histogram.merged(
        [h for _, h in single.metrics.find("probe_seconds")])
    benchmark.extra_info.update({
        "single_median_cpu_s": round(single_median, 4),
        "sharded_median_cpu_s": round(sharded_median, 4),
        "single_drops": int(sum(
            c.value for _, c in single.metrics.find("stage_dropped_total"))),
        "sharded_drops": int(sum(
            c.value for _, c in sharded.metrics.find("stage_dropped_total"))),
        "single_probe_p99_s": single_latency.quantile(0.99),
    })
    assert identical
    assert sharded.hitlist_scan.targets_seen == single.hitlist_scan.targets_seen


def _sweep_scan(shards, workers, pool=None, world=None):
    """One embedded-mode batch scan at a shard × worker configuration.

    ``workers=0`` is the in-process sequential reference and always
    builds a fresh world — sequential probes mutate live service state.
    Parallel runs may share ``world``/``pool``: workers scan private
    replicas, so the parent world stays untouched, and a persistent
    :class:`WorkerPool` lets a *warm* run reuse both spawned processes
    and the pickle-once world snapshot.  Wall clock, not cpu time —
    the pool's entire value is elapsed time, and its spawn/snapshot
    overhead must count against it.
    """
    if world is None or workers == 0:
        world = build_world(WorldConfig(seed=20240720, scale=0.1))
    source = parse("2001:db8:5c::1")
    # Engine construction registers the scanner source as a host, so a
    # shared world would otherwise grow a target between runs.
    hosts = sorted(address for address in world.network._hosts
                   if address != source)
    targets = hosts + [address ^ 0xDEAD for address in hosts]
    config = EngineConfig(drive_clock=False, seed=0x5EED)
    with use_registry() as registry:
        if workers == 0:
            engine = ShardedScanEngine(world.network, source, config,
                                       shards=shards, name="sweep")
        else:
            engine = ParallelShardedScanEngine(
                world.network, source, config,
                shards=shards, workers=workers, name="sweep", pool=pool)
        start = time.perf_counter()
        results = engine.run(targets, label="sweep")
        elapsed = time.perf_counter() - start
    return elapsed, results, registry


def test_parallel_worker_sweep(benchmark):
    """Sequential vs persistent-pool shard execution: speedup + reuse.

    Sweeps workers × shard counts.  Each parallel configuration runs
    twice on one persistent :class:`WorkerPool` — a *cold* run paying
    worker spawn + world pickling, then a *warm* run on the spawned
    workers and the cached snapshot (the ``ExecutionContext`` steady
    state).  Every run must land on the sequential reference's
    responsive sets, and every pool must ship the world snapshot
    exactly once across its two runs (the pickle-once contract — this
    assert is core-count-independent and always on).  The warm-speedup
    gate arms on machines with >=4 cores; on fewer the report records
    the skip and its reason instead of silently passing.
    """
    from repro.runtime.pool import WorkerPool

    worker_counts = (1, 2, 4, 8)
    shard_counts = (4, 8)
    cores = os.cpu_count() or 1
    gate_armed = cores >= 4
    rows = []
    sequential_elapsed = {}
    ship_counts = {}
    # One world serves every parallel configuration: the parent copy is
    # never scanned (workers build replicas), so state cannot leak.
    parallel_world = build_world(WorldConfig(seed=20240720, scale=0.1))

    for shards in shard_counts:
        seq_elapsed, seq_results, _ = _sweep_scan(shards, 0)
        sequential_elapsed[shards] = seq_elapsed
        rows.append((shards, 0, seq_elapsed, seq_elapsed, 1.0))
        for workers in worker_counts:
            with WorkerPool(workers) as pool:
                cold, cold_results, _ = _sweep_scan(
                    shards, workers, pool=pool, world=parallel_world)
                warm, warm_results, _ = _sweep_scan(
                    shards, workers, pool=pool, world=parallel_world)
                ship_counts[(shards, workers)] = \
                    pool.stats["snapshots_shipped"]
                assert pool.stats["generations"] == 1, \
                    f"shards={shards} workers={workers}: pool respawned"
            for results in (cold_results, warm_results):
                identical = all(
                    results.responsive_addresses(protocol)
                    == seq_results.responsive_addresses(protocol)
                    for protocol in seq_results.protocols())
                assert identical, f"shards={shards} workers={workers}"
                assert results.targets_seen == seq_results.targets_seen
            rows.append((shards, workers, cold, warm, seq_elapsed / warm))

    benchmark.pedantic(_sweep_scan, args=(4, 2), rounds=3, iterations=1)

    # The pickle-once contract, independent of core count: two runs on
    # one (world, pool) pair spool exactly one snapshot file.
    ship_once = all(count == 1 for count in ship_counts.values())
    warm_speedup_at_4 = next(speedup
                             for shards, workers, _, _, speedup in rows
                             if shards == 4 and workers == 4)

    text = (f"Sequential vs persistent-pool shard execution\n"
            f"  cores detected: {cores}\n"
            "  shards  workers  cold s   warm s   warm speedup\n")
    for shards, workers, cold, warm, speedup in rows:
        mode = "  seq" if workers == 0 else f"{workers:5d}"
        text += (f"  {shards:6d}  {mode}  {cold:7.3f}  {warm:7.3f}"
                 f"  {speedup:7.2f}x\n")
    text += "\n" + shape_check(
        "every cold and warm run reproduces the sequential responsive "
        "sets", True)
    text += "\n" + shape_check(
        "snapshot shipped once per (world, pool): "
        + ("OK" if ship_once else "VIOLATED"), ship_once)
    if gate_armed:
        gate_passed = warm_speedup_at_4 >= 1.0
        gate_status = "armed-passed" if gate_passed else "armed-failed"
        text += "\n" + shape_check(
            f"gate ARMED ({cores} cores >= 4): warm 4-worker run at "
            f"least matches sequential ({warm_speedup_at_4:.2f}x)",
            gate_passed)
    else:
        gate_status = "skipped"
        text += (f"\n[gate SKIPPED: {cores} core(s) < 4 — process "
                 f"parallelism cannot win here; warm 4-worker speedup "
                 f"observed {warm_speedup_at_4:.2f}x]\n")
    write_report("pipeline_parallel_sweep", text)

    benchmark.extra_info.update({
        "cores": cores,
        "gate_armed": gate_armed,
        "gate_status": gate_status,
        "warm_speedup_4shards_4workers": round(warm_speedup_at_4, 3),
        "snapshots_shipped_max": max(ship_counts.values()),
        "sequential_wall_s_4shards": round(sequential_elapsed[4], 4),
    })
    assert ship_once, f"pickle-once violated: {ship_counts}"
    if gate_armed:
        assert warm_speedup_at_4 >= 1.0, (
            f"gate armed ({cores} cores) but the warm 4-worker run lost "
            f"to sequential: {warm_speedup_at_4:.2f}x")


def _driving_scan(shards):
    """One driving-mode scan campaign under a fresh metrics registry.

    Driving mode advances the virtual clock through token-bucket waits
    and politeness delays, so ``probe_seconds`` records real (simulated)
    per-probe latency instead of the zeros of embedded mode.  Targets
    repeat, so the cool-down path is exercised too.
    """
    rng = random.Random(1905)
    network = Network()
    prefix = parse("2001:db8:600::")
    for index in range(40):
        device = dev.make_fritzbox(rng, index, 0x3C3786000000 + index)
        device.assign_address(prefix, rng)
        device.materialize(network)
    targets = [prefix | rng.getrandbits(64) for _ in range(300)]
    targets += rng.sample(targets, 60)          # duplicates hit cool-down
    with use_registry() as registry:
        engine = ShardedScanEngine(
            network, parse("2001:db8:5c::1"),
            EngineConfig(packets_per_second=100.0),
            shards=shards, name="bench")
        results = engine.run(targets, label=f"driving/{shards}")
    return registry, results


def test_probe_latency_driving_mode(benchmark):
    """p50/p99 probe latency per shard configuration (driving mode)."""
    registries = {shards: _driving_scan(shards)[0] for shards in (1, 4)}
    benchmark.pedantic(_driving_scan, args=(4,), rounds=3, iterations=1)

    text = "Driving-mode probe latency by shard configuration\n"
    latencies = {}
    for shards, registry in sorted(registries.items()):
        latencies[shards] = Histogram.merged(
            [h for _, h in registry.find("probe_seconds")])
        text += _metrics_lines(registry, f"{shards} shard(s)")
    text += "\n" + shape_check(
        "driving mode records nonzero probe latency",
        all(latency.sum > 0 for latency in latencies.values()))
    text += "\n" + shape_check(
        "cool-down rejections recorded for duplicate targets",
        all(sum(c.value
                for _, c in registry.find("scheduler_cooldown_hits_total")) > 0
            for registry in registries.values()))
    write_report("pipeline_probe_latency", text)

    benchmark.extra_info.update({
        f"p99_s_{shards}shards": latencies[shards].quantile(0.99)
        for shards in latencies
    })
    assert all(latency.count > 0 for latency in latencies.values())


def _ecosystem_run(workers=0):
    """One mixed-actor telescope campaign with strategy attribution."""
    return api.ecosystem(api.EcosystemConfig(
        world=WorldConfig(seed=20240720, scale=0.1),
        sweep_days=4, settle_days=2, workers=workers))


def test_ecosystem_attribution_population(benchmark):
    """Mixed-actor sweep: attribution quality at benchmark scale.

    Runs the full ecosystem pipeline (two NTP-sourcing actors plus the
    five-strategy leak population) and renders the confusion matrix and
    per-strategy precision/recall the attribution layer produced.  The
    quality gate is unconditional — the diagonal must stay >= 0.9 at
    this scale regardless of machine — and the sequential/pooled runs
    must agree cluster for cluster (extraction parity, not just table
    parity).
    """
    result = benchmark.pedantic(_ecosystem_run, rounds=3, iterations=1)
    pooled = _ecosystem_run(workers=2)

    attribution = result.attribution
    confusion = attribution.confusion()
    metrics = attribution.strategy_metrics()
    diagonal = attribution.diagonal_accuracy()
    accuracy = attribution.tables()["accuracy"]

    predicted_labels = sorted(
        {label for row in confusion.values() for label in row})
    confusion_rows = [
        [truth] + [row.get(label, 0) for label in predicted_labels]
        for truth, row in confusion.items()]
    metric_rows = [
        [strategy, fmt_pct(scores["precision"]), fmt_pct(scores["recall"]),
         fmt_int(int(scores["support"]))]
        for strategy, scores in metrics.items()]

    pooled_identical = (pooled.attribution.tables()
                        == attribution.tables())
    gate_passed = diagonal >= 0.9
    text = (
        "Mixed-actor population sweep (scale 0.1, 4 sweep days)\n"
        f"  telescope events:    {fmt_int(len(result.telescope.events))}\n"
        f"  source clusters:     {fmt_int(accuracy['clusters'])}\n"
        f"  labeled clusters:    {fmt_int(accuracy['labeled'])}\n"
        f"  confusion diagonal:  {fmt_pct(diagonal)}\n"
        "\nConfusion matrix (truth rows, predicted columns)\n"
        + render_table(["truth \\ predicted"] + predicted_labels,
                       confusion_rows)
        + "\nPer-strategy attribution quality\n"
        + render_table(["strategy", "precision", "recall", "support"],
                       metric_rows)
    )
    text += "\n" + shape_check(
        "every labeled strategy attributed (confusion diagonal >= 90%)",
        gate_passed)
    text += "\n" + shape_check(
        "pooled extraction (2 workers) reproduces the inline tables",
        pooled_identical)
    write_report("pipeline_ecosystem", text)

    benchmark.extra_info.update({
        "clusters": accuracy["clusters"],
        "labeled": accuracy["labeled"],
        "diagonal": round(diagonal, 4),
        "gate_armed": True,
        "gate_status": "armed-passed" if gate_passed else "armed-failed",
        "pooled_identical": pooled_identical,
    })
    assert gate_passed, f"confusion diagonal {diagonal:.2%} < 90%"
    assert pooled_identical
