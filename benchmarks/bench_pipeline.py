"""End-to-end pipeline cost: one full (small) study per round."""

from benchmarks.conftest import write_report
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.report import fmt_int, shape_check
from repro.world.population import WorldConfig


def _small_study():
    return run_experiment(ExperimentConfig(
        world=WorldConfig(scale=0.1),
        campaign=CampaignConfig(days=14, wire_fraction=0.02),
        rl_days=3, gap_days=3, lead_days=10, final_days=4,
    ))


def test_pipeline_end_to_end(benchmark):
    result = benchmark.pedantic(_small_study, rounds=3, iterations=1)

    text = (
        "End-to-end pipeline (scale 0.1, 14 collection days per round)\n"
        f"  devices simulated:   {fmt_int(len(result.world.devices))}\n"
        f"  addresses collected: {fmt_int(len(result.ntp_dataset))}\n"
        f"  targets scanned:     "
        f"{fmt_int(result.ntp_scan.targets_seen + result.hitlist_scan.targets_seen)}\n"
    )
    text += "\n" + shape_check(
        "full study completes with populated artefacts",
        len(result.ntp_dataset) > 0 and result.hitlist.full_size > 0)
    write_report("pipeline_end_to_end", text)

    benchmark.extra_info.update({
        "devices": len(result.world.devices),
        "collected": len(result.ntp_dataset),
    })
    assert len(result.ntp_dataset) > 0
