"""End-to-end pipeline cost: one full (small) study per round."""

import time

from benchmarks.conftest import write_report
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.report import fmt_int, shape_check
from repro.world.population import WorldConfig


def _small_study(shards=1):
    return run_experiment(ExperimentConfig(
        world=WorldConfig(scale=0.1),
        campaign=CampaignConfig(days=14, wire_fraction=0.02),
        rl_days=3, gap_days=3, lead_days=10, final_days=4,
        scan_shards=shards,
    ))


def test_pipeline_end_to_end(benchmark):
    result = benchmark.pedantic(_small_study, rounds=3, iterations=1)

    text = (
        "End-to-end pipeline (scale 0.1, 14 collection days per round)\n"
        f"  devices simulated:   {fmt_int(len(result.world.devices))}\n"
        f"  addresses collected: {fmt_int(len(result.ntp_dataset))}\n"
        f"  targets scanned:     "
        f"{fmt_int(result.ntp_scan.targets_seen + result.hitlist_scan.targets_seen)}\n"
    )
    text += "\n" + shape_check(
        "full study completes with populated artefacts",
        len(result.ntp_dataset) > 0 and result.hitlist.full_size > 0)
    write_report("pipeline_end_to_end", text)

    benchmark.extra_info.update({
        "devices": len(result.world.devices),
        "collected": len(result.ntp_dataset),
    })
    assert len(result.ntp_dataset) > 0


def test_pipeline_sharded_vs_single(benchmark):
    """shards=4 must merge to identical results at no extra cost."""
    single_times, sharded_times = [], []
    results = {}

    def _paired_round():
        """One single + one sharded study, back to back.

        Interleaving the two configurations inside each round cancels
        machine-load drift, and alternating which goes first cancels
        the position effect (the second study runs on a dirtier heap).
        """
        single_first = len(single_times) % 2 == 0
        order = (1, 4) if single_first else (4, 1)
        # CPU time, not wall clock: the comparison must not hinge on
        # scheduler preemption by whatever else shares this machine.
        start = time.process_time()
        first = _small_study(shards=order[0])
        mid = time.process_time()
        second = _small_study(shards=order[1])
        end = time.process_time()
        if single_first:
            results["single"], results["sharded"] = first, second
            single_times.append(mid - start)
            sharded_times.append(end - mid)
        else:
            results["sharded"], results["single"] = first, second
            sharded_times.append(mid - start)
            single_times.append(end - mid)

    benchmark.pedantic(_paired_round, rounds=4, iterations=1,
                       warmup_rounds=1)
    # The warmup pair lands in the lists too; drop it — its first leg
    # pays cold-start costs (imports, allocator growth) unfairly.
    single_times, sharded_times = single_times[1:], sharded_times[1:]
    rounds = len(single_times)
    single, sharded = results["single"], results["sharded"]

    def _median(times):
        ordered = sorted(times)
        return ordered[len(ordered) // 2]

    single_median = _median(single_times)
    sharded_median = _median(sharded_times)

    identical = all(
        single.hitlist_scan.responsive_addresses(protocol)
        == sharded.hitlist_scan.responsive_addresses(protocol)
        for protocol in single.hitlist_scan.protocols())
    text = (
        "Sharded scan engine vs single engine (scale 0.1 study)\n"
        f"  single engine (median of {rounds}):  {single_median:8.3f} cpu-s\n"
        f"  4 shards      (median of {rounds}):  {sharded_median:8.3f} cpu-s\n"
        f"  ratio (sharded/single):      "
        f"{sharded_median / single_median:8.3f}\n"
    )
    text += "\n" + shape_check(
        "sharded responsive sets identical to single engine", identical)
    text += "\n" + shape_check(
        "sharding adds no end-to-end slowdown (<=5% tolerance)",
        sharded_median <= single_median * 1.05)
    write_report("pipeline_sharded_vs_single", text)

    benchmark.extra_info.update({
        "single_median_cpu_s": round(single_median, 4),
        "sharded_median_cpu_s": round(sharded_median, 4),
    })
    assert identical
    assert sharded.hitlist_scan.targets_seen == single.hitlist_scan.targets_seen
