"""Section 5: identifying NTP-sourcing scanners with the telescope."""

from benchmarks.conftest import write_report
from repro.net.clock import HOUR
from repro.report import fmt_pct, render_table, shape_check


def test_sec5_telescope(telescope_run, benchmark):
    world, telescope, detector = telescope_run
    verdicts = benchmark(detector.report)

    rows = []
    for verdict in verdicts:
        observation = verdict.observation
        rows.append([
            observation.cluster[:34],
            verdict.kind,
            len(observation.triggering_servers),
            len(observation.ports),
            f"{observation.median_delay / HOUR:.2f} h",
            f"{observation.median_duration / 60:.0f} min",
            fmt_pct(observation.sensitive_share, 0),
        ])
    text = render_table(
        ["actor (scanner AS)", "verdict", "servers", "ports",
         "median delay", "scan duration", "sensitive ports"],
        rows, title="Section 5 - NTP-sourcing actors seen by the telescope")

    text += (f"\n\nbaits: {len(telescope.baits)}, response rate "
             f"{fmt_pct(telescope.response_rate())} (paper: 86 %), "
             f"match rate {fmt_pct(telescope.match_rate())} "
             "(paper: all packets matched), scatter events: "
             f"{len(telescope.scatter_events())}")

    kinds = sorted(v.kind for v in verdicts)
    research = next((v for v in verdicts if v.kind == "research"), None)
    covert = next((v for v in verdicts if v.kind == "covert"), None)
    checks = [
        shape_check("exactly two actors, one research and one covert",
                    kinds == ["covert", "research"]),
        shape_check("every inbound packet matched to an NTP query",
                    telescope.match_rate() == 1.0),
        shape_check("research actor: 15 servers, reacts within the hour, "
                    "~10 min per address",
                    research is not None
                    and len(research.observation.triggering_servers) == 15
                    and research.observation.median_delay < HOUR),
        shape_check("covert actor: multi-day spread, sensitive ports only, "
                    "cloud-hosted",
                    covert is not None
                    and covert.observation.median_delay > 6 * HOUR
                    and covert.observation.sensitive_share == 1.0),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("sec5_telescope", text)

    benchmark.extra_info.update({
        "actors_detected": len(verdicts),
        "match_rate": telescope.match_rate(),
    })
    assert kinds == ["covert", "research"]
