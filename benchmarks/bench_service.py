"""Benchmarks of the ``repro serve`` windowed-query front end.

Two costs decide whether the service answers interactive dashboards or
makes them wait: the cold path (checkpoint-anchored WAL replay per
frame) and the warm path (LRU frame-cache hits).  The sweep measures
queries/second and p50/p99 latency at 1, 4, and 16 concurrent clients
against one shared :class:`QueryService`, then gates the cache: a warm
query must be at least 3x faster than a cold one — ALWAYS armed, since
a cache that fails to beat replay is dead weight.
"""

import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from benchmarks.conftest import write_report
from repro import api
from repro.core.campaign import CampaignConfig
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.report import fmt_int, render_table
from repro.service import QueryService, ServiceConfig
from repro.world.population import WorldConfig

#: Campaign shape: long enough for several checkpoints and rolling
#: windows, small enough to build in seconds.
CAMPAIGN_DAYS = 8
WINDOW_DAYS = 4
STEP_DAYS = 2
#: The cache-speedup floor (always armed — see module docstring).
WARM_SPEEDUP_FLOOR = 3.0


@pytest.fixture(scope="module")
def service_store(tmp_path_factory):
    run_dir = tmp_path_factory.mktemp("bench-service") / "campaign"
    with use_registry(MetricsRegistry()):
        api.run_campaign(ServiceConfig(
            world=WorldConfig(seed=20240720, scale=0.05),
            campaign=CampaignConfig(days=10 ** 9, wire_fraction=0.0),
            store_dir=str(run_dir),
            campaign_days=CAMPAIGN_DAYS,
            checkpoint_days=3,
            hitlist_days=4,
            segment_max_records=2048,
        ))
    return run_dir


def _timed_query(service):
    start = time.perf_counter()
    document = service.query(since=0.0, window=WINDOW_DAYS,
                             step=STEP_DAYS)
    elapsed = time.perf_counter() - start
    assert document["windows"], "query returned no windows"
    return elapsed


def _percentile(samples, fraction):
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_cold_vs_warm_frame_cache(benchmark, service_store):
    """The headline gate: warm cache >= 3x faster than cold replay."""
    with use_registry(MetricsRegistry()):
        cold_samples = []
        for _ in range(3):
            # A fresh service per round: empty cache, cold every time.
            cold_samples.append(
                _timed_query(QueryService(str(service_store),
                                          window_days=WINDOW_DAYS,
                                          step_days=STEP_DAYS)))
        service = QueryService(str(service_store),
                               window_days=WINDOW_DAYS,
                               step_days=STEP_DAYS)
        _timed_query(service)  # populate the cache

        warm = benchmark(lambda: _timed_query(service))

    cold = min(cold_samples)
    warm = min(warm, min(benchmark.stats.stats.data))
    speedup = cold / warm if warm > 0 else float("inf")

    benchmark.extra_info.update({
        "cold_s": cold,
        "warm_s": warm,
        "speedup": speedup,
        "gate_armed": True,
        "gate_status": ("armed-passed"
                        if speedup >= WARM_SPEEDUP_FLOOR
                        else "armed-failed"),
    })
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm frame cache only {speedup:.1f}x faster than cold replay "
        f"(floor {WARM_SPEEDUP_FLOOR}x)")


def test_concurrent_query_sweep(service_store):
    """Queries/sec and tail latency at 1, 4, and 16 concurrent clients."""
    rows = []
    summary = {}
    with use_registry(MetricsRegistry()):
        service = QueryService(str(service_store),
                               window_days=WINDOW_DAYS,
                               step_days=STEP_DAYS)
        _timed_query(service)  # one warm-up pass builds the frames
        for clients in (1, 4, 16):
            queries = clients * 8
            began = time.perf_counter()
            with ThreadPoolExecutor(clients) as pool:
                latencies = list(pool.map(
                    lambda _: _timed_query(service), range(queries)))
            wall = time.perf_counter() - began
            throughput = queries / wall
            p50 = _percentile(latencies, 0.50) * 1e3
            p99 = _percentile(latencies, 0.99) * 1e3
            rows.append([str(clients), fmt_int(queries),
                         fmt_int(int(throughput)),
                         f"{p50:.2f}", f"{p99:.2f}"])
            summary[clients] = throughput

    text = render_table(
        ["clients", "queries", "queries/s", "p50 ms", "p99 ms"], rows,
        title=f"Windowed query service ({CAMPAIGN_DAYS}-day campaign, "
              f"{WINDOW_DAYS}-day windows, warm cache)")
    write_report("service", text)

    # Concurrency must not collapse throughput below a single client's.
    assert summary[16] > summary[1] / 4
