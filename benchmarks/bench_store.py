"""Benchmarks of the repro.store write-ahead log.

A store-backed study pays the WAL on every event: one canonical-JSON
encode + CRC + line write per record, an fsync per ack batch, and a
full sequential verify on recovery.  These benches pin the three costs
that decide whether ``--store`` is affordable at paper scale: append
throughput, checkpoint latency, and recovery-scan speed as a function
of log length.
"""

import time

from benchmarks.conftest import write_report
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.report import fmt_int, render_table
from repro.store import Checkpoint, RunStore, WalReader, WalWriter

RECORDS = 20_000


def _payload(i):
    return {"t": "grab", "label": "bench", "type": "http",
            "addr": f"2001:db8::{i:x}", "time": float(i), "ok": True,
            "port": 443, "status": 200, "title": f"Gerät-{i}",
            "server": None, "tls": None}


def _fill(wal_dir, count):
    with use_registry(MetricsRegistry()):
        writer = WalWriter(wal_dir, segment_max_records=4096,
                           fsync_every=256)
        for i in range(count):
            writer.append(_payload(i))
        writer.close()


def test_append_throughput(benchmark, tmp_path):
    counter = [0]

    def setup():
        counter[0] += 1
        wal_dir = tmp_path / f"wal-{counter[0]}"
        return (wal_dir,), {}

    def append_all(wal_dir):
        _fill(wal_dir, RECORDS)
        return RECORDS

    result = benchmark.pedantic(append_all, setup=setup, rounds=3,
                                iterations=1)
    assert result == RECORDS


def test_checkpoint_latency(benchmark, tmp_path):
    run_dir = tmp_path / "run"
    with use_registry(MetricsRegistry()):
        store = RunStore.create(run_dir, config={"bench": True},
                                cooldown_ttl=0.0)
        writer = store.new_writer()
        for i in range(2048):
            writer.append(_payload(i))
        writer.sync()
        state = {"counters": {f"series_{i}": i for i in range(64)}}
        seqs = iter(range(10_000))

        def checkpoint_once():
            store.write_checkpoint(Checkpoint(seq=next(seqs),
                                              chain=writer.chain,
                                              state=state))

        benchmark(checkpoint_once)
        writer.close()


def test_recovery_scan(benchmark, tmp_path):
    wal_dir = tmp_path / "wal"
    _fill(wal_dir, RECORDS)

    def scan():
        with use_registry(MetricsRegistry()):
            reader = WalReader(wal_dir)
            count = sum(1 for _ in reader.records())
        return count, reader.last_seq

    count, last_seq = benchmark(scan)
    assert count == RECORDS and last_seq == RECORDS


def test_store_scaling_report(tmp_path):
    """Recovery time grows linearly with log length — table artefact."""
    rows = []
    for count in (5_000, 20_000, 80_000):
        wal_dir = tmp_path / f"wal-{count}"
        start = time.perf_counter()
        _fill(wal_dir, count)
        append_s = time.perf_counter() - start

        start = time.perf_counter()
        with use_registry(MetricsRegistry()):
            seen = sum(1 for _ in WalReader(wal_dir).records())
        scan_s = time.perf_counter() - start
        assert seen == count

        rows.append([fmt_int(count),
                     fmt_int(int(count / append_s)),
                     fmt_int(int(count / scan_s))])

    text = render_table(
        ["records", "append rec/s", "recover rec/s"], rows,
        title="Run-store WAL scaling (append + recovery scan)")
    write_report("store", text)

    # Throughput must not collapse with log length (linear scans only).
    first = int(rows[0][2].replace(" ", ""))
    last = int(rows[-1][2].replace(" ", ""))
    assert last > first / 4
