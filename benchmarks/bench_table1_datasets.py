"""Table 1: distinct IPs / /48s / ASes per dataset, overlaps, densities."""

from benchmarks.conftest import write_report
from repro.report import fmt_float, fmt_int, render_table, shape_check


def test_table1_datasets(experiment, benchmark):
    table = benchmark(experiment.table1)

    rows = []
    for summary in table.summaries:
        rows.append([
            summary.label,
            fmt_int(summary.address_count),
            fmt_int(summary.net48_count),
            fmt_int(summary.as_count),
            fmt_float(summary.median_ips_per_48),
            fmt_float(summary.median_ips_per_as),
        ])
    text = render_table(
        ["dataset", "IP addresses", "/48 networks", "ASes",
         "median IPs per /48", "median IPs per AS"],
        rows, title="Table 1 - Number of distinct IPs/networks per dataset")
    overlap_rows = [
        [f"ntp ∩ {o.other_label}", fmt_int(o.address_overlap),
         fmt_int(o.net48_overlap), fmt_int(o.as_overlap)]
        for o in table.overlaps
    ]
    text += "\n\n" + render_table(
        ["overlap", "addresses", "/48 networks", "ASes"], overlap_rows)

    ntp = table.summary_for("ntp")
    full = table.summary_for("hitlist-full")
    public = table.summary_for("hitlist-public")
    checks = [
        shape_check("hitlist-full covers more ASes than NTP "
                    "(paper: 27 488 vs 10 515)",
                    full.as_count > ntp.as_count),
        shape_check("NTP /48s denser than hitlist (paper median 5 vs 2/1)",
                    ntp.median_ips_per_48 > full.median_ips_per_48
                    >= public.median_ips_per_48),
        shape_check("NTP ASes denser than hitlist (paper 708.5 vs 86/10)",
                    ntp.median_ips_per_as > full.median_ips_per_as
                    > public.median_ips_per_as),
        shape_check("exact-address overlap small vs /48 overlap substantial",
                    table.overlap_for("hitlist-full").address_overlap
                    < table.overlap_for("hitlist-full").net48_overlap * 5),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("table1_datasets", text)

    benchmark.extra_info.update({
        "ntp_addresses": ntp.address_count,
        "hitlist_full_addresses": full.address_count,
        "ntp_as_count": ntp.as_count,
        "hitlist_as_count": full.as_count,
    })
    assert full.as_count > ntp.as_count
    assert ntp.median_ips_per_as > full.median_ips_per_as
