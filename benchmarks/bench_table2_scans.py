"""Table 2: successful scans by protocol (addresses, TLS, certs/keys)."""

from benchmarks.conftest import write_report
from repro.report import fmt_int, fmt_pct, fmt_permille, render_table, shape_check
from repro.scan.result import PROTOCOLS, TLS_PROTOCOLS


def _table2(ntp, hitlist):
    rows = {}
    for protocol in PROTOCOLS:
        rows[protocol] = {
            "ntp_addrs": len(ntp.responsive_addresses(protocol)),
            "ntp_tls": len(ntp.tls_addresses(protocol)),
            "ntp_keys": len(ntp.unique_fingerprints(protocol)),
            "hit_addrs": len(hitlist.responsive_addresses(protocol)),
            "hit_tls": len(hitlist.tls_addresses(protocol)),
            "hit_keys": len(hitlist.unique_fingerprints(protocol)),
        }
    return rows


def test_table2_scans(experiment, benchmark):
    rows = benchmark(_table2, experiment.ntp_scan, experiment.hitlist_scan)

    rendered = []
    for protocol in PROTOCOLS:
        row = rows[protocol]
        rendered.append([
            protocol,
            fmt_int(row["ntp_addrs"]),
            fmt_int(row["ntp_tls"]) if protocol in TLS_PROTOCOLS else "-",
            fmt_int(row["ntp_keys"]) if row["ntp_keys"] else "-",
            fmt_int(row["hit_addrs"]),
            fmt_int(row["hit_tls"]) if protocol in TLS_PROTOCOLS else "-",
            fmt_int(row["hit_keys"]) if row["hit_keys"] else "-",
        ])
    text = render_table(
        ["protocol", "NTP #addrs", "NTP w/ TLS", "NTP #certs/keys",
         "hitlist #addrs", "hitlist w/ TLS", "hitlist #certs/keys"],
        rendered, title="Table 2 - Successful scans by protocol")

    ntp_rate = experiment.ntp_scan.hit_rate()
    hit_rate = experiment.hitlist_scan.hit_rate()
    text += (f"\n\nhit rate: NTP {fmt_permille(ntp_rate)} vs hitlist "
             f"{fmt_permille(hit_rate)} (paper: 0.42 ‰ for NTP)")

    from repro.analysis.devicetypes import coap_mac_dedup

    coap_with_mac, coap_macs = coap_mac_dedup(experiment.ntp_scan)
    if coap_with_mac:
        text += (f"\nCoAP MAC dedup: {fmt_int(coap_macs)} distinct MACs "
                 f"among {fmt_int(coap_with_mac)} EUI-64 endpoints "
                 f"({fmt_pct(coap_macs / coap_with_mac)}; paper: ~70 %)")

    hitlist_wins = all(
        rows[p]["hit_addrs"] > rows[p]["ntp_addrs"]
        for p in ("http", "https", "ssh"))
    checks = [
        shape_check("hitlist finds more endpoints on every protocol "
                    "except CoAP", hitlist_wins),
        shape_check("NTP finds >3x more CoAP endpoints (paper: 5 093 vs "
                    "1 511)", rows["coap"]["ntp_addrs"]
                    > 3 * rows["coap"]["hit_addrs"]),
        shape_check("hitlist HTTPS TLS success is poor (CDN fronts fail "
                    "the SNI-less handshake; paper: 4.28 %)",
                    rows["https"]["hit_tls"]
                    < rows["https"]["hit_addrs"] / 2),
        shape_check("NTP HTTPS TLS success is high (paper: 77.9 %)",
                    rows["https"]["ntp_tls"]
                    > rows["https"]["ntp_addrs"] / 2),
        shape_check("NTP hit rate below hitlist hit rate",
                    ntp_rate < hit_rate),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("table2_scans", text)

    benchmark.extra_info.update({
        "ntp_hit_rate_permille": round(ntp_rate * 1000, 3),
        "coap_factor": (rows["coap"]["ntp_addrs"]
                        / max(1, rows["coap"]["hit_addrs"])),
    })
    assert hitlist_wins
    assert rows["coap"]["ntp_addrs"] > 3 * rows["coap"]["hit_addrs"]
