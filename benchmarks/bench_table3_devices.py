"""Table 3: device-type groups the hitlist misses or underrepresents."""

from benchmarks.conftest import write_report
from repro.analysis import devicetypes
from repro.report import fmt_int, render_table, shape_check


def test_table3_devices(experiment, benchmark):
    table = benchmark(devicetypes.build_table3,
                      experiment.ntp_scan, experiment.hitlist_scan)

    hit_by_group = {g.representative: g.count for g in table.http_hitlist}
    seen = set()
    http_rows = []
    for group in list(table.http_ntp[:10]) + list(table.http_hitlist[:8]):
        if group.representative in seen:
            continue
        seen.add(group.representative)
        http_rows.append([
            group.representative[:48],
            fmt_int(table.http_group_count("ntp", group.representative)),
            fmt_int(table.http_group_count("hitlist", group.representative)),
        ])
    text = render_table(
        ["HTML title group", "NTP #certs", "hitlist #certs"], http_rows,
        title="Table 3 (HTTP) - title groups per unique certificate")

    text += "\n\n" + render_table(
        ["SSH OS", "NTP #keys", "hitlist #keys"],
        [[os_name, fmt_int(table.ssh_ntp[os_name]),
          fmt_int(table.ssh_hitlist[os_name])]
         for os_name in devicetypes.SSH_OS_BUCKETS],
        title="Table 3 (SSH) - OSes per unique host key")

    text += "\n\n" + render_table(
        ["CoAP group", "NTP #addrs", "hitlist #addrs"],
        [[group, fmt_int(table.coap_ntp[group]),
          fmt_int(table.coap_hitlist[group])]
         for group in devicetypes.COAP_GROUPS],
        title="Table 3 (CoAP) - resource groups per address")

    findings = devicetypes.new_or_underrepresented(table)
    total_new = sum(ntp for ntp, _ in findings.values())
    fritz_ntp = table.http_group_count("ntp", "FRITZ!Box")
    fritz_hit = table.http_group_count("hitlist", "FRITZ!Box")
    checks = [
        shape_check("FRITZ!Box dominates NTP-side HTTP (paper: 90.8 %)",
                    table.http_ntp
                    and "FRITZ!Box" in (table.http_ntp[0].representative,)),
        shape_check("FRITZ!Box massively underrepresented in hitlist "
                    "(paper: 257 195 vs 35 841)",
                    fritz_ntp > 5 * max(1, fritz_hit)),
        shape_check("D-LINK found only via the hitlist (paper: 0 vs 46 548)",
                    table.http_group_count("ntp", "D-LINK") == 0
                    < table.http_group_count("hitlist", "D-LINK")),
        shape_check("Raspbian found almost only via NTP (paper: 4 765 vs "
                    "658)", table.ssh_ntp["Raspbian"]
                    > table.ssh_hitlist["Raspbian"]),
        shape_check("FreeBSD found almost only via hitlist (paper: 140 vs "
                    "14 014)", table.ssh_hitlist["FreeBSD"]
                    > table.ssh_ntp["FreeBSD"]),
        shape_check("castdevice CoAP endpoints invisible to the hitlist "
                    "(paper: 2 967 vs 0)",
                    table.coap_ntp["castdevice"] > 0
                    == table.coap_hitlist["castdevice"]),
    ]
    text += "\n\n" + "\n".join(checks)
    text += (f"\n\n=> {fmt_int(total_new)} devices in {len(findings)} "
             "groups missed/underrepresented by the hitlist "
             "(paper: 283 867 in 6+ groups)")
    write_report("table3_devices", text)

    benchmark.extra_info.update({
        "new_or_underrepresented": total_new,
        "fritz_ntp": fritz_ntp,
        "fritz_hitlist": fritz_hit,
    })
    assert fritz_ntp > 5 * max(1, fritz_hit)
    assert table.coap_ntp["castdevice"] > 0
