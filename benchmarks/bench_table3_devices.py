"""Table 3: device-type groups the hitlist misses or underrepresents."""

from benchmarks.conftest import write_report
from repro.analysis import devicetypes
from repro.report import fmt_int, render_table, shape_check


def test_table3_devices(experiment, benchmark):
    table = benchmark(devicetypes.build_table3,
                      experiment.ntp_scan, experiment.hitlist_scan)

    hit_by_group = {g.representative: g.count for g in table.http_hitlist}
    seen = set()
    http_rows = []
    for group in list(table.http_ntp[:10]) + list(table.http_hitlist[:8]):
        if group.representative in seen:
            continue
        seen.add(group.representative)
        http_rows.append([
            group.representative[:48],
            fmt_int(table.http_group_count("ntp", group.representative)),
            fmt_int(table.http_group_count("hitlist", group.representative)),
        ])
    text = render_table(
        ["HTML title group", "NTP #certs", "hitlist #certs"], http_rows,
        title="Table 3 (HTTP) - title groups per unique certificate")

    text += "\n\n" + render_table(
        ["SSH OS", "NTP #keys", "hitlist #keys"],
        [[os_name, fmt_int(table.ssh_ntp[os_name]),
          fmt_int(table.ssh_hitlist[os_name])]
         for os_name in devicetypes.SSH_OS_BUCKETS],
        title="Table 3 (SSH) - OSes per unique host key")

    text += "\n\n" + render_table(
        ["CoAP group", "NTP #addrs", "hitlist #addrs"],
        [[group, fmt_int(table.coap_ntp[group]),
          fmt_int(table.coap_hitlist[group])]
         for group in devicetypes.COAP_GROUPS],
        title="Table 3 (CoAP) - resource groups per address")

    findings = devicetypes.new_or_underrepresented(table)
    total_new = sum(ntp for ntp, _ in findings.values())
    fritz_ntp = table.http_group_count("ntp", "FRITZ!Box")
    fritz_hit = table.http_group_count("hitlist", "FRITZ!Box")
    checks = [
        shape_check("FRITZ!Box dominates NTP-side HTTP (paper: 90.8 %)",
                    table.http_ntp
                    and "FRITZ!Box" in (table.http_ntp[0].representative,)),
        shape_check("FRITZ!Box massively underrepresented in hitlist "
                    "(paper: 257 195 vs 35 841)",
                    fritz_ntp > 5 * max(1, fritz_hit)),
        shape_check("D-LINK found only via the hitlist (paper: 0 vs 46 548)",
                    table.http_group_count("ntp", "D-LINK") == 0
                    < table.http_group_count("hitlist", "D-LINK")),
        shape_check("Raspbian found almost only via NTP (paper: 4 765 vs "
                    "658)", table.ssh_ntp["Raspbian"]
                    > table.ssh_hitlist["Raspbian"]),
        shape_check("FreeBSD found almost only via hitlist (paper: 140 vs "
                    "14 014)", table.ssh_hitlist["FreeBSD"]
                    > table.ssh_ntp["FreeBSD"]),
        shape_check("castdevice CoAP endpoints invisible to the hitlist "
                    "(paper: 2 967 vs 0)",
                    table.coap_ntp["castdevice"] > 0
                    == table.coap_hitlist["castdevice"]),
    ]
    text += "\n\n" + "\n".join(checks)
    text += (f"\n\n=> {fmt_int(total_new)} devices in {len(findings)} "
             "groups missed/underrepresented by the hitlist "
             "(paper: 283 867 in 6+ groups)")
    write_report("table3_devices", text)

    benchmark.extra_info.update({
        "new_or_underrepresented": total_new,
        "fritz_ntp": fritz_ntp,
        "fritz_hitlist": fritz_hit,
    })
    assert fritz_ntp > 5 * max(1, fritz_hit)
    assert table.coap_ntp["castdevice"] > 0


def _synthetic_titles(count, seed=20240720):
    """A deterministic title corpus shaped like real Table-3 input:
    version-variant device families plus a long tail of unique junk."""
    import random

    rng = random.Random(seed)
    families = [
        ("FRITZ!Box {}", ["7590", "7490", "7530", "6660 Cable", "5590"]),
        ("Plesk Obsidian 18.0.{}", [str(n) for n in range(30, 60)]),
        ("D-LINK DIR-{}", [str(n) for n in (615, 825, 842, 867)]),
        ("Welcome to nginx{}", ["!", " on Debian!", " on Ubuntu!"]),
        ("openmediavault Workbench {}", ["", "- login", "- dashboard"]),
        ("RouterOS router configuration page {}", ["v6", "v7"]),
        ("Synology DiskStation DS{}", [str(n) for n in (218, 220, 920)]),
        ("TP-Link Archer C{}", [str(n) for n in (6, 7, 80)]),
    ]
    corpus = []
    for _ in range(count):
        if rng.random() < 0.7:
            pattern, variants = rng.choice(families)
            title = pattern.format(rng.choice(variants)).strip()
        else:
            length = rng.randint(4, 60)
            title = "".join(rng.choice("0123456789abcdef -_/")
                            for _ in range(length))
        corpus.append((title, rng.randint(1, 50)))
    return corpus


def test_table3_clustering_fastpath(benchmark):
    """Banded+pruned clustering vs the unoptimized reference scan.

    Self-contained (no shared experiment fixture) so CI can run it
    standalone.  Gates: byte-identical groups, never more pairs than
    the plain path, and >= 5x fewer DP cells on this corpus.
    """
    import os
    import time

    from repro.analysis.levenshtein import ClusterStats, cluster_counts

    count = int(os.environ.get("REPRO_BENCH_TITLES", "1500"))
    corpus = _synthetic_titles(count)

    plain_stats = ClusterStats()
    plain_start = time.perf_counter()
    plain_groups = cluster_counts(corpus, banded=False, prune=False,
                                  stats=plain_stats)
    plain_seconds = time.perf_counter() - plain_start

    fast_stats = ClusterStats()
    fast_start = time.perf_counter()
    fast_groups = cluster_counts(corpus, stats=fast_stats)
    fast_seconds = time.perf_counter() - fast_start

    def shape(groups):
        return [(g.representative, dict(g.members)) for g in groups]

    assert shape(fast_groups) == shape(plain_groups)
    assert fast_stats.pairs_compared <= plain_stats.pairs_compared
    assert plain_stats.dp_cells >= 5 * fast_stats.dp_cells, (
        f"banded+pruned path saved less than 5x: "
        f"{plain_stats.dp_cells} vs {fast_stats.dp_cells}")

    rows = [
        ["titles fed", fmt_int(len(corpus)), fmt_int(len(corpus))],
        ["groups", fmt_int(len(plain_groups)), fmt_int(len(fast_groups))],
        ["pairs compared", fmt_int(plain_stats.pairs_compared),
         fmt_int(fast_stats.pairs_compared)],
        ["DP cells", fmt_int(plain_stats.dp_cells),
         fmt_int(fast_stats.dp_cells)],
        ["band early-exits", fmt_int(plain_stats.band_exits),
         fmt_int(fast_stats.band_exits)],
        ["candidates pruned", fmt_int(plain_stats.candidates_pruned),
         fmt_int(fast_stats.candidates_pruned)],
        ["wall seconds", f"{plain_seconds:.3f}", f"{fast_seconds:.3f}"],
    ]
    ratio = plain_stats.dp_cells / max(1, fast_stats.dp_cells)
    text = render_table(
        ["clustering", "plain (full DP)", "banded + pruned"], rows,
        title="Table 3 clustering fast path - synthetic corpus")
    text += "\n\n" + "\n".join([
        shape_check("byte-identical groups", True),
        shape_check("banded compares no more pairs than plain",
                    fast_stats.pairs_compared <= plain_stats.pairs_compared),
        shape_check(f">= 5x fewer DP cells (got {ratio:.1f}x)",
                    ratio >= 5.0),
    ])
    write_report("table3_clustering_fastpath", text)

    benchmark.extra_info.update({
        "titles": len(corpus),
        "plain_dp_cells": plain_stats.dp_cells,
        "fast_dp_cells": fast_stats.dp_cells,
        "dp_cell_ratio": round(ratio, 2),
        "plain_pairs": plain_stats.pairs_compared,
        "fast_pairs": fast_stats.pairs_compared,
    })
    benchmark(cluster_counts, corpus)
