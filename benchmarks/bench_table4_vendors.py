"""Table 4 (Appendix B): MAC/IP counts per manufacturer OUI."""

from benchmarks.conftest import write_report
from repro.analysis import macs
from repro.report import fmt_int, fmt_pct, render_table, shape_check


def test_table4_vendors(experiment, benchmark):
    report = benchmark(macs.analyze_dataset, experiment.ntp_dataset,
                       experiment.world.oui)

    text = render_table(
        ["manufacturer", "#MACs", "#IPs"],
        [[row.vendor[:52], fmt_int(row.mac_count), fmt_int(row.ip_count)]
         for row in report.top_vendors(20)],
        title="Table 4 - MAC/IP addresses by manufacturer OUI")

    text += (f"\n\nEUI-64 addresses: {fmt_int(report.eui64_addresses)} of "
             f"{fmt_int(report.total_addresses)} collected "
             f"({fmt_pct(report.eui64_share)}; paper: 903 M of 3 040 M), "
             f"\nwith the 'unique' bit: {fmt_int(report.unique_bit_addresses)}"
             f" addresses over {fmt_int(report.distinct_unique_macs)} MACs")

    top = report.vendor_rows[0] if report.vendor_rows else None
    avm_total = sum(row.mac_count for row in report.vendor_rows
                    if "AVM" in row.vendor)
    checks = [
        shape_check("AVM tops the manufacturer ranking (paper: ~2/3 of "
                    "all assigned MACs)",
                    top is not None and "AVM" in top.vendor),
        shape_check("more IPs than MACs (dynamic prefixes re-expose the "
                    "same interface)", report.unique_bit_addresses
                    > report.distinct_unique_macs),
        shape_check("unlisted OUIs present but not dominant (paper rank "
                    "8 for us vs rank 1 for R&L)",
                    any(row.vendor == macs.UNLISTED
                        for row in report.vendor_rows)
                    and (top is None or top.vendor != macs.UNLISTED)),
        shape_check("EUI-64 addresses are a minority of the collection",
                    report.eui64_share < 0.5),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("table4_vendors", text)

    benchmark.extra_info.update({
        "eui64_share": round(report.eui64_share, 4),
        "avm_macs": avm_total,
        "top_vendor": top.vendor if top else "",
    })
    assert top is not None and "AVM" in top.vendor
