"""Table 5 (Appendix C): scans per network, AS, and country."""

from benchmarks.conftest import write_report
from repro.analysis import aggregate
from repro.report import fmt_int, render_table, shape_check
from repro.scan.result import PROTOCOLS


def _tables(experiment):
    asdb = experiment.world.asdb
    return (aggregate.table5(experiment.ntp_scan, asdb),
            aggregate.table5(experiment.hitlist_scan, asdb))


def test_table5_networks(experiment, benchmark):
    ntp_table, hitlist_table = benchmark(_tables, experiment)

    text = ""
    for label, table in (("Our Data (NTP)", ntp_table),
                         ("TUM-style Hitlist", hitlist_table)):
        rows = [[level] + [fmt_int(table[p][level]) for p in PROTOCOLS]
                for level in aggregate.LEVELS]
        text += render_table(
            [label] + list(PROTOCOLS), rows,
            title=f"Table 5 - successful scans per level: {label}")
        text += "\n\n"

    addr_gap = aggregate.gap_factor(ntp_table["ssh"], hitlist_table["ssh"],
                                    "addrs")
    net56_gap = aggregate.gap_factor(ntp_table["ssh"], hitlist_table["ssh"],
                                     "/56")
    checks = [
        shape_check("SSH gap shrinks when counting /56 networks instead "
                    "of addresses (paper: ~10x -> <3.2x)",
                    net56_gap < addr_gap),
        shape_check("NTP results span dozens of ASes and many countries "
                    "(not single-operator artefacts)",
                    ntp_table["http"]["ASes"] >= 10
                    and ntp_table["http"]["countries"] >= 5),
        shape_check("hitlist spans more countries than NTP (paper: 194 vs "
                    "133 for HTTP)",
                    hitlist_table["http"]["countries"]
                    >= ntp_table["http"]["countries"]),
    ]
    text += "\n".join(checks)
    write_report("table5_networks", text)

    benchmark.extra_info.update({
        "ssh_addr_gap": round(addr_gap, 2),
        "ssh_56_gap": round(net56_gap, 2),
    })
    assert net56_gap < addr_gap
