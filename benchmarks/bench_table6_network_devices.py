"""Table 6 (Appendix C): device groups counted by networks."""

from benchmarks.conftest import write_report
from repro.analysis import aggregate
from repro.report import fmt_int, render_table, shape_check


def _grouped(experiment):
    return {
        "http_ntp": aggregate.group_network_table(
            aggregate.http_title_group_addresses(experiment.ntp_scan)),
        "http_hit": aggregate.group_network_table(
            aggregate.http_title_group_addresses(experiment.hitlist_scan)),
        "ssh_ntp": aggregate.group_network_table(
            aggregate.ssh_os_addresses(experiment.ntp_scan)),
        "ssh_hit": aggregate.group_network_table(
            aggregate.ssh_os_addresses(experiment.hitlist_scan)),
        "coap_ntp": aggregate.group_network_table(
            aggregate.coap_group_addresses(experiment.ntp_scan)),
        "coap_hit": aggregate.group_network_table(
            aggregate.coap_group_addresses(experiment.hitlist_scan)),
    }


def _rows(ntp_groups, hitlist_groups, top=10):
    names = sorted(set(ntp_groups) | set(hitlist_groups),
                   key=lambda name: -(ntp_groups.get(name, {}).get("IPs", 0)
                                      + hitlist_groups.get(name, {})
                                      .get("IPs", 0)))[:top]
    rows = []
    for name in names:
        ntp = ntp_groups.get(name, {})
        hit = hitlist_groups.get(name, {})
        rows.append([name[:40],
                     fmt_int(ntp.get("IPs", 0)), fmt_int(ntp.get("/56", 0)),
                     fmt_int(hit.get("IPs", 0)), fmt_int(hit.get("/56", 0))])
    return rows


def test_table6_network_devices(experiment, benchmark):
    grouped = benchmark(_grouped, experiment)

    text = render_table(
        ["HTML title group", "NTP IPs", "NTP /56", "hitlist IPs",
         "hitlist /56"],
        _rows(grouped["http_ntp"], grouped["http_hit"]),
        title="Table 6 (HTTP) - device groups by networks")
    text += "\n\n" + render_table(
        ["SSH OS", "NTP IPs", "NTP /56", "hitlist IPs", "hitlist /56"],
        _rows(grouped["ssh_ntp"], grouped["ssh_hit"]),
        title="Table 6 (SSH)")
    text += "\n\n" + render_table(
        ["CoAP group", "NTP IPs", "NTP /56", "hitlist IPs", "hitlist /56"],
        _rows(grouped["coap_ntp"], grouped["coap_hit"]),
        title="Table 6 (CoAP)")

    fritz_ips = grouped["http_ntp"].get("FRITZ!Box", {}).get("IPs", 0)
    fritz_56 = grouped["http_ntp"].get("FRITZ!Box", {}).get("/56", 0)
    raspbian_ntp = grouped["ssh_ntp"].get("Raspbian", {}).get("IPs", 0)
    raspbian_hit = grouped["ssh_hit"].get("Raspbian", {}).get("IPs", 0)
    checks = [
        shape_check("FRITZ!Box IPs exceed /56 networks (dynamic prefixes "
                    "double-count devices; paper: 354 934 IPs in 174 852 "
                    "/56s)", fritz_ips > fritz_56 > 0),
        shape_check("Raspbian remains NTP-dominated when counting by "
                    "network", raspbian_ntp > raspbian_hit),
        shape_check("castdevice group still hitlist-invisible by network",
                    grouped["coap_hit"].get("castdevice", {})
                    .get("IPs", 0) == 0),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("table6_network_devices", text)

    benchmark.extra_info.update({
        "fritz_ips": fritz_ips,
        "fritz_56": fritz_56,
    })
    assert fritz_ips >= fritz_56 > 0
