"""Table 7 (Appendix D): addresses collected per NTP server."""

from benchmarks.conftest import write_report
from repro.report import fmt_int, render_table, shape_check


def test_table7_per_server(experiment, benchmark):
    counts = benchmark(experiment.ntp_dataset.per_server_counts)

    ordered = sorted(counts.items(), key=lambda item: -item[1])
    text = render_table(
        ["location", "#addresses"],
        [[location, fmt_int(count)] for location, count in ordered],
        title="Table 7 - Number of collected addresses per server")

    spread = ordered[0][1] / max(1, ordered[-1][1])
    text += (f"\n\nspread: {spread:.0f}x between the busiest and quietest "
             "server (paper: 2 569 110 445 for India vs 9 093 946 for the "
             "Netherlands, ~283x)")
    checks = [
        shape_check("India collects by far the most (huge client base, "
                    "near-empty zone)", ordered[0][0] == "India"),
        shape_check("the Netherlands collects the least (small base, "
                    "crowded zone)", ordered[-1][0] == "the Netherlands"),
        shape_check("orders-of-magnitude spread between servers",
                    spread > 10),
        shape_check("all 11 deployment servers collected addresses",
                    len(ordered) == 11),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("table7_per_server", text)

    benchmark.extra_info.update({
        "top_location": ordered[0][0],
        "spread_factor": round(spread, 1),
    })
    assert ordered[0][0] == "India"
    assert spread > 10
