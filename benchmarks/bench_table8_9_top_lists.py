"""Tables 8-9 (Appendix D): top HTML title groups and top SSH OSes."""

from benchmarks.conftest import write_report
from repro.analysis import devicetypes
from repro.report import fmt_int, fmt_pct, render_table, shape_check


def _top_lists(ntp_scan, hitlist_scan):
    return {
        "titles_ntp": devicetypes.http_title_groups(ntp_scan),
        "titles_hit": devicetypes.http_title_groups(hitlist_scan),
        "os_ntp": devicetypes.ssh_os_by_key(ntp_scan),
        "os_hit": devicetypes.ssh_os_by_key(hitlist_scan),
    }


def test_table8_9_top_lists(experiment, benchmark):
    lists = benchmark(_top_lists, experiment.ntp_scan,
                      experiment.hitlist_scan)

    ntp_total = sum(g.count for g in lists["titles_ntp"]) or 1
    hit_total = sum(g.count for g in lists["titles_hit"]) or 1
    hit_by_repr = {g.representative: g.count for g in lists["titles_hit"]}
    rows = []
    for group in lists["titles_ntp"][:25]:
        hit = hit_by_repr.get(group.representative, 0)
        rows.append([group.representative[:48],
                     f"{fmt_int(group.count)} ({fmt_pct(group.count / ntp_total, 2)})",
                     f"{fmt_int(hit)} ({fmt_pct(hit / hit_total, 2)})"])
    text = render_table(
        ["HTML title group", "Our Data", "TUM-style Hitlist"], rows,
        title="Table 8 - top HTML title groups by unique certificate")

    from collections import Counter
    os_ntp = Counter(lists["os_ntp"].values())
    os_hit = Counter(lists["os_hit"].values())
    all_os = sorted(set(os_ntp) | set(os_hit),
                    key=lambda name: -(os_ntp[name] + os_hit[name]))
    text += "\n\n" + render_table(
        ["OS", "Our Data (#keys)", "Hitlist (#keys)"],
        [[name, fmt_int(os_ntp[name]), fmt_int(os_hit[name])]
         for name in all_os],
        title="Table 9 - top OSes from SSH server IDs by unique host key")

    checks = [
        shape_check("NTP-side top list led by consumer devices",
                    lists["titles_ntp"]
                    and "FRITZ" in lists["titles_ntp"][0].representative),
        shape_check("hitlist-side top list led by empty/default pages",
                    lists["titles_hit"]
                    and lists["titles_hit"][0].representative in (
                        devicetypes.NO_TITLE, "Welcome to nginx!",
                        "Apache2 Ubuntu Default Page: It works")),
        shape_check("Ubuntu leads both SSH OS lists (paper: 38.6 %/46 %)",
                    os_ntp.most_common(1)[0][0] == "Ubuntu"
                    and os_hit.most_common(1)[0][0] == "Ubuntu"),
    ]
    text += "\n\n" + "\n".join(checks)
    write_report("table8_9_top_lists", text)

    benchmark.extra_info.update({
        "ntp_title_groups": len(lists["titles_ntp"]),
        "hitlist_title_groups": len(lists["titles_hit"]),
    })
    assert lists["titles_ntp"]
