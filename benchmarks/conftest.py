"""Benchmark fixtures: one full-scale experiment, shared by every bench.

Each bench file regenerates one of the paper's tables or figures from
the shared experiment, times the analysis under pytest-benchmark, and
writes the rendered artefact to ``benchmarks/reports/`` with shape
checks against the paper's qualitative claims.
"""

from __future__ import annotations

import os

import pytest

from repro.core.actors import NtpSourcingActor, covert_profile, research_profile
from repro.core.campaign import CampaignConfig, CollectionCampaign
from repro.core.detection import ActorDetector
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.core.telescope import Telescope
from repro.net.clock import DAY, EventScheduler
from repro.world.population import WorldConfig, build_world

#: Scale of the benchmark world (the default paper-shaped world).
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def write_report(name: str, text: str) -> str:
    """Persist a rendered table/figure next to the benches and echo it."""
    os.makedirs(REPORT_DIR, exist_ok=True)
    path = os.path.join(REPORT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
    print(f"\n{text}\n[report written to {path}]")
    return path


@pytest.fixture(scope="session")
def experiment():
    """The full study at benchmark scale (built once per session)."""
    config = ExperimentConfig(
        world=WorldConfig(scale=BENCH_SCALE),
        campaign=CampaignConfig(days=28, wire_fraction=0.02),
        rl_days=8,
        gap_days=10,
        lead_days=21,
        final_days=7,
    )
    return run_experiment(config)


@pytest.fixture(scope="session")
def telescope_run():
    """A Section-5 world: two third-party actors + a week of telescope."""
    world = build_world(WorldConfig(scale=0.12))
    campaign = CollectionCampaign(world, CampaignConfig(days=1,
                                                        wire_fraction=0.0))
    scheduler = EventScheduler(world.clock)
    research_as = next(s for s in world.asdb.systems
                       if s.category == "Educational/Research")
    clouds = [s for s in world.asdb.systems
              if s.name.startswith("HyperCloud")]
    NtpSourcingActor(
        world, campaign.pool, scheduler, research_profile("GT"),
        server_base=world.allocate_prefix64(clouds[0].number),
        scanner_base=world.allocate_prefix64(research_as.number),
        zones=["us", "de", "jp", "gb", "fr"], seed=1)
    NtpSourcingActor(
        world, campaign.pool, scheduler, covert_profile("covert"),
        server_base=world.allocate_prefix64(clouds[1].number),
        scanner_base=world.allocate_prefix64(clouds[2].number),
        zones=["us", "nl"], seed=2)
    telescope = Telescope(world.network)
    for _ in range(7):
        telescope.sweep(campaign.pool)
        scheduler.run_until(world.clock.now() + DAY)
    scheduler.run_until(world.clock.now() + 4 * DAY)
    detector = ActorDetector(
        telescope, world.asdb,
        operator_of_server=lambda a: campaign.pool.server(a).operator)
    return world, telescope, detector
