#!/usr/bin/env python3
"""Consumer-device discovery: what hitlists miss (paper Section 4.3).

Runs the full study pipeline (R&L-style pre-campaign, our collection
with real-time scans, hitlist snapshot + scan) and reproduces Table 3:
HTML-title groups per unique certificate, SSH OSes per unique host key,
and CoAP resource groups — side by side for NTP-sourced targets vs the
TUM-style hitlist.

Run:  python examples/consumer_device_discovery.py
"""

from repro.analysis import devicetypes
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.report import fmt_int, render_table
from repro.world import WorldConfig


def main() -> None:
    print("Running the full study pipeline (this takes a few seconds) ...")
    result = run_experiment(ExperimentConfig(
        world=WorldConfig(scale=0.3),
        campaign=CampaignConfig(days=28, wire_fraction=0.02),
        rl_days=6, gap_days=6, lead_days=21, final_days=7,
    ))
    table = devicetypes.build_table3(result.ntp_scan, result.hitlist_scan)

    hit_by_group = {g.representative: g.count for g in table.http_hitlist}
    rows = []
    for group in table.http_ntp[:10]:
        rows.append([group.representative[:46],
                     fmt_int(group.count),
                     fmt_int(hit_by_group.get(group.representative, 0))])
    for group in table.http_hitlist[:6]:
        if group.representative not in {g.representative
                                        for g in table.http_ntp[:10]}:
            ntp_count = table.http_group_count("ntp", group.representative)
            rows.append([group.representative[:46],
                         fmt_int(ntp_count), fmt_int(group.count)])
    print("\n" + render_table(
        ["HTML title group", "NTP (#certs)", "hitlist (#certs)"],
        rows, title="Web device types (Table 3, HTTP)"))

    print("\n" + render_table(
        ["SSH OS", "NTP (#keys)", "hitlist (#keys)"],
        [[os_name, fmt_int(table.ssh_ntp[os_name]),
          fmt_int(table.ssh_hitlist[os_name])]
         for os_name in devicetypes.SSH_OS_BUCKETS],
        title="SSH operating systems (Table 3, SSH)"))

    print("\n" + render_table(
        ["CoAP resource group", "NTP (#addrs)", "hitlist (#addrs)"],
        [[group, fmt_int(table.coap_ntp[group]),
          fmt_int(table.coap_hitlist[group])]
         for group in devicetypes.COAP_GROUPS],
        title="CoAP devices (Table 3, CoAP)"))

    findings = devicetypes.new_or_underrepresented(table)
    total_new = sum(ntp for ntp, _ in findings.values())
    print(f"\n=> {fmt_int(total_new)} deployments of "
          f"{len(findings)} device groups are missed or underrepresented "
          "by the hitlist (the paper's 283 867-device headline):")
    for name, (ntp_count, hitlist_count) in sorted(
            findings.items(), key=lambda item: -item[1][0]):
        print(f"   {name:42s} NTP {fmt_int(ntp_count):>8s}  "
              f"hitlist {fmt_int(hitlist_count):>8s}")


if __name__ == "__main__":
    main()
