#!/usr/bin/env python3
"""Detecting NTP-sourcing scanners with a telescope (paper Section 5).

Deploys two third-party actors into the simulated NTP Pool — an overt
research scanner ("GT": 15 servers, 1011 ports, scans within the hour)
and a covert one (cloud-hosted, sensitive ports, multi-day delays) —
then runs the paper's telescope: one never-used bait source address per
pool query, a tap on the bait prefix, and behavioural classification of
whoever comes knocking.

Run:  python examples/covert_scanner_detection.py
"""

from repro.core.actors import NtpSourcingActor, covert_profile, research_profile
from repro.core.campaign import CampaignConfig, CollectionCampaign
from repro.core.detection import ActorDetector
from repro.core.telescope import Telescope
from repro.net.clock import DAY, HOUR, EventScheduler
from repro.report import fmt_pct
from repro.world import WorldConfig, build_world


def main() -> None:
    print("Building world and pool ...")
    world = build_world(WorldConfig(scale=0.1))
    campaign = CollectionCampaign(world, CampaignConfig(days=1,
                                                        wire_fraction=0.0))
    scheduler = EventScheduler(world.clock)

    research_as = next(s for s in world.asdb.systems
                       if s.category == "Educational/Research")
    clouds = [s for s in world.asdb.systems
              if s.name.startswith("HyperCloud")]

    print("Deploying third-party NTP-sourcing actors into the pool ...")
    NtpSourcingActor(
        world, campaign.pool, scheduler, research_profile("GT"),
        server_base=world.allocate_prefix64(clouds[0].number),
        scanner_base=world.allocate_prefix64(research_as.number),
        zones=["us", "de", "jp", "gb", "fr"], seed=1)
    NtpSourcingActor(
        world, campaign.pool, scheduler, covert_profile("covert"),
        server_base=world.allocate_prefix64(clouds[1].number),
        scanner_base=world.allocate_prefix64(clouds[2].number),
        zones=["us", "nl"], seed=2)

    print("Running the telescope: one fresh bait address per pool "
          "server, daily, for a week ...")
    telescope = Telescope(world.network)
    for _ in range(7):
        telescope.sweep(campaign.pool)
        scheduler.run_until(world.clock.now() + DAY)
    scheduler.run_until(world.clock.now() + 4 * DAY)  # covert tail

    print(f"\n  {len(telescope.baits)} baits sent, "
          f"{fmt_pct(telescope.response_rate())} of queries answered "
          "(paper: ~86 %)")
    print(f"  {len(telescope.events)} inbound scan events captured, "
          f"{fmt_pct(telescope.match_rate())} matched to an NTP query, "
          f"{len(telescope.scatter_events())} scatter events")

    detector = ActorDetector(
        telescope, world.asdb,
        operator_of_server=lambda a: campaign.pool.server(a).operator)
    for verdict in detector.report():
        observation = verdict.observation
        print(f"\nActor {observation.cluster} -> classified as "
              f"**{verdict.kind.upper()}**")
        print(f"  sources addresses from {len(observation.triggering_servers)}"
              f" pool servers (operator tag: "
              f"{', '.join(sorted(observation.server_operators))})")
        print(f"  scanned {observation.addresses_scanned} baits on "
              f"{len(observation.ports)} distinct ports")
        print(f"  median reaction delay {observation.median_delay / HOUR:.1f} h,"
              f" per-address scan duration "
              f"{observation.median_duration / 60:.0f} min")
        for reason in verdict.reasons:
            print(f"    - {reason}")


if __name__ == "__main__":
    main()
