#!/usr/bin/env python3
"""Pool-operator tuning: ramping netspeed to the scan budget.

Section 3.1 of the paper: "we monitor the number of requests and
increase our servers' operator-configurable weight in the NTP Pool
until reaching, at peak times, a request rate close to our maximum
scanning rate."  This example performs that ramp on the simulated pool
and then shows how the zone competition shapes per-server volumes
(Table 7's mechanics).

Run:  python examples/pool_operator_tuning.py
"""

from repro.core.campaign import CampaignConfig, CollectionCampaign
from repro.ntp.pool import weighted_request_rates
from repro.report import fmt_int, render_table
from repro.world import WorldConfig, build_world


def main() -> None:
    world = build_world(WorldConfig(scale=0.2))
    campaign = CollectionCampaign(
        world,
        CampaignConfig(days=28, netspeed=500, wire_fraction=0.0),
    )

    target = 60_000  # requests/day our scanner could keep up with
    print(f"Ramping netspeed towards {fmt_int(target)} requests/day ...")
    log = campaign.autotune_netspeed(target, max_days=6)
    print(render_table(
        ["tuning day", "observed requests", "netspeed during day"],
        [[str(day + 1), fmt_int(entry["observed_requests"]),
          fmt_int(entry["netspeed"])]
         for day, entry in enumerate(log)],
        title="Netspeed ramp (paper Section 3.1)"))

    # Closed-form cross-check: expected request share per server under
    # the final weights, from zone demand / competition alone.
    demand = world.geo.demand_weights()
    rates = weighted_request_rates(campaign.pool,
                                   {code.lower(): weight
                                    for code, weight in demand.items()})
    ours = {campaign.capture_servers[address].location: rate
            for address, rate in rates.items()
            if address in campaign.capture_servers}
    total = sum(ours.values())
    print("\n" + render_table(
        ["capture server", "expected share of our traffic"],
        [[location, f"{rate / total:.1%}"]
         for location, rate in sorted(ours.items(),
                                      key=lambda item: -item[1])],
        title="Expected per-server split (zone demand / competition)"))

    print("\nContinuing collection at the tuned weight ...")
    campaign.advance_days(4)
    report = campaign.report()
    print(f"collected {fmt_int(len(report.dataset))} distinct addresses "
          f"in {report.days_run} days "
          f"({fmt_int(report.dataset.total_requests)} requests)")


if __name__ == "__main__":
    main()
