#!/usr/bin/env python3
"""Quickstart: source IPv6 addresses from the NTP pool and scan them.

Builds a small simulated Internet, deploys the study's 11 capture
servers into the simulated NTP Pool, collects client addresses for one
week with real-time scanning, and prints what the method discovered.

Run:  python examples/quickstart.py
"""

from repro.core.campaign import CampaignConfig, CollectionCampaign
from repro.core.realtime import RealTimeScanQueue
from repro.ipv6 import format_address
from repro.report import fmt_int, fmt_permille, render_table
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import PROTOCOLS
from repro.world import WorldConfig, build_world


def main() -> None:
    print("Building a simulated Internet (scale 0.2) ...")
    world = build_world(WorldConfig(scale=0.2))
    print(f"  {fmt_int(len(world.devices))} devices across "
          f"{fmt_int(len(world.premises))} customer premises and "
          f"{len(world.asdb.systems)} ASes")

    # A scanner in research address space, fed in real time by the
    # collection campaign (embedded mode: the campaign owns the clock).
    research_as = next(s for s in world.asdb.systems
                       if s.category == "Educational/Research")
    scanner = ScanEngine(
        world.network,
        world.allocate_prefix64(research_as.number) | 0x10,
        EngineConfig(drive_clock=False),
    )
    queue = RealTimeScanQueue(scanner)

    print("\nDeploying 11 NTP capture servers into the pool ...")
    campaign = CollectionCampaign(
        world,
        CampaignConfig(days=7, wire_fraction=0.05),
        scan_queue=queue,
    )
    print(f"  pool now has {len(campaign.pool.servers)} members "
          f"({len(campaign.capture_servers)} are ours)")

    print("\nCollecting for 7 simulated days (scanning in real time) ...")
    report = campaign.run()

    print(f"  captured {fmt_int(len(report.dataset))} distinct IPv6 "
          f"addresses from {fmt_int(report.dataset.total_requests)} "
          f"NTP requests")
    print(f"  ({fmt_int(report.wire_queries)} full wire round-trips, "
          f"rest via the statistically identical fast path)")

    rows = sorted(report.dataset.per_server_counts().items(),
                  key=lambda item: -item[1])
    print("\n" + render_table(
        ["server location", "distinct addresses"],
        [[loc, fmt_int(count)] for loc, count in rows],
        title="Addresses per capture server (cf. paper Table 7)",
    ))

    results = queue.results
    print("\n" + render_table(
        ["protocol", "responsive addrs", "unique certs/keys"],
        [[proto,
          fmt_int(len(results.responsive_addresses(proto))),
          fmt_int(len(results.unique_fingerprints(proto)))]
         for proto in PROTOCOLS],
        title="Real-time scan results (cf. paper Table 2)",
    ))
    print(f"\nOverall hit rate: {fmt_permille(results.hit_rate())} "
          "(the paper's headline: NTP-sourced addresses are end-user "
          "devices, mostly firewalled)")

    some = sorted(results.responsive_addresses("https"))[:3]
    if some:
        print("\nSample responsive addresses:",
              ", ".join(format_address(a) for a in some))


if __name__ == "__main__":
    main()
