#!/usr/bin/env python3
"""Security-posture comparison (paper Section 4.4, Figures 2-3).

Reproduces the paper's security headline: the share of securely
configured SSH and IoT hosts drops sharply when scanning NTP-sourced
(end-user) addresses instead of a server-biased hitlist — hitlist-based
studies *overestimate* how well the IPv6 Internet is maintained.

Run:  python examples/security_comparison.py
"""

from repro.analysis import keyreuse, security
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.report import fmt_int, fmt_pct, render_table
from repro.world import WorldConfig


def main() -> None:
    print("Running the full study pipeline ...")
    result = run_experiment(ExperimentConfig(
        world=WorldConfig(scale=0.3),
        campaign=CampaignConfig(days=28, wire_fraction=0.02),
        rl_days=0, gap_days=6, lead_days=21, final_days=7,
        include_rl=False,
    ))
    ntp_scan, hitlist_scan = result.ntp_scan, result.hitlist_scan

    # Figure 2: SSH patch levels (Debian-derived hosts, by unique key).
    rows = []
    for label, scan in (("NTP-sourced", ntp_scan),
                        ("TUM-style hitlist", hitlist_scan)):
        report = security.ssh_outdatedness(label, scan)
        rows.append([label, fmt_int(report.assessed),
                     fmt_pct(report.outdated_share),
                     fmt_int(report.unassessable)])
    print("\n" + render_table(
        ["dataset", "assessed keys", "outdated", "patch level hidden"],
        rows, title="SSH up-to-dateness (Figure 2)"))

    # Figure 3: broker access control.
    rows = []
    for protocol in ("mqtt", "amqp"):
        for label, scan in (("NTP-sourced", ntp_scan),
                            ("TUM-style hitlist", hitlist_scan)):
            report = security.broker_access_control(label, scan, protocol)
            rows.append([protocol.upper(), label, fmt_int(report.total),
                         fmt_pct(report.access_control_share)])
    print("\n" + render_table(
        ["protocol", "dataset", "brokers", "access control enabled"],
        rows, title="Broker access control (Figure 3)"))

    # The headline.
    ntp, hitlist = security.security_gap(ntp_scan, hitlist_scan)
    print(f"\n=> Secure share: {fmt_pct(hitlist.secure_share)} of "
          f"{fmt_int(hitlist.total)} hitlist-found hosts vs only "
          f"{fmt_pct(ntp.secure_share)} of {fmt_int(ntp.total)} "
          "NTP-sourced hosts")
    print("   (paper: 43.5 % of 854 704 vs 28.4 % of 73 975)")

    # Section 6: key/certificate reuse.
    print("\nKey & certificate reuse across >2 ASes (Section 6):")
    for label, scan in (("NTP-sourced", ntp_scan),
                        ("hitlist", hitlist_scan)):
        report = keyreuse.analyze(label, scan, result.world.asdb)
        most = report.most_used
        line = (f"  {label:12s} {report.reused_key_count:4d} reused keys "
                f"covering {fmt_int(report.total_reused_addresses)} addresses"
                f" ({report.addresses_per_key:.1f} addrs/key)")
        if most is not None:
            line += (f"; most-used key: {fmt_int(most.addresses)} addrs "
                     f"in {most.ases} ASes")
        print(line)


if __name__ == "__main__":
    main()
