#!/usr/bin/env python3
"""Target generation trained on each address source (future work).

The paper's recommendations ask whether address generators trained on
NTP-sourced addresses could become an end-user address source.  This
example trains the entropy TGA on (a) the public hitlist and (b) the
NTP-collected set, scans both candidate sets, and shows why seed bias
decides everything: structured server space extrapolates; rotating
privacy space does not.

Run:  python examples/target_generation.py
"""

from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.ipv6 import parse
from repro.report import fmt_int, fmt_pct, render_table
from repro.scan.engine import EngineConfig, ScanEngine
from repro.world import WorldConfig
from repro.world.tga import evaluate, train


def main() -> None:
    print("Running the study pipeline to obtain both seed sets ...")
    result = run_experiment(ExperimentConfig(
        world=WorldConfig(scale=0.45),
        campaign=CampaignConfig(days=21, wire_fraction=0.0),
        include_rl=False, gap_days=4, lead_days=16, final_days=5,
    ))
    world = result.world

    rows = []
    for label, seeds in (
            ("hitlist-seeded", sorted(result.hitlist.public)),
            ("ntp-seeded", sorted(result.ntp_dataset.addresses))):
        tga = train(seeds, seed=23)
        engine = ScanEngine(
            world.network, parse("2001:db8:77bb::1"),
            EngineConfig(drive_clock=False, seed=len(label)))
        evaluation, _ = evaluate(tga, engine, 5000, label=label)
        segments = tga.segments
        rows.append([
            label, fmt_int(evaluation.seeds),
            f"{tga.total_entropy:.1f} bits",
            f"{segments['fixed']} fixed / {segments['dirty']} dirty / "
            f"{segments['free']} free",
            fmt_int(evaluation.candidates),
            fmt_int(evaluation.responsive),
            fmt_pct(evaluation.hit_rate, 2),
        ])
    print("\n" + render_table(
        ["training seeds", "count", "model entropy", "nybble segments",
         "candidates", "responsive", "hit rate"],
        rows, title="Entropy TGA trained on each address source"))

    print(
        "\nReading: the hitlist's structured addresses compress into a"
        "\nlow-entropy model whose candidates land near real servers and"
        "\naliased CDN subnets; the NTP set's privacy identifiers leave"
        "\nnothing to learn — supporting the paper's conclusion that"
        "\nend-user coverage needs *live* sources (like NTP), not"
        "\ngenerated lists.")


if __name__ == "__main__":
    main()
