"""Reproduction of "Time To Scan: Digging into NTP-based IPv6 Scanning"
(IMC 2025).

The package implements the paper's full measurement pipeline over a
simulated Internet: NTP-pool-based IPv6 address sourcing, real-time
multi-protocol application scanning, hitlist comparison, security
analyses, and detection of third-party NTP-sourcing scanners.

Quickstart::

    from repro import api, ExperimentConfig
    from repro.world import WorldConfig

    study = api.study(ExperimentConfig(world=WorldConfig(scale=0.2)))
    print(study.experiment.table1())     # rich result objects
    print(study.report.as_document())    # config + metrics + tables

``repro.api`` is the typed facade every CLI subcommand wraps;
``run_experiment`` remains the lower-level pipeline entry point.
"""

from repro import api
from repro.core.pipeline import ExperimentConfig, ExperimentResult, run_experiment
from repro.obs import MetricsRegistry, RunReport

__version__ = "1.1.0"

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "MetricsRegistry",
    "RunReport",
    "api",
    "run_experiment",
    "__version__",
]
