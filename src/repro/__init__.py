"""Reproduction of "Time To Scan: Digging into NTP-based IPv6 Scanning"
(IMC 2025).

The package implements the paper's full measurement pipeline over a
simulated Internet: NTP-pool-based IPv6 address sourcing, real-time
multi-protocol application scanning, hitlist comparison, security
analyses, and detection of third-party NTP-sourcing scanners.

Quickstart::

    from repro import run_experiment, ExperimentConfig
    from repro.world import WorldConfig

    result = run_experiment(ExperimentConfig(world=WorldConfig(scale=0.2)))
    print(result.table1())
"""

from repro.core.pipeline import ExperimentConfig, ExperimentResult, run_experiment

__version__ = "1.0.0"

__all__ = ["ExperimentConfig", "ExperimentResult", "run_experiment", "__version__"]
