"""The paper's analyses: structure, device types, security, MACs, reuse."""

from repro.analysis import (
    aggregate,
    aliases,
    devicetypes,
    fingerprint,
    keyreuse,
    levenshtein,
    lifetime,
    macs,
    parallel,
    security,
    structure,
)
from repro.analysis.devicetypes import DeviceTypeTable, build_table3
from repro.analysis.levenshtein import TitleClusterer, normalized_distance
from repro.analysis.parallel import AnalysisBundle, run_analysis
from repro.analysis.macs import MacReport, analyze_dataset
from repro.analysis.security import (
    AccessControlReport,
    OutdatednessReport,
    SecureShareReport,
    broker_access_control,
    secure_share,
    security_gap,
    ssh_outdatedness,
)
from repro.analysis.structure import StructureReport, analyze

__all__ = [
    "AccessControlReport",
    "AnalysisBundle",
    "DeviceTypeTable",
    "MacReport",
    "OutdatednessReport",
    "SecureShareReport",
    "StructureReport",
    "TitleClusterer",
    "aggregate",
    "aliases",
    "analyze",
    "analyze_dataset",
    "broker_access_control",
    "build_table3",
    "devicetypes",
    "fingerprint",
    "keyreuse",
    "levenshtein",
    "lifetime",
    "macs",
    "normalized_distance",
    "parallel",
    "run_analysis",
    "secure_share",
    "security",
    "security_gap",
    "ssh_outdatedness",
    "structure",
]
