"""Network/AS/country-aggregated scan views (Appendix C, Table 5).

Counts responsive endpoints per protocol at every aggregation level
the paper reports: addresses, /32–/64 networks, origin ASes, and
countries.  The same machinery backs Table 6 (device groups by
network) and Figures 5–6 (security by network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.ipv6 import address as addrmod
from repro.scan.result import PROTOCOLS, ScanResults
from repro.world.asdb import AsDatabase

#: Aggregation rows of Table 5.
LEVELS = ("addrs", "/32", "/48", "/56", "/64", "ASes", "countries")

_PREFIX_LEVELS = {"/32": 32, "/48": 48, "/56": 56, "/64": 64}


@dataclass(frozen=True)
class ProtocolAggregate:
    """One column of Table 5 (a protocol within one dataset)."""

    protocol: str
    counts: Mapping[str, int]

    def __getitem__(self, level: str) -> int:
        return self.counts[level]


def aggregate_protocol(results: ScanResults, protocol: str,
                       asdb: AsDatabase) -> ProtocolAggregate:
    """Count one protocol's responsive endpoints at every level."""
    addresses = results.responsive_addresses(protocol)
    counts: Dict[str, int] = {"addrs": len(addresses)}
    for label, bits in _PREFIX_LEVELS.items():
        counts[label] = len(addrmod.distinct_networks(addresses, bits))
    asns = set()
    countries = set()
    for value in addresses:
        system = asdb.lookup(value)
        if system is not None:
            asns.add(system.number)
            countries.add(system.country)
    counts["ASes"] = len(asns)
    counts["countries"] = len(countries)
    return ProtocolAggregate(protocol=protocol, counts=counts)


def table5(results: ScanResults, asdb: AsDatabase,
           protocols: Sequence[str] = PROTOCOLS) -> Dict[str, ProtocolAggregate]:
    """The full Table 5 block for one dataset."""
    return {protocol: aggregate_protocol(results, protocol, asdb)
            for protocol in protocols}


def gap_factor(ntp: ProtocolAggregate, hitlist: ProtocolAggregate,
               level: str) -> float:
    """hitlist/NTP ratio at one level (the paper's "gap lowers when
    aggregating" observation: compare the factor at addrs vs /56)."""
    ntp_count = ntp[level]
    if ntp_count == 0:
        return float("inf") if hitlist[level] else 1.0
    return hitlist[level] / ntp_count


# -- Table 6: groups counted by networks -----------------------------------

def count_by_networks(addresses: Iterable[int],
                      levels: Tuple[int, ...] = (48, 56, 64)) -> Dict[str, int]:
    """IPs plus distinct-network counts for one group of addresses."""
    materialized = set(addresses)
    counts = {"IPs": len(materialized)}
    for bits in levels:
        counts[f"/{bits}"] = len(addrmod.distinct_networks(materialized, bits))
    return counts


def group_network_table(groups: Mapping[str, Iterable[int]]) -> Dict[str, Dict[str, int]]:
    """Table 6: ``{group: {"IPs": n, "/48": n, "/56": n, "/64": n}}``."""
    return {name: count_by_networks(addresses)
            for name, addresses in groups.items()}


def http_title_group_addresses(results: ScanResults,
                               threshold: float = 0.25) -> Dict[str, set]:
    """Group responsive HTTP(S) addresses by clustered page title.

    Unlike Table 3 this counts *addresses* (plain HTTP included), which
    is Table 6's view; titles cluster with the same Levenshtein rule.
    """
    from repro.analysis.levenshtein import TitleClusterer

    clusterer = TitleClusterer(threshold)
    groups: Dict[str, set] = {}
    for grab in results.merged_http():
        if not grab.ok or grab.status != 200 or grab.title is None:
            continue
        group = clusterer.add(grab.title)
        groups.setdefault(group.representative, set()).add(grab.address)
    return groups


def ssh_os_addresses(results: ScanResults) -> Dict[str, set]:
    """Group responsive SSH addresses by banner OS (Table 6, SSH part)."""
    from repro.proto.ssh import SshIdentification, extract_os

    groups: Dict[str, set] = {}
    for grab in results.ssh:
        if not grab.ok or grab.banner is None:
            continue
        identification = SshIdentification(
            protocol="2.0", software=grab.software or "", comment=grab.comment,
        )
        groups.setdefault(extract_os(identification), set()).add(grab.address)
    return groups


def coap_group_addresses(results: ScanResults) -> Dict[str, set]:
    """Group responsive CoAP addresses by resource bucket (Table 6)."""
    from repro.analysis.devicetypes import coap_resource_group

    groups: Dict[str, set] = {}
    for grab in results.coap:
        if not grab.ok:
            continue
        groups.setdefault(coap_resource_group(grab.resources),
                          set()).add(grab.address)
    return groups
