"""Aliased-prefix detection (the TUM hitlist's dealiasing step).

Some /64s answer on *every* address — CDN edges, load balancers,
firewall tarpits.  Left unfiltered they flood responsive-address lists
with pseudo-hosts, which is why the TUM hitlist detects and publishes
aliased prefixes separately (Gasser et al., IMC'18).

Detection follows their approach: probe several pseudo-random interface
identifiers inside a candidate /64; if every probe answers, the prefix
is aliased with overwhelming probability (a real subnet with a handful
of hosts would need an absurd coincidence to cover all random picks).
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.ipv6 import address as addrmod
from repro.net.simnet import Network

#: Random probes per candidate /64.
DEFAULT_PROBES = 3

#: TCP port used for detection probes (HTTP answers everywhere relevant).
PROBE_PORT = 80


def is_aliased(network: Network, source: int, prefix64: int, *,
               probes: int = DEFAULT_PROBES,
               rng: Optional[random.Random] = None) -> bool:
    """Probe ``probes`` random addresses of a /64; aliased iff all answer."""
    if probes <= 0:
        raise ValueError(f"probes must be positive, got {probes}")
    chooser = rng or random.Random(prefix64 & 0xFFFFFFFF)
    base = addrmod.prefix(prefix64, 64)
    for _ in range(probes):
        iid = chooser.getrandbits(64) | 1  # never the base address
        stream = network.tcp_connect(source, addrmod.with_iid(base, iid),
                                     PROBE_PORT)
        if stream is None:
            return False
        stream.close()
    return True


@dataclass(frozen=True)
class AliasReport:
    """Outcome of dealiasing an address set."""

    kept: frozenset
    aliased_prefixes: frozenset  # /64 base addresses
    removed: int

    @property
    def aliased_count(self) -> int:
        return len(self.aliased_prefixes)


def filter_aliased(network: Network, source: int,
                   addresses: Iterable[int], *,
                   min_cluster: int = 2,
                   probes: int = DEFAULT_PROBES,
                   rng: Optional[random.Random] = None) -> AliasReport:
    """Remove addresses living inside aliased /64s.

    Only /64s holding at least ``min_cluster`` addresses are tested
    (single-address subnets cannot inflate a list, and probing every
    /64 would itself be a scan campaign).
    """
    by_prefix: Dict[int, List[int]] = defaultdict(list)
    materialized = list(addresses)
    for value in materialized:
        by_prefix[addrmod.prefix(value, 64)].append(value)
    aliased: Set[int] = set()
    for prefix64, members in by_prefix.items():
        if len(members) < min_cluster:
            continue
        if is_aliased(network, source, prefix64, probes=probes, rng=rng):
            aliased.add(prefix64)
    kept = frozenset(value for value in materialized
                     if addrmod.prefix(value, 64) not in aliased)
    return AliasReport(
        kept=kept,
        aliased_prefixes=frozenset(aliased),
        removed=len(materialized) - len(kept),
    )
