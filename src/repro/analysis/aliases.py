"""Aliased-prefix detection (the TUM hitlist's dealiasing step).

Some /64s answer on *every* address — CDN edges, load balancers,
firewall tarpits.  Left unfiltered they flood responsive-address lists
with pseudo-hosts, which is why the TUM hitlist detects and publishes
aliased prefixes separately (Gasser et al., IMC'18).

Detection follows their approach: probe several pseudo-random interface
identifiers inside a candidate /64; if every probe answers, the prefix
is aliased with overwhelming probability (a real subnet with a handful
of hosts would need an absurd coincidence to cover all random picks).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.ipv6 import address as addrmod
from repro.ipv6.columnar import AddressColumn
from repro.net.simnet import Network

#: Random probes per candidate /64.
DEFAULT_PROBES = 3

#: TCP port used for detection probes (HTTP answers everywhere relevant).
PROBE_PORT = 80


def is_aliased(network: Network, source: int, prefix64: int, *,
               probes: int = DEFAULT_PROBES,
               rng: Optional[random.Random] = None) -> bool:
    """Probe ``probes`` random addresses of a /64; aliased iff all answer."""
    if probes <= 0:
        raise ValueError(f"probes must be positive, got {probes}")
    chooser = rng or random.Random(prefix64 & 0xFFFFFFFF)
    base = addrmod.prefix(prefix64, 64)
    for _ in range(probes):
        iid = chooser.getrandbits(64) | 1  # never the base address
        stream = network.tcp_connect(source, addrmod.with_iid(base, iid),
                                     PROBE_PORT)
        if stream is None:
            return False
        stream.close()
    return True


@dataclass(frozen=True)
class AliasReport:
    """Outcome of dealiasing an address set."""

    kept: frozenset
    aliased_prefixes: frozenset  # /64 base addresses
    removed: int

    @property
    def aliased_count(self) -> int:
        return len(self.aliased_prefixes)


def filter_aliased(network: Network, source: int,
                   addresses: Iterable[int], *,
                   min_cluster: int = 2,
                   probes: int = DEFAULT_PROBES,
                   rng: Optional[random.Random] = None) -> AliasReport:
    """Remove addresses living inside aliased /64s.

    Only /64s holding at least ``min_cluster`` addresses are tested
    (single-address subnets cannot inflate a list, and probing every
    /64 would itself be a scan campaign).
    """
    column = AddressColumn.coerce(addresses)
    # Columnar /64 bucketing replaces the per-address grouping dict.
    # First-occurrence order is preserved so a caller-supplied shared
    # ``rng`` draws the same probe sequence per prefix as the seed-era
    # grouping loop did.
    aliased: Set[int] = set()
    for key, members in column.network_key_counts_ordered(64):
        if members < min_cluster:
            continue
        prefix64 = key << 64
        if is_aliased(network, source, prefix64, probes=probes, rng=rng):
            aliased.add(prefix64)
    aliased_keys = {prefix64 >> 64 for prefix64 in aliased}
    kept = frozenset(value for value in column
                     if value >> 64 not in aliased_keys)
    return AliasReport(
        kept=kept,
        aliased_prefixes=frozenset(aliased),
        removed=len(column) - len(kept),
    )
