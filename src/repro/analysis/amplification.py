"""NTP control-plane exposure analyses (the Fig 2/3-style study).

Consumes the ``ntp`` grabs of a :class:`~repro.scan.result.ScanResults`
and produces the two views of the security-configuration story the
monlist scan tells:

* **monlist exposure** — the share of responsive pool servers that
  still answer mode-7 monlist, broken down by advertised software
  group (NTPv3-era, unpatched v4 before 4.2.7p26, patched v4) — the
  patch-level bar chart, Figure 2 style;
* **amplification-factor distribution** — bytes returned per monlist
  request byte, bucketed over the exposed servers, plus the
  mean/maximum headline numbers the DRDoS literature reports — the
  Figure 3 style distribution.

Both reports are frozen dataclasses built by pure functions of the
grab list, and :func:`amplification_table` renders them to the aligned
text artefact the bench commits — byte-identical however many workers
produced the grabs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.report.formatting import fmt_float, fmt_int, fmt_pct, render_table
from repro.scan.result import NtpGrab, ScanResults

#: Software groups in report row order.
VERSION_GROUPS = ("ntpv3", "ntpd<4.2.7p26", "ntpd-patched", "unknown")

#: Amplification-factor bucket edges (factors land in ``[lo, hi)``).
DEFAULT_BUCKET_EDGES = (1.0, 5.0, 10.0, 15.0, 20.0, 30.0, 50.0)


def version_group(version: str) -> str:
    """Map an advertised version string onto its report group."""
    if not version:
        return "unknown"
    if version.startswith("xntpd 3") or version.startswith("ntpd 3"):
        return "ntpv3"
    if "4.2.6" in version or "4.2.5" in version:
        return "ntpd<4.2.7p26"
    if version.startswith("ntpd") or version.startswith("xntpd"):
        return "ntpd-patched"
    return "unknown"


@dataclass(frozen=True)
class ExposureRow:
    """One software group's monlist exposure."""

    group: str
    responsive: int
    exposed: int

    @property
    def exposed_share(self) -> float:
        return self.exposed / self.responsive if self.responsive else 0.0


@dataclass(frozen=True)
class MonlistExposureReport:
    """Share of pool servers answering monlist, by software group."""

    label: str
    responsive: int
    exposed: int
    rows: Tuple[ExposureRow, ...]

    @property
    def exposed_share(self) -> float:
        return self.exposed / self.responsive if self.responsive else 0.0


def monlist_exposure(label: str,
                     results: ScanResults) -> MonlistExposureReport:
    """Assess which responsive servers still answer mode-7 monlist."""
    responsive = [grab for grab in results.grabs("ntp") if grab.ok]
    counts = {group: [0, 0] for group in VERSION_GROUPS}
    for grab in responsive:
        bucket = counts[version_group(grab.version or "")]
        bucket[0] += 1
        if grab.monlist:
            bucket[1] += 1
    rows = tuple(
        ExposureRow(group=group, responsive=count[0], exposed=count[1])
        for group, count in counts.items() if count[0]
    )
    return MonlistExposureReport(
        label=label,
        responsive=len(responsive),
        exposed=sum(1 for grab in responsive if grab.monlist),
        rows=rows,
    )


@dataclass(frozen=True)
class AmplificationBucket:
    """One bar of the amplification-factor distribution."""

    #: Rendered bucket label, e.g. ``"10–15x"``.
    label: str
    count: int


@dataclass(frozen=True)
class AmplificationReport:
    """Distribution of bytes-out per byte-in over exposed servers."""

    label: str
    samples: int
    buckets: Tuple[AmplificationBucket, ...]
    mean: float
    maximum: float


def amplification_distribution(
        label: str, results: ScanResults, *,
        edges: Sequence[float] = DEFAULT_BUCKET_EDGES
) -> AmplificationReport:
    """Bucket the amplification factors of monlist-answering servers."""
    if list(edges) != sorted(edges) or len(set(edges)) != len(edges):
        raise ValueError(f"bucket edges must strictly increase: {edges!r}")
    factors = sorted(
        grab.amplification for grab in results.grabs("ntp")
        if grab.ok and grab.monlist and grab.request_bytes > 0
    )
    bounds = [0.0] + list(edges) + [float("inf")]
    labels = []
    for lo, hi in zip(bounds, bounds[1:]):
        if hi == float("inf"):
            labels.append(f">={fmt_float(lo, 0)}x")
        else:
            labels.append(f"{fmt_float(lo, 0)}-{fmt_float(hi, 0)}x")
    counts = [0] * (len(bounds) - 1)
    for factor in factors:
        for index, (lo, hi) in enumerate(zip(bounds, bounds[1:])):
            if lo <= factor < hi:
                counts[index] += 1
                break
    return AmplificationReport(
        label=label,
        samples=len(factors),
        buckets=tuple(AmplificationBucket(label=text, count=count)
                      for text, count in zip(labels, counts)),
        mean=sum(factors) / len(factors) if factors else 0.0,
        maximum=factors[-1] if factors else 0.0,
    )


def amplification_table(exposure: MonlistExposureReport,
                        distribution: AmplificationReport) -> str:
    """Render both reports as one aligned text artefact.

    A pure function of the two frozen reports — the parity tests pin
    this string byte-identical across 0/2/4-worker runs.
    """
    exposure_rows = [
        [row.group, fmt_int(row.responsive), fmt_int(row.exposed),
         fmt_pct(row.exposed_share)]
        for row in exposure.rows
    ]
    exposure_rows.append([
        "total", fmt_int(exposure.responsive), fmt_int(exposure.exposed),
        fmt_pct(exposure.exposed_share)])
    text = render_table(
        ["software group", "responsive", "answer monlist", "share"],
        exposure_rows,
        title=f"monlist exposure ({exposure.label})")
    text += "\n\n" + render_table(
        ["amplification", "servers"],
        [[bucket.label, fmt_int(bucket.count)]
         for bucket in distribution.buckets],
        title=f"amplification factors ({distribution.label})")
    text += (f"\n\nexposed servers: {fmt_int(distribution.samples)}; "
             f"mean {fmt_float(distribution.mean, 1)}x, "
             f"max {fmt_float(distribution.maximum, 1)}x")
    return text
