"""Device-type identification (Section 4.3, Table 3).

Three protocol-specific indicators approximate what kind of deployment
answered a probe:

* **HTTP(S)** — the HTML page title of status-200 responses, grouped by
  normalized Levenshtein distance, counted per *unique certificate*;
* **SSH** — the OS distribution named in the server identification
  string, counted per *unique host key*;
* **CoAP** — the advertised resource set, bucketed by well-known
  prefixes (castdevice, qlink, efento, nanoleaf, …), counted per
  address.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.levenshtein import (
    DEFAULT_THRESHOLD,
    ClusterStats,
    TitleGroup,
    cluster_counts,
    within,
)
from repro.obs import current_registry
from repro.proto.ssh import SshIdentification, extract_os
from repro.scan.result import ScanResults

#: Placeholder label for responses without an HTML title *tag*.
NO_TITLE = "(no title present)"

#: Placeholder label for an empty-but-present ``<title></title>``.
#: Distinct from :data:`NO_TITLE`: a present-but-empty tag is a
#: different (often device-identifying) behaviour than no tag at all,
#: so the two must not collapse into one group.
EMPTY_TITLE = "(empty title)"

#: Table 3's SSH rows.
SSH_OS_BUCKETS = ("Ubuntu", "Debian", "Raspbian", "FreeBSD", "other/unknown")

#: Table 3's CoAP rows, in classification order.
COAP_GROUPS = ("castdevice", "qlink", "efento", "nanoleaf", "empty", "other")


# -- HTTP ---------------------------------------------------------------

def _title_label(title: Optional[str]) -> str:
    """A grab's title as a grouping label.

    ``None`` (no ``<title>`` tag at all) and ``""`` (a present but
    empty tag) are distinct behaviours and get distinct labels — the
    seed implementation's ``title or NO_TITLE`` collapsed both into
    :data:`NO_TITLE`.
    """
    if title is None:
        return NO_TITLE
    if title == "":
        return EMPTY_TITLE
    return title


def http_titles_by_certificate(results: ScanResults) -> Dict[bytes, str]:
    """Map each unique certificate to the title it served.

    Follows the paper's filters: TLS-enabled endpoints only, HTTP
    status 200 only (excludes CDN error pages).  The first title seen
    for a certificate wins; devices of one type serve one page anyway.
    """
    titles: Dict[bytes, str] = {}
    for grab in results.https:
        if not grab.ok or grab.status != 200:
            continue
        if grab.tls is None or not grab.tls.ok or grab.tls.fingerprint is None:
            continue
        titles.setdefault(grab.tls.fingerprint, _title_label(grab.title))
    return titles


def http_title_groups(results: ScanResults,
                      threshold: float = 0.25,
                      dataset: str = "") -> List[TitleGroup]:
    """Table 3 (HTTP): title groups weighted by unique certificates.

    Clustering work (pairs compared, DP cells, band early-exits, cache
    hits) is published as ``analysis_*`` counters on the current
    metrics registry, labeled with ``dataset`` when given.
    """
    counts = Counter(http_titles_by_certificate(results).values())
    stats = ClusterStats()
    groups = cluster_counts(counts.items(), threshold=threshold, stats=stats)
    labels = {"table": "table3_http"}
    if dataset:
        labels["dataset"] = dataset
    stats.publish(current_registry(), **labels)
    return groups


# -- SSH ----------------------------------------------------------------

def ssh_os_by_key(results: ScanResults) -> Dict[bytes, str]:
    """Map each unique host key to the OS its banner names."""
    os_by_key: Dict[bytes, str] = {}
    for grab in results.ssh:
        if not grab.ok or grab.key_fingerprint is None or grab.banner is None:
            continue
        identification = SshIdentification(
            protocol="2.0",
            software=grab.software or "",
            comment=grab.comment,
        )
        os_by_key.setdefault(grab.key_fingerprint, extract_os(identification))
    return os_by_key


def ssh_os_counts(results: ScanResults) -> Dict[str, int]:
    """Table 3 (SSH): host keys per OS bucket."""
    counts = Counter(ssh_os_by_key(results).values())
    table = {bucket: 0 for bucket in SSH_OS_BUCKETS}
    for os_name, count in counts.items():
        bucket = os_name if os_name in table else "other/unknown"
        table[bucket] += count
    return table


# -- CoAP ---------------------------------------------------------------

def coap_resource_group(resources: Sequence[str]) -> str:
    """Classify an advertised resource set into Table 3's buckets."""
    if not resources:
        return "empty"
    joined = " ".join(resources)
    if any(r.startswith("/castDevice") for r in resources):
        return "castdevice"
    if any(r.startswith("/qlink") for r in resources):
        return "qlink"
    if {"/m", "/c", "/t"} <= set(resources) or "efento" in joined:
        return "efento"
    if any(r.startswith("/panel") for r in resources) or "nanoleaf" in joined:
        return "nanoleaf"
    meaningful = [r for r in resources if r != "/.well-known/core"]
    if not meaningful:
        return "empty"
    return "other"


def coap_mac_dedup(results: ScanResults) -> Tuple[int, int]:
    """Deduplicate responsive CoAP endpoints by embedded MAC address.

    Table 2's footnote for CoAP: lacking TLS certificates, the paper
    filters CoAP finds by the EUI-64-embedded MAC and reports ~70 %
    unique — evidence the scan did not keep re-finding the same boxes.
    Returns ``(addresses_with_mac, distinct_macs)``.
    """
    from repro.ipv6 import eui64

    macs: set = set()
    with_mac = 0
    seen: set = set()
    for grab in results.coap:
        if not grab.ok or grab.address in seen:
            continue
        seen.add(grab.address)
        mac = eui64.extract_mac(grab.address)
        if mac is not None:
            with_mac += 1
            macs.add(mac)
    return with_mac, len(macs)


def coap_group_counts(results: ScanResults) -> Dict[str, int]:
    """Table 3 (CoAP): responsive addresses per resource group."""
    table = {group: 0 for group in COAP_GROUPS}
    seen: set = set()
    for grab in results.coap:
        if not grab.ok or grab.address in seen:
            continue
        seen.add(grab.address)
        table[coap_resource_group(grab.resources)] += 1
    return table


# -- the combined Table 3 -------------------------------------------------

@dataclass(frozen=True)
class DeviceTypeTable:
    """Table 3 for one pair of campaigns (NTP vs hitlist)."""

    http_ntp: Tuple[TitleGroup, ...]
    http_hitlist: Tuple[TitleGroup, ...]
    ssh_ntp: Mapping[str, int]
    ssh_hitlist: Mapping[str, int]
    coap_ntp: Mapping[str, int]
    coap_hitlist: Mapping[str, int]

    def http_group(self, side: str, representative: str,
                   threshold: Optional[float] = None) -> Optional[TitleGroup]:
        """The group a representative title belongs to on one side.

        Matches by representative equality, then by membership, then —
        when ``threshold`` is given — by the normalized-distance
        threshold against each group's representative.  Membership
        matches take precedence over threshold matches so a title that
        was actually clustered into a group is never re-attributed to
        a nearer-by-representative neighbour.
        """
        groups = self.http_ntp if side == "ntp" else self.http_hitlist
        for group in groups:
            if group.representative == representative or \
                    representative in group.members:
                return group
        if threshold is not None:
            for group in groups:
                if within(representative, group.representative, threshold):
                    return group
        return None

    def http_group_count(self, side: str, representative: str) -> int:
        """Certificates in the group whose representative matches."""
        group = self.http_group(side, representative)
        return group.count if group is not None else 0


def build_table3(ntp: ScanResults, hitlist: ScanResults) -> DeviceTypeTable:
    """Compute the full Table 3 from two scan campaigns."""
    return DeviceTypeTable(
        http_ntp=tuple(http_title_groups(ntp, dataset="ntp")),
        http_hitlist=tuple(http_title_groups(hitlist, dataset="hitlist")),
        ssh_ntp=ssh_os_counts(ntp),
        ssh_hitlist=ssh_os_counts(hitlist),
        coap_ntp=coap_group_counts(ntp),
        coap_hitlist=coap_group_counts(hitlist),
    )


def new_or_underrepresented(table: DeviceTypeTable,
                            factor: float = 5.0,
                            threshold: float = DEFAULT_THRESHOLD,
                            ) -> Dict[str, Tuple[int, int]]:
    """Device groups the hitlist misses or underrepresents.

    Returns ``{group: (ntp_count, hitlist_count)}`` for every HTTP
    title group, SSH OS, and CoAP group where the NTP count exceeds
    ``factor`` × the hitlist count — the basis of the paper's
    "283 867 new or underrepresented devices" headline.

    HTTP matching goes through :meth:`DeviceTypeTable.http_group`:
    the two sides are clustered independently, so the hitlist group
    covering an NTP representative may carry a *different*
    representative — the seed implementation matched representatives
    exactly and therefore scored such groups as hitlist misses,
    inflating the headline.  Titleless buckets (:data:`NO_TITLE`,
    :data:`EMPTY_TITLE`) identify no device type and stay excluded.
    """
    findings: Dict[str, Tuple[int, int]] = {}
    for group in table.http_ntp:
        if group.representative in (NO_TITLE, EMPTY_TITLE):
            continue
        match = table.http_group("hitlist", group.representative,
                                 threshold=threshold)
        hit = match.count if match is not None else 0
        if group.count > factor * hit:
            findings[f"http:{group.representative}"] = (group.count, hit)
    for os_name in SSH_OS_BUCKETS[:-1]:
        ntp_count = table.ssh_ntp.get(os_name, 0)
        hit_count = table.ssh_hitlist.get(os_name, 0)
        if ntp_count > factor * hit_count and ntp_count > 0:
            findings[f"ssh:{os_name}"] = (ntp_count, hit_count)
    for group in COAP_GROUPS:
        ntp_count = table.coap_ntp.get(group, 0)
        hit_count = table.coap_hitlist.get(group, 0)
        if ntp_count > factor * hit_count and ntp_count > 0:
            findings[f"coap:{group}"] = (ntp_count, hit_count)
    return findings
