"""Device-type identification (Section 4.3, Table 3).

Three protocol-specific indicators approximate what kind of deployment
answered a probe:

* **HTTP(S)** — the HTML page title of status-200 responses, grouped by
  normalized Levenshtein distance, counted per *unique certificate*;
* **SSH** — the OS distribution named in the server identification
  string, counted per *unique host key*;
* **CoAP** — the advertised resource set, bucketed by well-known
  prefixes (castdevice, qlink, efento, nanoleaf, …), counted per
  address.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.analysis.levenshtein import TitleGroup, cluster_counts
from repro.proto.ssh import SshIdentification, extract_os
from repro.scan.result import ScanResults

#: Placeholder label for responses without an HTML title.
NO_TITLE = "(no title present)"

#: Table 3's SSH rows.
SSH_OS_BUCKETS = ("Ubuntu", "Debian", "Raspbian", "FreeBSD", "other/unknown")

#: Table 3's CoAP rows, in classification order.
COAP_GROUPS = ("castdevice", "qlink", "efento", "nanoleaf", "empty", "other")


# -- HTTP ---------------------------------------------------------------

def http_titles_by_certificate(results: ScanResults) -> Dict[bytes, str]:
    """Map each unique certificate to the title it served.

    Follows the paper's filters: TLS-enabled endpoints only, HTTP
    status 200 only (excludes CDN error pages).  The first title seen
    for a certificate wins; devices of one type serve one page anyway.
    """
    titles: Dict[bytes, str] = {}
    for grab in results.https:
        if not grab.ok or grab.status != 200:
            continue
        if grab.tls is None or not grab.tls.ok or grab.tls.fingerprint is None:
            continue
        titles.setdefault(grab.tls.fingerprint, grab.title or NO_TITLE)
    return titles


def http_title_groups(results: ScanResults,
                      threshold: float = 0.25) -> List[TitleGroup]:
    """Table 3 (HTTP): title groups weighted by unique certificates."""
    counts = Counter(http_titles_by_certificate(results).values())
    return cluster_counts(counts.items(), threshold=threshold)


# -- SSH ----------------------------------------------------------------

def ssh_os_by_key(results: ScanResults) -> Dict[bytes, str]:
    """Map each unique host key to the OS its banner names."""
    os_by_key: Dict[bytes, str] = {}
    for grab in results.ssh:
        if not grab.ok or grab.key_fingerprint is None or grab.banner is None:
            continue
        identification = SshIdentification(
            protocol="2.0",
            software=grab.software or "",
            comment=grab.comment,
        )
        os_by_key.setdefault(grab.key_fingerprint, extract_os(identification))
    return os_by_key


def ssh_os_counts(results: ScanResults) -> Dict[str, int]:
    """Table 3 (SSH): host keys per OS bucket."""
    counts = Counter(ssh_os_by_key(results).values())
    table = {bucket: 0 for bucket in SSH_OS_BUCKETS}
    for os_name, count in counts.items():
        bucket = os_name if os_name in table else "other/unknown"
        table[bucket] += count
    return table


# -- CoAP ---------------------------------------------------------------

def coap_resource_group(resources: Sequence[str]) -> str:
    """Classify an advertised resource set into Table 3's buckets."""
    if not resources:
        return "empty"
    joined = " ".join(resources)
    if any(r.startswith("/castDevice") for r in resources):
        return "castdevice"
    if any(r.startswith("/qlink") for r in resources):
        return "qlink"
    if {"/m", "/c", "/t"} <= set(resources) or "efento" in joined:
        return "efento"
    if any(r.startswith("/panel") for r in resources) or "nanoleaf" in joined:
        return "nanoleaf"
    meaningful = [r for r in resources if r != "/.well-known/core"]
    if not meaningful:
        return "empty"
    return "other"


def coap_mac_dedup(results: ScanResults) -> Tuple[int, int]:
    """Deduplicate responsive CoAP endpoints by embedded MAC address.

    Table 2's footnote for CoAP: lacking TLS certificates, the paper
    filters CoAP finds by the EUI-64-embedded MAC and reports ~70 %
    unique — evidence the scan did not keep re-finding the same boxes.
    Returns ``(addresses_with_mac, distinct_macs)``.
    """
    from repro.ipv6 import eui64

    macs: set = set()
    with_mac = 0
    seen: set = set()
    for grab in results.coap:
        if not grab.ok or grab.address in seen:
            continue
        seen.add(grab.address)
        mac = eui64.extract_mac(grab.address)
        if mac is not None:
            with_mac += 1
            macs.add(mac)
    return with_mac, len(macs)


def coap_group_counts(results: ScanResults) -> Dict[str, int]:
    """Table 3 (CoAP): responsive addresses per resource group."""
    table = {group: 0 for group in COAP_GROUPS}
    seen: set = set()
    for grab in results.coap:
        if not grab.ok or grab.address in seen:
            continue
        seen.add(grab.address)
        table[coap_resource_group(grab.resources)] += 1
    return table


# -- the combined Table 3 -------------------------------------------------

@dataclass(frozen=True)
class DeviceTypeTable:
    """Table 3 for one pair of campaigns (NTP vs hitlist)."""

    http_ntp: Tuple[TitleGroup, ...]
    http_hitlist: Tuple[TitleGroup, ...]
    ssh_ntp: Mapping[str, int]
    ssh_hitlist: Mapping[str, int]
    coap_ntp: Mapping[str, int]
    coap_hitlist: Mapping[str, int]

    def http_group_count(self, side: str, representative: str) -> int:
        """Certificates in the group whose representative matches."""
        groups = self.http_ntp if side == "ntp" else self.http_hitlist
        for group in groups:
            if group.representative == representative or \
                    representative in group.members:
                return group.count
        return 0


def build_table3(ntp: ScanResults, hitlist: ScanResults) -> DeviceTypeTable:
    """Compute the full Table 3 from two scan campaigns."""
    return DeviceTypeTable(
        http_ntp=tuple(http_title_groups(ntp)),
        http_hitlist=tuple(http_title_groups(hitlist)),
        ssh_ntp=ssh_os_counts(ntp),
        ssh_hitlist=ssh_os_counts(hitlist),
        coap_ntp=coap_group_counts(ntp),
        coap_hitlist=coap_group_counts(hitlist),
    )


def new_or_underrepresented(table: DeviceTypeTable,
                            factor: float = 5.0) -> Dict[str, Tuple[int, int]]:
    """Device groups the hitlist misses or underrepresents.

    Returns ``{group: (ntp_count, hitlist_count)}`` for every HTTP
    title group, SSH OS, and CoAP group where the NTP count exceeds
    ``factor`` × the hitlist count — the basis of the paper's
    "283 867 new or underrepresented devices" headline.
    """
    findings: Dict[str, Tuple[int, int]] = {}
    hit_by_repr = {g.representative: g.count for g in table.http_hitlist}
    for group in table.http_ntp:
        if group.representative == NO_TITLE:
            continue
        hit = hit_by_repr.get(group.representative, 0)
        if group.count > factor * hit:
            findings[f"http:{group.representative}"] = (group.count, hit)
    for os_name in SSH_OS_BUCKETS[:-1]:
        ntp_count = table.ssh_ntp.get(os_name, 0)
        hit_count = table.ssh_hitlist.get(os_name, 0)
        if ntp_count > factor * hit_count and ntp_count > 0:
            findings[f"ssh:{os_name}"] = (ntp_count, hit_count)
    for group in COAP_GROUPS:
        ntp_count = table.coap_ntp.get(group, 0)
        hit_count = table.coap_hitlist.get(group, 0)
        if ntp_count > factor * hit_count and ntp_count > 0:
            findings[f"coap:{group}"] = (ntp_count, hit_count)
    return findings
