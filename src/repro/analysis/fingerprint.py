"""Host deduplication across dynamic addresses (Section 6 + future work).

The paper deduplicates hosts by TLS certificate / SSH host key and
notes two complementary signals it leaves for future work:

* **embedded MAC addresses** — EUI-64 interface identifiers survive
  prefix rotation, so all addresses carrying one (universally
  administered) MAC belong to one interface;
* **stable non-EUI-64 IIDs** — a manually configured or stable-privacy
  identifier that reappears under several prefixes very likely moved
  with its host (the paper's FRITZ!Box population does exactly this).

This module implements that fingerprinting over a collected dataset:
it partitions addresses into *host observations* and derives bounds on
the number of distinct hosts behind a dataset, tightening the paper's
"hard lower bound" from certificates/keys.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.ipv6 import address as addrmod
from repro.ipv6 import eui64
from repro.ipv6.iid import classify_iid

#: IID classes considered stable enough to track across prefixes.
_STABLE_CLASSES = frozenset({"zero", "low-byte", "low-two-bytes",
                             "low-entropy", "medium-entropy"})

#: Minimum prefix sightings before a bare stable IID counts as one host
#: (guards against coincidental small IIDs like ::1 appearing in many
#: unrelated networks).
_MIN_PREFIXES_FOR_STABLE_IID = 1

#: Stable IIDs too generic to identify a host (every network has a ::1).
_GENERIC_IID_MAX = 0xFF


@dataclass(frozen=True)
class HostCluster:
    """One inferred host: its identity signal and its addresses."""

    kind: str  # "mac" | "stable-iid" | "singleton"
    identity: int
    addresses: Tuple[int, ...]

    @property
    def address_count(self) -> int:
        return len(self.addresses)

    @property
    def prefix_count(self) -> int:
        return len({addrmod.prefix(a, 64) for a in self.addresses})


@dataclass(frozen=True)
class DedupReport:
    """Bounds on the number of distinct hosts in an address set."""

    total_addresses: int
    clusters: Tuple[HostCluster, ...]
    #: Addresses with rotating (privacy) identifiers: each is at most
    #: one sighting of *some* host, indistinguishable from the others.
    unattributable: int

    @property
    def identified_hosts(self) -> int:
        """Hosts pinned down by a MAC or stable IID."""
        return sum(1 for cluster in self.clusters
                   if cluster.kind != "singleton")

    @property
    def lower_bound(self) -> int:
        """At least this many hosts: one per cluster, and the
        unattributable addresses could all be one very chatty host."""
        return len(self.clusters) + (1 if self.unattributable else 0)

    @property
    def upper_bound(self) -> int:
        """At most this many: every unattributable address a new host."""
        return len(self.clusters) + self.unattributable

    @property
    def deduplication_factor(self) -> float:
        """How much the MAC/IID signal shrinks the raw address count."""
        if self.total_addresses == 0:
            return 1.0
        return self.total_addresses / max(1, self.upper_bound)


def dedup_addresses(addresses: Iterable[int]) -> DedupReport:
    """Partition an address set into inferred hosts.

    Precedence: an embedded universally-administered MAC wins; failing
    that, a non-generic stable IID seen under one or more prefixes;
    everything else (privacy identifiers) is unattributable.
    """
    by_mac: Dict[int, List[int]] = defaultdict(list)
    by_stable_iid: Dict[int, List[int]] = defaultdict(list)
    unattributable = 0
    total = 0
    for value in addresses:
        total += 1
        mac = eui64.extract_mac(value)
        if mac is not None and eui64.is_universal(mac) \
                and not eui64.is_multicast(mac):
            by_mac[mac].append(value)
            continue
        identifier = addrmod.iid(value)
        if identifier > _GENERIC_IID_MAX and \
                classify_iid(identifier) in _STABLE_CLASSES:
            by_stable_iid[identifier].append(value)
            continue
        unattributable += 1

    clusters: List[HostCluster] = []
    for mac, members in by_mac.items():
        clusters.append(HostCluster(kind="mac", identity=mac,
                                    addresses=tuple(sorted(members))))
    for identifier, members in by_stable_iid.items():
        prefixes = {addrmod.prefix(a, 64) for a in members}
        if len(prefixes) >= _MIN_PREFIXES_FOR_STABLE_IID:
            clusters.append(HostCluster(kind="stable-iid",
                                        identity=identifier,
                                        addresses=tuple(sorted(members))))
        else:  # pragma: no cover - unreachable with threshold 1
            unattributable += len(members)
    clusters.sort(key=lambda cluster: -cluster.address_count)
    return DedupReport(total_addresses=total, clusters=tuple(clusters),
                       unattributable=unattributable)


def compare_with_key_bound(report: DedupReport,
                           unique_keys: int) -> Mapping[str, float]:
    """Relate the fingerprint bounds to the cert/key lower bound.

    The paper observes fewer distinct MACs than certificates/keys; this
    helper packages both estimates for reporting.
    """
    return {
        "fingerprint_lower": float(report.lower_bound),
        "fingerprint_upper": float(report.upper_bound),
        "key_lower_bound": float(unique_keys),
        "identified_hosts": float(report.identified_hosts),
        "dedup_factor": report.deduplication_factor,
    }
