"""Secret-reuse analysis (Section 6, "Certificate and Key Reuse").

Measures how widely a single TLS certificate or SSH host key is shared
across addresses and ASes.  Following the paper: only keys appearing in
*more than two* ASes count as reused (allowing for dual-homed hosts),
and only HTTP status-200 responses are considered on the web side.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.scan.result import ScanResults
from repro.world.asdb import AsDatabase

#: A key must span more than this many ASes to count as reused.
AS_THRESHOLD = 2


@dataclass(frozen=True)
class ReusedKey:
    """One reused secret and its blast radius."""

    fingerprint: bytes
    addresses: int
    ases: int


@dataclass(frozen=True)
class ReuseReport:
    """Section 6's reuse summary for one dataset."""

    label: str
    reused_keys: Tuple[ReusedKey, ...]

    @property
    def reused_key_count(self) -> int:
        return len(self.reused_keys)

    @property
    def total_reused_addresses(self) -> int:
        return sum(key.addresses for key in self.reused_keys)

    @property
    def most_used(self) -> Optional[ReusedKey]:
        """The key backing the most addresses."""
        if not self.reused_keys:
            return None
        return max(self.reused_keys, key=lambda key: key.addresses)

    @property
    def most_widespread(self) -> Optional[ReusedKey]:
        """The key spanning the most ASes."""
        if not self.reused_keys:
            return None
        return max(self.reused_keys, key=lambda key: key.ases)

    @property
    def addresses_per_key(self) -> float:
        if not self.reused_keys:
            return 0.0
        return self.total_reused_addresses / len(self.reused_keys)


def _collect_identities(results: ScanResults) -> Dict[bytes, Set[int]]:
    """fingerprint -> responsive addresses presenting it."""
    identities: Dict[bytes, Set[int]] = defaultdict(set)
    for grab in results.ssh:
        if grab.ok and grab.key_fingerprint is not None:
            identities[grab.key_fingerprint].add(grab.address)
    for grab in results.https:
        if not grab.ok or grab.status != 200:
            continue
        if grab.tls is not None and grab.tls.ok and grab.tls.fingerprint:
            identities[grab.tls.fingerprint].add(grab.address)
    for protocol in ("mqtts", "amqps"):
        for grab in results.grabs(protocol):
            if grab.ok and grab.tls is not None and grab.tls.ok \
                    and grab.tls.fingerprint:
                identities[grab.tls.fingerprint].add(grab.address)
    return identities


def analyze(label: str, results: ScanResults,
            asdb: AsDatabase,
            as_threshold: int = AS_THRESHOLD) -> ReuseReport:
    """Find every secret shared across more than ``as_threshold`` ASes."""
    reused: List[ReusedKey] = []
    for fingerprint, addresses in _collect_identities(results).items():
        asns = {asn for value in addresses
                if (asn := asdb.lookup_asn(value)) is not None}
        if len(asns) > as_threshold:
            reused.append(ReusedKey(
                fingerprint=fingerprint,
                addresses=len(addresses),
                ases=len(asns),
            ))
    reused.sort(key=lambda key: -key.addresses)
    return ReuseReport(label=label, reused_keys=tuple(reused))
