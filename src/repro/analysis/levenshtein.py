"""Normalized Levenshtein distance and greedy title clustering.

The paper groups HTML page titles "if their Levenshtein distance
normalized to 0–1 is at most 0.25", collapsing minor version-number
variations into one device-type group (Section 4.3.1).  We implement
the classic dynamic-programming distance with a banded (Ukkonen)
early-exit variant and a greedy centroid clustering on top.

Performance model (DESIGN.md §9):

* :func:`distance` accepts an ``upper_bound``; the DP is then confined
  to the diagonal band of width ``upper_bound`` and abandoned as soon
  as every cell of a row exceeds the bound.  The result is exact
  whenever the true distance is ``<= upper_bound`` and *some* value
  ``> upper_bound`` otherwise — which is all a threshold test needs.
* :class:`TitleClusterer` prunes candidate groups before any DP runs:
  representatives are bucketed by length (only length bands that can
  possibly satisfy the threshold are scanned) and optionally rejected
  by a character-multiset lower bound.  Pruning never changes which
  group wins: the first *feasible* match is the first match, because a
  pruned candidate can never satisfy :func:`within`.
* Every pair comparison goes through a symmetric per-clusterer
  :class:`DistanceCache`, and all work is tallied into a
  :class:`ClusterStats` that can be published as ``analysis_*``
  metrics through :mod:`repro.obs`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: The paper's grouping threshold on normalized distance.
DEFAULT_THRESHOLD = 0.25


@dataclass
class ClusterStats:
    """Work counters of one clustering / distance workload.

    Deterministic under a fixed input (no wall time lives here), so the
    parallel analysis driver can merge worker copies additively and
    land on the exact totals a sequential run records.
    """

    #: Candidate pairs that reached the distance stage (cache or DP).
    pairs_compared: int = 0
    #: DP cells actually filled in (the O(n·m) budget being saved).
    dp_cells: int = 0
    #: Banded runs abandoned because a whole row exceeded the bound.
    band_exits: int = 0
    #: Pairs answered from the symmetric distance cache.
    cache_hits: int = 0
    #: Candidate groups skipped before any DP (length band / multiset).
    candidates_pruned: int = 0

    def publish(self, registry, **labels) -> None:
        """Record the tallies as ``analysis_*`` counters on ``registry``.

        Every series is created even at zero so sequential and parallel
        analysis runs expose an identical metric surface.
        """
        registry.counter("analysis_pairs_compared_total",
                         **labels).inc(self.pairs_compared)
        registry.counter("analysis_dp_cells_total",
                         **labels).inc(self.dp_cells)
        registry.counter("analysis_band_exits_total",
                         **labels).inc(self.band_exits)
        registry.counter("analysis_cache_hits_total",
                         **labels).inc(self.cache_hits)
        registry.counter("analysis_candidates_pruned_total",
                         **labels).inc(self.candidates_pruned)


class DistanceCache:
    """Symmetric (unordered-pair) cache of :func:`distance` results.

    A cached value is only reusable when it was computed under the same
    upper bound — and in a fixed-threshold clustering the bound is a
    pure function of the pair, so keying by the pair alone is sound.
    """

    __slots__ = ("_pairs",)

    def __init__(self) -> None:
        self._pairs: Dict[Tuple[str, str], int] = {}

    @staticmethod
    def _key(left: str, right: str) -> Tuple[str, str]:
        return (left, right) if left <= right else (right, left)

    def lookup(self, left: str, right: str) -> Optional[int]:
        return self._pairs.get(self._key(left, right))

    def store(self, left: str, right: str, value: int) -> None:
        self._pairs[self._key(left, right)] = value

    def __len__(self) -> int:
        return len(self._pairs)


def _plain_distance(left: str, right: str,
                    stats: Optional[ClusterStats]) -> int:
    """The full O(n·m) DP table (reference path)."""
    if len(left) < len(right):
        left, right = right, left
    if stats is not None:
        stats.dp_cells += len(left) * len(right)
    previous = list(range(len(right) + 1))
    for row, char_left in enumerate(left, start=1):
        current = [row]
        for col, char_right in enumerate(right, start=1):
            cost = 0 if char_left == char_right else 1
            current.append(min(
                previous[col] + 1,        # deletion
                current[col - 1] + 1,     # insertion
                previous[col - 1] + cost  # substitution
            ))
        previous = current
    return previous[-1]


def _banded_distance(left: str, right: str, bound: int,
                     stats: Optional[ClusterStats]) -> int:
    """Ukkonen band: only cells with ``|row - col| <= bound`` can lie on
    an alignment of cost ``<= bound``, so nothing else is computed; a
    row whose computed cells all exceed the bound ends the run early.
    """
    n, m = len(left), len(right)
    infinity = bound + 1
    previous = [col if col <= bound else infinity for col in range(m + 1)]
    for row in range(1, n + 1):
        low = max(1, row - bound)
        high = min(m, row + bound)
        char_left = left[row - 1]
        current = [infinity] * (m + 1)
        if row <= bound:
            current[0] = row
        best = current[0]
        for col in range(low, high + 1):
            cost = 0 if char_left == right[col - 1] else 1
            value = previous[col - 1] + cost
            deletion = previous[col] + 1
            if deletion < value:
                value = deletion
            insertion = current[col - 1] + 1
            if insertion < value:
                value = insertion
            if value > infinity:
                value = infinity
            current[col] = value
            if value < best:
                best = value
        if stats is not None:
            stats.dp_cells += high - low + 1
        if best > bound:
            if stats is not None:
                stats.band_exits += 1
            return infinity
        previous = current
    return previous[m] if previous[m] <= bound else infinity


def distance(left: str, right: str, upper_bound: Optional[int] = None,
             stats: Optional[ClusterStats] = None) -> int:
    """Levenshtein edit distance (insert/delete/substitute).

    Without ``upper_bound`` this is the exact classic DP.  With it, the
    computation runs inside the Ukkonen band and abandons a row once
    every cell exceeds the bound: the result is exact whenever the true
    distance is ``<= upper_bound``, and *some* value ``> upper_bound``
    (not necessarily the true distance) otherwise.  ``stats``, when
    given, accumulates DP-cell and early-exit tallies.
    """
    if upper_bound is not None and upper_bound < 0:
        raise ValueError(f"upper_bound must be >= 0, got {upper_bound}")
    if left == right:
        return 0
    if not left or not right:
        return max(len(left), len(right))
    if upper_bound is None:
        return _plain_distance(left, right, stats)
    if abs(len(left) - len(right)) > upper_bound:
        return upper_bound + 1
    return _banded_distance(left, right, upper_bound, stats)


def normalized_distance(left: str, right: str) -> float:
    """Distance scaled into [0, 1] by the longer string's length.

    Two empty strings are identical (0.0).
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return 0.0
    return distance(left, right) / longest


def distance_bound(threshold: float, longest: int) -> int:
    """The largest integer distance ``d`` with ``d / longest <= threshold``.

    This is the banded DP's ``upper_bound`` for a pair whose longer
    string has ``longest`` characters: ``d <= bound`` is *exactly*
    equivalent to ``d / longest <= threshold`` under the same float
    division :func:`within` has always used, so the banded and plain
    verdicts can never disagree (the adjustment loops absorb any float
    rounding in ``threshold * longest``).
    """
    bound = min(int(threshold * longest), longest)
    while bound + 1 <= longest and (bound + 1) / longest <= threshold:
        bound += 1
    while bound > 0 and bound / longest > threshold:
        bound -= 1
    return bound


def within(left: str, right: str,
           threshold: float = DEFAULT_THRESHOLD, *,
           banded: bool = True,
           stats: Optional[ClusterStats] = None) -> bool:
    """Whether two strings belong to the same group.

    Uses the length-difference lower bound to skip the DP for clearly
    different strings, then (by default) the banded DP bounded at the
    threshold — set ``banded=False`` for the reference full-table path,
    which always returns the identical verdict.
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return True
    bound = distance_bound(threshold, longest)
    if abs(len(left) - len(right)) > bound:
        return False
    if not banded:
        return normalized_distance(left, right) <= threshold
    if stats is not None:
        stats.pairs_compared += 1
    return distance(left, right, upper_bound=bound, stats=stats) <= bound


def _multiset_signature(text: str) -> Dict[str, int]:
    """Character multiset of ``text`` (input to the multiset bound)."""
    signature: Dict[str, int] = {}
    for char in text:
        signature[char] = signature.get(char, 0) + 1
    return signature


def _multiset_lower_bound(left_sig: Dict[str, int],
                          right_sig: Dict[str, int]) -> int:
    """A Levenshtein lower bound from character counts alone.

    A substitution moves at most two units of multiset difference, an
    insert/delete one, so ``distance >= ceil(sum(|Δ|) / 2)``.
    """
    difference = 0
    for char, count in left_sig.items():
        difference += abs(count - right_sig.get(char, 0))
    for char, count in right_sig.items():
        if char not in left_sig:
            difference += count
    return (difference + 1) // 2


@dataclass
class TitleGroup:
    """One cluster of near-identical titles."""

    representative: str
    members: Dict[str, int] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return sum(self.members.values())

    def add(self, title: str, count: int = 1) -> None:
        self.members[title] = self.members.get(title, 0) + count


class TitleClusterer:
    """Greedy centroid clustering under the normalized threshold.

    Items are matched against existing representatives in insertion
    order; the representative is the group's first (and, fed in
    frequency order, most common) title — matching how the paper labels
    groups by their dominant title.

    The default configuration (``banded=True, prune=True``) produces
    byte-identical groups to the unoptimized reference scan
    (``banded=False, prune=False``): pruning only ever removes
    candidates that :func:`within` would reject anyway, and the banded
    distance returns the same verdict as the full table, so the first
    surviving match is the same group either way.
    """

    def __init__(self, threshold: float = DEFAULT_THRESHOLD, *,
                 banded: bool = True, prune: bool = True,
                 stats: Optional[ClusterStats] = None) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.banded = banded
        self.prune = prune
        self.stats = stats if stats is not None else ClusterStats()
        self.groups: List[TitleGroup] = []
        #: exact-title fast path: title -> group
        self._assignments: Dict[str, TitleGroup] = {}
        #: representative length -> group indices, ascending.
        self._by_length: Dict[int, List[int]] = {}
        #: group index -> representative character multiset.
        self._signatures: List[Dict[str, int]] = []
        self._cache = DistanceCache()

    # -- matching ----------------------------------------------------------

    def _pair_matches(self, title: str, index: int,
                      title_sig: Optional[Dict[str, int]]) -> bool:
        """The threshold test for one (title, group) candidate pair."""
        representative = self.groups[index].representative
        longest = max(len(title), len(representative))
        if longest == 0:
            return True
        bound = distance_bound(self.threshold, longest)
        if abs(len(title) - len(representative)) > bound:
            # Unreachable on the pruned path (the length bands already
            # excluded it); kept for the unpruned scan.
            return False
        if title_sig is not None:
            if _multiset_lower_bound(title_sig,
                                     self._signatures[index]) > bound:
                self.stats.candidates_pruned += 1
                return False
        self.stats.pairs_compared += 1
        cached = self._cache.lookup(title, representative)
        if cached is not None:
            self.stats.cache_hits += 1
            return cached <= bound
        if self.banded:
            result = distance(title, representative, upper_bound=bound,
                              stats=self.stats)
        else:
            result = distance(title, representative, stats=self.stats)
        self._cache.store(title, representative, result)
        return result <= bound

    def _candidate_indices(self, title: str) -> List[int]:
        """Group indices whose representative length can possibly match,
        in insertion (= group index) order."""
        length = len(title)
        buckets = []
        for rep_length in sorted(self._by_length):
            longest = max(length, rep_length)
            if longest == 0 or abs(length - rep_length) <= \
                    distance_bound(self.threshold, longest):
                buckets.append(self._by_length[rep_length])
        if len(buckets) == 1:
            return buckets[0]
        merged: List[int] = []
        for bucket in buckets:
            merged.extend(bucket)
        merged.sort()
        return merged

    def _match(self, title: str) -> Optional[TitleGroup]:
        if self.prune:
            candidates = self._candidate_indices(title)
            self.stats.candidates_pruned += len(self.groups) - len(candidates)
            title_sig = _multiset_signature(title)
        else:
            candidates = range(len(self.groups))
            title_sig = None
        for index in candidates:
            if self._pair_matches(title, index, title_sig):
                return self.groups[index]
        return None

    # -- the public clustering API -----------------------------------------

    def add(self, title: str, count: int = 1) -> TitleGroup:
        """Assign a title (with multiplicity) to its group."""
        group = self._assignments.get(title)
        if group is None:
            group = self._match(title)
            if group is None:
                group = TitleGroup(representative=title)
                self._by_length.setdefault(len(title), []).append(
                    len(self.groups))
                self._signatures.append(_multiset_signature(title))
                self.groups.append(group)
            self._assignments[title] = group
        group.add(title, count)
        return group

    def add_all(self, titles: Iterable[str]) -> None:
        for title in titles:
            self.add(title)

    def top(self, n: int = 10) -> List[TitleGroup]:
        """Largest groups first."""
        return sorted(self.groups, key=lambda group: -group.count)[:n]

    def group_of(self, title: str) -> Optional[TitleGroup]:
        """The group a title was assigned to, if any."""
        return self._assignments.get(title)


def cluster_counts(titles: Iterable[Tuple[str, int]],
                   threshold: float = DEFAULT_THRESHOLD, *,
                   banded: bool = True, prune: bool = True,
                   stats: Optional[ClusterStats] = None) -> List[TitleGroup]:
    """Cluster pre-counted titles, feeding most frequent first."""
    clusterer = TitleClusterer(threshold, banded=banded, prune=prune,
                               stats=stats)
    for title, count in sorted(titles, key=lambda item: -item[1]):
        clusterer.add(title, count)
    return sorted(clusterer.groups, key=lambda group: -group.count)
