"""Normalized Levenshtein distance and greedy title clustering.

The paper groups HTML page titles "if their Levenshtein distance
normalized to 0–1 is at most 0.25", collapsing minor version-number
variations into one device-type group (Section 4.3.1).  We implement
the classic dynamic-programming distance with an early-exit band and a
greedy centroid clustering on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: The paper's grouping threshold on normalized distance.
DEFAULT_THRESHOLD = 0.25


def distance(left: str, right: str) -> int:
    """Plain Levenshtein edit distance (insert/delete/substitute)."""
    if left == right:
        return 0
    if not left:
        return len(right)
    if not right:
        return len(left)
    if len(left) < len(right):
        left, right = right, left
    previous = list(range(len(right) + 1))
    for row, char_left in enumerate(left, start=1):
        current = [row]
        for col, char_right in enumerate(right, start=1):
            cost = 0 if char_left == char_right else 1
            current.append(min(
                previous[col] + 1,        # deletion
                current[col - 1] + 1,     # insertion
                previous[col - 1] + cost  # substitution
            ))
        previous = current
    return previous[-1]


def normalized_distance(left: str, right: str) -> float:
    """Distance scaled into [0, 1] by the longer string's length.

    Two empty strings are identical (0.0).
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return 0.0
    return distance(left, right) / longest


def within(left: str, right: str,
           threshold: float = DEFAULT_THRESHOLD) -> bool:
    """Whether two strings belong to the same group.

    Uses the length-difference lower bound to skip the O(n·m) table
    for clearly different strings.
    """
    longest = max(len(left), len(right))
    if longest == 0:
        return True
    if abs(len(left) - len(right)) / longest > threshold:
        return False
    return normalized_distance(left, right) <= threshold


@dataclass
class TitleGroup:
    """One cluster of near-identical titles."""

    representative: str
    members: Dict[str, int] = field(default_factory=dict)

    @property
    def count(self) -> int:
        return sum(self.members.values())

    def add(self, title: str, count: int = 1) -> None:
        self.members[title] = self.members.get(title, 0) + count


class TitleClusterer:
    """Greedy centroid clustering under the normalized threshold.

    Items are matched against existing representatives in insertion
    order; the representative is the group's first (and, fed in
    frequency order, most common) title — matching how the paper labels
    groups by their dominant title.
    """

    def __init__(self, threshold: float = DEFAULT_THRESHOLD) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError(f"threshold must be in [0, 1], got {threshold}")
        self.threshold = threshold
        self.groups: List[TitleGroup] = []
        #: exact-title fast path: title -> group
        self._assignments: Dict[str, TitleGroup] = {}

    def add(self, title: str, count: int = 1) -> TitleGroup:
        """Assign a title (with multiplicity) to its group."""
        group = self._assignments.get(title)
        if group is None:
            for candidate in self.groups:
                if within(title, candidate.representative, self.threshold):
                    group = candidate
                    break
            if group is None:
                group = TitleGroup(representative=title)
                self.groups.append(group)
            self._assignments[title] = group
        group.add(title, count)
        return group

    def add_all(self, titles: Iterable[str]) -> None:
        for title in titles:
            self.add(title)

    def top(self, n: int = 10) -> List[TitleGroup]:
        """Largest groups first."""
        return sorted(self.groups, key=lambda group: -group.count)[:n]

    def group_of(self, title: str) -> Optional[TitleGroup]:
        """The group a title was assigned to, if any."""
        return self._assignments.get(title)


def cluster_counts(titles: Iterable[Tuple[str, int]],
                   threshold: float = DEFAULT_THRESHOLD) -> List[TitleGroup]:
    """Cluster pre-counted titles, feeding most frequent first."""
    clusterer = TitleClusterer(threshold)
    for title, count in sorted(titles, key=lambda item: -item[1]):
        clusterer.add(title, count)
    return sorted(clusterer.groups, key=lambda group: -group.count)
