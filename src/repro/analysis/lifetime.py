"""Address-lifetime analysis (the dynamics behind Section 6).

The paper's core operational argument — NTP-sourced addresses must be
scanned in real time because "a list would be outdated almost
immediately" — is a statement about address *lifetimes*.  This module
quantifies them from a collected dataset: how long each address kept
appearing, how many were one-shot sightings, and the implied daily
turnover of the collected population.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.collector import CollectedDataset
from repro.net.clock import DAY


@dataclass(frozen=True)
class LifetimeReport:
    """Observation-span statistics of one collected dataset."""

    total_addresses: int
    #: Addresses seen in exactly one request burst (span == 0).
    single_sighting: int
    median_span: float
    mean_span: float
    max_span: float
    #: Share of addresses whose span covers at least ``long_days`` days.
    long_lived_share: float
    long_days: float

    @property
    def single_sighting_share(self) -> float:
        if self.total_addresses == 0:
            return 0.0
        return self.single_sighting / self.total_addresses

    @property
    def median_span_days(self) -> float:
        return self.median_span / DAY


def analyze(dataset: CollectedDataset, *,
            long_days: float = 7.0) -> LifetimeReport:
    """Compute lifetime statistics over every collected address."""
    spans: List[float] = []
    single = 0
    for observation in dataset.observations.values():
        span = observation.last_seen - observation.first_seen
        spans.append(span)
        if span == 0.0:
            single += 1
    if not spans:
        return LifetimeReport(
            total_addresses=0, single_sighting=0, median_span=0.0,
            mean_span=0.0, max_span=0.0, long_lived_share=0.0,
            long_days=long_days)
    long_lived = sum(1 for span in spans if span >= long_days * DAY)
    return LifetimeReport(
        total_addresses=len(spans),
        single_sighting=single,
        median_span=float(statistics.median(spans)),
        mean_span=sum(spans) / len(spans),
        max_span=max(spans),
        long_lived_share=long_lived / len(spans),
        long_days=long_days,
    )


def survival_curve(dataset: CollectedDataset,
                   day_points: Sequence[int] = (1, 3, 7, 14, 21)
                   ) -> Dict[int, float]:
    """Share of addresses still observed ``d`` days after first sight.

    The complement of this curve is the staleness a ``d``-day-old
    target list suffers — the quantity the real-time-scanning ablation
    measures from the scanning side.
    """
    total = len(dataset.observations)
    if total == 0:
        return {day: 0.0 for day in day_points}
    curve: Dict[int, float] = {}
    for day in day_points:
        threshold = day * DAY
        alive = sum(
            1 for observation in dataset.observations.values()
            if observation.last_seen - observation.first_seen >= threshold)
        curve[day] = alive / total
    return curve


def turnover_rate(dataset: CollectedDataset) -> float:
    """New-address fraction per collection day (steady-state churn).

    1.0 means the collected population is completely fresh every day;
    values near 0 mean a static population (a hitlist would work).
    """
    histogram = dataset.new_addresses_per_day()
    if len(histogram) <= 1:
        return 0.0
    days = sorted(histogram)
    tail = [histogram[day] for day in days[1:]]
    return (sum(tail) / len(tail)) / max(1, len(dataset))
