"""EUI-64 / MAC / vendor analysis (Appendix B, Table 4, Figure 4).

Extracts embedded MAC addresses from a collected dataset, filters for
the universally-administered ("unique") bit, resolves OUIs against the
vendor registry, and ranks manufacturers by distinct MACs and by the
IP addresses carrying them.  Figure 4's view — which capture-server
locations saw which MAC classes — uses the dataset's per-server index.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from repro.core.collector import CollectedDataset
from repro.ipv6 import eui64
from repro.ipv6.oui import OuiRegistry

#: Vendor label for OUIs missing from the registry.
UNLISTED = "(Unlisted)"

#: Figure 4's MAC classes.
MAC_CLASSES = ("listed", "unlisted-unique", "local")


@dataclass(frozen=True)
class VendorRow:
    """One row of Table 4."""

    vendor: str
    mac_count: int
    ip_count: int


@dataclass(frozen=True)
class MacReport:
    """The complete Appendix-B summary for one dataset."""

    total_addresses: int
    eui64_addresses: int
    distinct_eui64_iids: int
    unique_bit_addresses: int
    distinct_unique_macs: int
    listed_macs: int
    listed_ips: int
    vendor_rows: Tuple[VendorRow, ...]

    @property
    def eui64_share(self) -> float:
        if self.total_addresses == 0:
            return 0.0
        return self.eui64_addresses / self.total_addresses

    def top_vendors(self, n: int = 20) -> Tuple[VendorRow, ...]:
        return self.vendor_rows[:n]

    def vendor(self, name: str) -> Optional[VendorRow]:
        for row in self.vendor_rows:
            if row.vendor == name:
                return row
        return None


def analyze_addresses(addresses: Iterable[int],
                      registry: OuiRegistry) -> MacReport:
    """Compute Table 4 over a plain address iterable."""
    total = 0
    eui64_addresses = 0
    iids: set = set()
    unique_bit_addresses = 0
    unique_macs: set = set()
    mac_ips: Counter = Counter()  # vendor -> ip count
    vendor_macs: Dict[str, set] = defaultdict(set)
    for value in addresses:
        total += 1
        mac = eui64.extract_mac(value)
        if mac is None:
            continue
        eui64_addresses += 1
        iids.add(value & ((1 << 64) - 1))
        if not eui64.is_universal(mac) or eui64.is_multicast(mac):
            continue
        unique_bit_addresses += 1
        unique_macs.add(mac)
        vendor = registry.lookup_mac(mac)
        name = vendor.name if vendor else UNLISTED
        mac_ips[name] += 1
        vendor_macs[name].add(mac)
    rows = sorted(
        (VendorRow(vendor=name, mac_count=len(macs),
                   ip_count=mac_ips[name])
         for name, macs in vendor_macs.items()),
        key=lambda row: -row.mac_count,
    )
    listed_macs = sum(row.mac_count for row in rows if row.vendor != UNLISTED)
    listed_ips = sum(row.ip_count for row in rows if row.vendor != UNLISTED)
    return MacReport(
        total_addresses=total,
        eui64_addresses=eui64_addresses,
        distinct_eui64_iids=len(iids),
        unique_bit_addresses=unique_bit_addresses,
        distinct_unique_macs=len(unique_macs),
        listed_macs=listed_macs,
        listed_ips=listed_ips,
        vendor_rows=tuple(rows),
    )


def analyze_dataset(dataset: CollectedDataset,
                    registry: OuiRegistry) -> MacReport:
    """Table 4 over a collection campaign's dataset."""
    return analyze_addresses(dataset.iter_addresses(), registry)


def classify_mac_address(value: int, registry: OuiRegistry) -> Optional[str]:
    """Figure 4's class of one address (None for non-EUI-64)."""
    mac = eui64.extract_mac(value)
    if mac is None:
        return None
    if not eui64.is_universal(mac):
        return "local"
    if registry.lookup_mac(mac) is not None:
        return "listed"
    return "unlisted-unique"


def server_location_distribution(dataset: CollectedDataset,
                                 registry: OuiRegistry) -> Dict[str, Dict[str, float]]:
    """Figure 4: per MAC class, the share each server location collected.

    Returns ``{mac_class: {location: share}}`` with shares summing to 1
    within each class (addresses seen by several servers count for
    each, as in the paper's stacked view).
    """
    counts: Dict[str, Counter] = {cls: Counter() for cls in MAC_CLASSES}
    for location, addresses in dataset.per_server.items():
        for value in addresses:
            mac_class = classify_mac_address(value, registry)
            if mac_class is not None:
                counts[mac_class][location] += 1
    shares: Dict[str, Dict[str, float]] = {}
    for mac_class, counter in counts.items():
        total = sum(counter.values())
        shares[mac_class] = (
            {loc: count / total for loc, count in counter.items()}
            if total else {}
        )
    return shares
