"""Parallel analysis driver: the Section-4 tables as a job fan-out.

The Table/Figure computations over a finished pair of scan campaigns
are mutually independent — each side of Table 3 (HTTP title clustering,
SSH OS buckets, CoAP resource groups), the Figure-2 SSH outdatedness
assessment, the Figure-3 broker access-control classification, and the
Section-6 key-reuse sweep each read only their own slice of the
immutable :class:`~repro.scan.result.ScanResults`.  This module runs
them as a fixed, deterministic job list, either inline or across the
same persistent ``spawn``-safe :class:`~repro.runtime.pool.WorkerPool`
the scan backend uses — each campaign side's results ship to the pool
once as a pickle-once :class:`~repro.runtime.pool.SnapshotRef`, not
once per job, and a pool shared via
:class:`repro.api.ExecutionContext` keeps both its workers and that
snapshot cache across calls.

Determinism argument: every job is a pure function of its pickled
inputs, each job records into its own fresh
:class:`~repro.obs.metrics.MetricsRegistry`, and the parent merges the
job registries **in job-list order** in both execution modes — so the
assembled :class:`AnalysisBundle` and every ``analysis_*`` metric
series are byte-identical at any worker count.  The only thing allowed
to differ is wall-clock observability, which lives in
:attr:`AnalysisBundle.timing` and never in the metrics registry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.analysis import devicetypes, keyreuse, security
from repro.analysis.devicetypes import DeviceTypeTable
from repro.analysis.keyreuse import ReuseReport
from repro.analysis.security import (
    AccessControlReport,
    OutdatednessReport,
    SecureShareReport,
)
from repro.obs.metrics import MetricsRegistry, current_registry, use_registry
from repro.runtime.parallel import WorkerCrashed
from repro.runtime.pool import PoolBrokenError, SnapshotRef, WorkerPool, \
    load_snapshot
from repro.scan.result import ScanResults
from repro.world.asdb import AsDatabase

#: The two dataset sides every analysis job list covers, in order.
SIDES = ("ntp", "hitlist")

#: Broker protocol families of Figure 3, in order.
BROKER_PROTOCOLS = ("mqtt", "amqp")


@dataclass
class AnalysisTask:
    """One independent table/figure computation, by value.

    Everything a worker needs ships in the task: the (picklable)
    scan results, the dataset label, and for key reuse the AS
    database.  ``job`` is unique within one :func:`run_analysis` call
    and doubles as the merge key.
    """

    job: str
    kind: str
    dataset: str
    #: The campaign's results by value (inline mode), or ``None`` when
    #: the pooled path replaced them with a pickle-once ``results_ref``.
    results: Optional[ScanResults]
    protocol: Optional[str] = None
    asdb: Optional[AsDatabase] = None
    #: Pool-spooled address of ``results`` — each campaign side ships
    #: once per (results, pool) pair, not once per job.
    results_ref: Optional[SnapshotRef] = None


@dataclass
class AnalysisJobOutcome:
    """One job's complete, picklable result."""

    job: str
    value: object
    metrics: MetricsRegistry
    wall_seconds: float
    cpu_seconds: float


@dataclass
class AnalysisBundle:
    """Every Section-4/6 artefact of one analysis run, merged.

    All fields except :attr:`timing` are deterministic in the inputs;
    :attr:`timing` is wall-clock observability (per-job wall/cpu
    seconds, pool totals) and is excluded from every byte-identity
    guarantee — report builders must keep it out of deterministic
    tables.
    """

    table3: DeviceTypeTable
    ssh: Dict[str, OutdatednessReport]
    brokers: Dict[Tuple[str, str], AccessControlReport]
    secure: Dict[str, SecureShareReport]
    keyreuse: Dict[str, ReuseReport] = field(default_factory=dict)
    timing: dict = field(default_factory=dict)

    def security_gap(self) -> Tuple[SecureShareReport, SecureShareReport]:
        """The paper's headline pair: (NTP report, hitlist report)."""
        return self.secure["ntp"], self.secure["hitlist"]


def _job_http_groups(task: AnalysisTask):
    return tuple(devicetypes.http_title_groups(task.results,
                                               dataset=task.dataset))


def _job_ssh_os(task: AnalysisTask):
    return devicetypes.ssh_os_counts(task.results)


def _job_coap_groups(task: AnalysisTask):
    return devicetypes.coap_group_counts(task.results)


def _job_ssh_outdatedness(task: AnalysisTask):
    return security.ssh_outdatedness(task.dataset, task.results)


def _job_broker(task: AnalysisTask):
    return security.broker_access_control(task.dataset, task.results,
                                          task.protocol)


def _job_keyreuse(task: AnalysisTask):
    return keyreuse.analyze(task.dataset, task.results, task.asdb)


_JOB_KINDS = {
    "http_groups": _job_http_groups,
    "ssh_os": _job_ssh_os,
    "coap_groups": _job_coap_groups,
    "ssh_outdatedness": _job_ssh_outdatedness,
    "broker": _job_broker,
    "keyreuse": _job_keyreuse,
}


def analysis_tasks(ntp: ScanResults, hitlist: ScanResults,
                   asdb: Optional[AsDatabase] = None) -> List[AnalysisTask]:
    """The canonical job list, in deterministic merge order."""
    tasks: List[AnalysisTask] = []
    for dataset, results in zip(SIDES, (ntp, hitlist)):
        tasks.append(AnalysisTask(f"table3_http:{dataset}", "http_groups",
                                  dataset, results))
        tasks.append(AnalysisTask(f"table3_ssh:{dataset}", "ssh_os",
                                  dataset, results))
        tasks.append(AnalysisTask(f"table3_coap:{dataset}", "coap_groups",
                                  dataset, results))
        tasks.append(AnalysisTask(f"fig2_ssh:{dataset}", "ssh_outdatedness",
                                  dataset, results))
        for protocol in BROKER_PROTOCOLS:
            tasks.append(AnalysisTask(f"fig3_{protocol}:{dataset}", "broker",
                                      dataset, results, protocol=protocol))
        if asdb is not None:
            tasks.append(AnalysisTask(f"keyreuse:{dataset}", "keyreuse",
                                      dataset, results, asdb=asdb))
    return tasks


def run_analysis_job(task: AnalysisTask) -> AnalysisJobOutcome:
    """Worker entry point: run one job under a private registry.

    Must stay a module-level function — spawn pickles it by reference.
    The sequential path calls it too, so both modes build identical
    per-job registries and merge them identically.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    if task.results is None and task.results_ref is not None:
        # Pooled mode: resolve the pickle-once snapshot (cached per
        # worker process, so one load serves every job on this side).
        task = replace(task, results=load_snapshot(task.results_ref))
    registry = MetricsRegistry()
    with use_registry(registry):
        value = _JOB_KINDS[task.kind](task)
        registry.counter("analysis_jobs_total").inc()
    return AnalysisJobOutcome(
        job=task.job,
        value=value,
        metrics=registry,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
    )


def _ship_side(pool: WorkerPool, results: ScanResults) -> SnapshotRef:
    """Spool one campaign side into the pool, pickling at most once.

    The cache token captures the live object plus its append-only
    shape (bucket sizes, targets seen): re-analyzing the same results
    on the same pool skips the pickling pass, while results that grew
    since last shipment re-ship.
    """
    token = ("results", id(results), results.targets_seen,
             tuple(len(results.grabs(p)) for p in results.protocols()))
    ref = pool.lookup(token, anchor=results)
    if ref is None:
        ref = pool.ship(results, token=token, anchor=results)
    return ref


def run_analysis(ntp: ScanResults, hitlist: ScanResults, *,
                 asdb: Optional[AsDatabase] = None,
                 workers: int = 0,
                 start_method: Optional[str] = None,
                 pool: Optional[WorkerPool] = None) -> AnalysisBundle:
    """Run every analysis job and merge the outcomes deterministically.

    ``workers == 0`` (and no ``pool``) runs the jobs inline in job-list
    order; ``workers >= 1`` fans them across a ``spawn``-safe process
    pool of that width, and a caller-owned persistent ``pool`` (usually
    :class:`repro.api.ExecutionContext`'s) is used as-is — its workers
    and its pickle-once snapshot cache outlive this call, so each
    campaign side ships once per (results, pool) pair, not once per
    job or per call.  Either way the job registries fold into the
    current metrics registry in job-list order, so the bundle and all
    ``analysis_*`` series are byte-identical across modes.  Key reuse
    requires ``asdb`` and is skipped without one (offline re-analysis
    of saved scan files has no AS database).
    """
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    tasks = analysis_tasks(ntp, hitlist, asdb)
    outcomes: Dict[str, AnalysisJobOutcome] = {}
    pool_start = time.perf_counter()
    ephemeral = pool is None and workers >= 1
    if ephemeral:
        pool = WorkerPool(workers, start_method=start_method)
    if pool is not None:
        try:
            refs = {id(side): _ship_side(pool, side)
                    for side in (ntp, hitlist)}
            shipped = [replace(task, results=None,
                               results_ref=refs[id(task.results)])
                       for task in tasks]
            try:
                for index, outcome in pool.map_in_order(run_analysis_job,
                                                        shipped):
                    outcomes[tasks[index].job] = outcome
            except PoolBrokenError as exc:
                names = [tasks[index].job for index in exc.lost]
                raise WorkerCrashed(
                    exc.lost,
                    f"worker pool broke while running analysis job(s) "
                    f"{names}; no partial analyses were merged") from exc
        finally:
            if ephemeral:
                pool.close()
        effective_workers = pool.workers
    else:
        for task in tasks:
            outcomes[task.job] = run_analysis_job(task)
        effective_workers = 0
    pool_seconds = time.perf_counter() - pool_start

    registry = current_registry()
    for task in tasks:
        registry.merge(outcomes[task.job].metrics)

    return _assemble(tasks, outcomes, asdb is not None, effective_workers,
                     pool_seconds)


def _assemble(tasks: List[AnalysisTask],
              outcomes: Dict[str, AnalysisJobOutcome],
              with_keyreuse: bool, workers: int,
              pool_seconds: float) -> AnalysisBundle:
    """Fold job outcomes into one bundle, in fixed field order."""
    def value(job: str):
        return outcomes[job].value

    ssh = {side: value(f"fig2_ssh:{side}") for side in SIDES}
    brokers = {(side, protocol): value(f"fig3_{protocol}:{side}")
               for side in SIDES for protocol in BROKER_PROTOCOLS}
    secure = {}
    for side in SIDES:
        mqtt = brokers[(side, "mqtt")]
        amqp = brokers[(side, "amqp")]
        secure[side] = SecureShareReport(
            label=side,
            ssh_assessed=ssh[side].assessed,
            ssh_secure=ssh[side].up_to_date,
            brokers_total=mqtt.total + amqp.total,
            brokers_secure=mqtt.controlled + amqp.controlled,
        )
    reuse = {side: value(f"keyreuse:{side}") for side in SIDES} \
        if with_keyreuse else {}
    timing = {
        "workers": workers,
        "pool_wall_seconds": pool_seconds,
        "jobs": [
            {"job": task.job,
             "wall_seconds": outcomes[task.job].wall_seconds,
             "cpu_seconds": outcomes[task.job].cpu_seconds}
            for task in tasks
        ],
    }
    return AnalysisBundle(
        table3=DeviceTypeTable(
            http_ntp=value("table3_http:ntp"),
            http_hitlist=value("table3_http:hitlist"),
            ssh_ntp=value("table3_ssh:ntp"),
            ssh_hitlist=value("table3_ssh:hitlist"),
            coap_ntp=value("table3_coap:ntp"),
            coap_hitlist=value("table3_coap:hitlist"),
        ),
        ssh=ssh,
        brokers=brokers,
        secure=secure,
        keyreuse=reuse,
        timing=timing,
    )
