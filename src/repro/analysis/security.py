"""Security-configuration analyses (Section 4.4, Figures 2–3).

* **SSH up-to-dateness** — Debian-derived servers expose their package
  patch level in the banner; any non-latest level counts as outdated
  (stable updates only ship security/important fixes).  Counted per
  unique host key.
* **Broker access control** — an MQTT CONNACK 0 to an anonymous
  CONNECT, or an AMQP Tune after an ANONYMOUS Start-Ok, marks the
  broker *open*; refusals mark it access-controlled.
* **Combined secure share** — the paper's headline (43.5 % of hitlist
  hosts vs 28.4 % of NTP-sourced hosts appear secure): up-to-date SSH
  servers and access-controlled brokers over all assessable hosts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.data.ssh_releases import is_outdated
from repro.proto.ssh import SshIdentification, debian_patch_level
from repro.scan.result import BrokerGrab, ScanResults, SshGrab


# -- SSH up-to-dateness (Figure 2) ---------------------------------------

@dataclass(frozen=True)
class OutdatednessReport:
    """Figure 2's bar for one dataset."""

    label: str
    assessed: int
    outdated: int
    #: Hosts whose banner hides the patch level (excluded, as in paper).
    unassessable: int

    @property
    def outdated_share(self) -> float:
        return self.outdated / self.assessed if self.assessed else 0.0

    @property
    def up_to_date(self) -> int:
        return self.assessed - self.outdated


def _grab_outdated(grab: SshGrab) -> Optional[bool]:
    """Outdated verdict for one grab; None when not assessable."""
    if not grab.ok or grab.banner is None:
        return None
    identification = SshIdentification(
        protocol="2.0", software=grab.software or "", comment=grab.comment,
    )
    parsed = debian_patch_level(identification)
    if parsed is None:
        return None
    upstream, patch = parsed
    distro = (grab.comment or "").split("-", 1)[0]
    return is_outdated(distro, upstream, patch)


def ssh_outdatedness(label: str, results: ScanResults,
                     by_key: bool = True) -> OutdatednessReport:
    """Assess SSH patch levels, deduplicated by host key (default).

    A host key's slot is only consumed by an *assessable* grab: if the
    first grab presenting a key hides its patch level (the seed
    implementation burned the key on it), a later assessable grab with
    the same key still counts.  ``unassessable`` tallies keys that
    never produced an assessable banner — per key, not per grab.

    With ``by_key=False`` every responsive address counts separately —
    the Appendix C (Figure 5) view, where key reuse inflates outdated
    hosts.
    """
    assessed = outdated = unassessable = 0
    if by_key:
        assessed_keys: set = set()
        unassessable_keys: set = set()
        for grab in results.ssh:
            if not grab.ok or grab.key_fingerprint is None:
                continue
            if grab.key_fingerprint in assessed_keys:
                continue
            verdict = _grab_outdated(grab)
            if verdict is None:
                unassessable_keys.add(grab.key_fingerprint)
                continue
            assessed_keys.add(grab.key_fingerprint)
            unassessable_keys.discard(grab.key_fingerprint)
            assessed += 1
            if verdict:
                outdated += 1
        unassessable = len(unassessable_keys)
    else:
        for grab in results.ssh:
            if not grab.ok:
                continue
            verdict = _grab_outdated(grab)
            if verdict is None:
                unassessable += 1
                continue
            assessed += 1
            if verdict:
                outdated += 1
    return OutdatednessReport(label=label, assessed=assessed,
                              outdated=outdated, unassessable=unassessable)


# -- broker access control (Figure 3) -------------------------------------

@dataclass(frozen=True)
class AccessControlReport:
    """Figure 3's bars for one (protocol, dataset) pair."""

    label: str
    protocol: str
    open_count: int
    controlled: int
    unknown: int

    @property
    def total(self) -> int:
        return self.open_count + self.controlled

    @property
    def access_control_share(self) -> float:
        return self.controlled / self.total if self.total else 0.0

    @property
    def open_share(self) -> float:
        return self.open_count / self.total if self.total else 0.0


def broker_access_control(label: str, results: ScanResults,
                          protocol: str,
                          include_tls_variant: bool = True,
                          by_network: Optional[int] = None) -> AccessControlReport:
    """Classify broker deployments of one protocol family.

    Deduplicates by address (or by ``/by_network`` prefix for the
    Appendix C view); the TLS variant's grabs are merged in by default,
    as the paper reports one MQTT and one AMQP figure.  Per dedup key,
    the first *conclusive* verdict wins over any number of
    ``open_access=None`` grabs — the seed implementation consumed the
    key on the first grab regardless, so an inconclusive plaintext grab
    silently discarded the conclusive TLS-variant grab merged in after
    it.
    """
    grabs: List[BrokerGrab] = list(results.grabs(protocol))
    if include_tls_variant:
        grabs += list(results.grabs(protocol + "s"))
    verdicts: dict = {}
    for grab in grabs:
        if not grab.ok:
            continue
        key = grab.address if by_network is None else \
            grab.address >> (128 - by_network)
        if key not in verdicts or (verdicts[key] is None
                                   and grab.open_access is not None):
            verdicts[key] = grab.open_access
    open_count = controlled = unknown = 0
    for verdict in verdicts.values():
        if verdict is None:
            unknown += 1
        elif verdict:
            open_count += 1
        else:
            controlled += 1
    return AccessControlReport(label=label, protocol=protocol,
                               open_count=open_count, controlled=controlled,
                               unknown=unknown)


# -- the combined headline -------------------------------------------------

@dataclass(frozen=True)
class SecureShareReport:
    """The 43.5 % → 28.4 % comparison input for one dataset."""

    label: str
    ssh_assessed: int
    ssh_secure: int
    brokers_total: int
    brokers_secure: int

    @property
    def total(self) -> int:
        return self.ssh_assessed + self.brokers_total

    @property
    def secure(self) -> int:
        return self.ssh_secure + self.brokers_secure

    @property
    def secure_share(self) -> float:
        return self.secure / self.total if self.total else 0.0


def secure_share(label: str, results: ScanResults) -> SecureShareReport:
    """Combined SSH + IoT-broker security posture of one dataset."""
    ssh_report = ssh_outdatedness(label, results, by_key=True)
    mqtt_report = broker_access_control(label, results, "mqtt")
    amqp_report = broker_access_control(label, results, "amqp")
    return SecureShareReport(
        label=label,
        ssh_assessed=ssh_report.assessed,
        ssh_secure=ssh_report.up_to_date,
        brokers_total=mqtt_report.total + amqp_report.total,
        brokers_secure=mqtt_report.controlled + amqp_report.controlled,
    )


def security_gap(ntp: ScanResults, hitlist: ScanResults) -> Tuple[
        SecureShareReport, SecureShareReport]:
    """The paper's headline pair: (NTP report, hitlist report)."""
    return secure_share("ntp", ntp), secure_share("hitlist", hitlist)
