"""Address-structure analysis (Section 3.2.1, Figure 1).

Profiles an address set by interface-identifier class and reports the
share of addresses originating from "Cable/DSL/ISP"-classified ASes.
Together these are the paper's fingerprint separating end-user-heavy
data (NTP-sourced) from server-heavy data (hitlists): structured IIDs
indicate manual configuration; high-entropy IIDs indicate SLAAC privacy
extensions on client devices.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from repro.ipv6 import iid as iidmod
from repro.ipv6.columnar import AddressColumn
from repro.world.asdb import EYEBALL, AsDatabase


@dataclass(frozen=True)
class StructureReport:
    """One dataset's bar in Figure 1."""

    label: str
    total: int
    class_shares: Mapping[str, float]
    eyeball_as_share: float

    @property
    def structured_share(self) -> float:
        return sum(self.class_shares.get(cls, 0.0)
                   for cls in iidmod.STRUCTURED_CLASSES)

    @property
    def high_entropy_share(self) -> float:
        return self.class_shares.get("high-entropy", 0.0)

    @property
    def eui64_share(self) -> float:
        return self.class_shares.get("eui64", 0.0)


def analyze(label: str, addresses: Iterable[int],
            asdb: AsDatabase) -> StructureReport:
    """Build the Figure 1 profile for one address set.

    The set is packed into an :class:`AddressColumn` once; both the IID
    classification and the AS-category share then run as columnar
    kernels (the category share groups by /32, the granularity of the
    AS registry) instead of per-address Python loops.
    """
    column = AddressColumn.coerce(addresses)
    profile = iidmod.profile(column)
    return StructureReport(
        label=label,
        total=profile.total,
        class_shares=profile.as_dict(),
        eyeball_as_share=asdb.category_share(column, EYEBALL),
    )


def compare(reports: Iterable[StructureReport]) -> Dict[str, Dict[str, float]]:
    """Figure 1 as nested dicts: ``{dataset: {class: share, ...}}``."""
    table: Dict[str, Dict[str, float]] = {}
    for report in reports:
        row = dict(report.class_shares)
        row["cable-dsl-isp"] = report.eyeball_as_share
        table[report.label] = row
    return table
