"""Typed library facade over the study's pipelines.

Every CLI subcommand is a thin wrapper over one function here, so
programs embed the reproduction without re-implementing the command
handlers: each entry point accepts a config dataclass, runs inside its
own metrics-registry scope, and returns a result object carrying both
the rich in-memory artefacts and a versioned
:class:`~repro.obs.runreport.RunReport` (config + metrics snapshot +
headline tables) ready for ``repro.io`` serialization or JSON output.

Quickstart::

    from repro import api
    from repro.core.pipeline import ExperimentConfig
    from repro.world.population import WorldConfig

    study = api.study(ExperimentConfig(world=WorldConfig(scale=0.1)))
    print(study.report.tables["hit_rates"])    # headline numbers
    study.experiment.table1()                  # full result object
"""

from __future__ import annotations

from collections import Counter as TallyCounter
from dataclasses import asdict, dataclass, field
from typing import List, Optional, Tuple

from repro.analysis import devicetypes
from repro.analysis.parallel import run_analysis
from repro.core.actors import NtpSourcingActor, covert_profile, research_profile
from repro.core.campaign import CampaignConfig, CampaignReport, CollectionCampaign
from repro.core.detection import ActorDetector, ActorVerdict
from repro.core.pipeline import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.telescope import Telescope
from repro.net.clock import DAY, HOUR, EventScheduler
from repro.obs import MetricsRegistry, RunReport, use_registry
from repro.scan.result import PROTOCOLS, ScanResults
from repro.world.population import World, WorldConfig
from repro.world.population import build_world as _build_world


# -- configs ----------------------------------------------------------------

@dataclass
class CollectConfig:
    """Inputs of a standalone collection campaign run."""

    world: WorldConfig = field(default_factory=WorldConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)


@dataclass
class TelescopeConfig:
    """Inputs of a Section-5 telescope + actor-detection run."""

    world: WorldConfig = field(default_factory=WorldConfig)
    #: Daily telescope sweeps over the pool.
    sweep_days: int = 6
    #: Extra days for slow (covert) actors to fire their delayed scans.
    settle_days: int = 4
    #: Pool zones the overt research actor deploys servers into.
    research_zones: Tuple[str, ...] = ("us", "de", "jp")
    #: Pool zones the covert cloud actor deploys servers into.
    covert_zones: Tuple[str, ...] = ("us", "nl")

    def __post_init__(self) -> None:
        if self.sweep_days < 1:
            raise ValueError(
                f"sweep_days={self.sweep_days}: must be >= 1")
        if self.settle_days < 0:
            raise ValueError(
                f"settle_days={self.settle_days}: must be >= 0")


@dataclass
class AnalyzeConfig:
    """Inputs of an offline re-analysis over saved scan results.

    Two sources: a pair of ``study --out-dir`` JSONL files
    (``ntp_path`` + ``hitlist_path``), or a :mod:`repro.store` run
    directory (``run_dir``) — the latter reads the WAL segments
    directly, so crashed or still-running studies analyze too.
    """

    ntp_path: Optional[str] = None
    hitlist_path: Optional[str] = None
    run_dir: Optional[str] = None
    #: Analysis process-pool size; 0/1 run the jobs inline.  Either way
    #: the report is byte-identical modulo the ``parallel_analysis``
    #: wall-clock table, which only appears when the pool engages.
    workers: int = 0

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"workers={self.workers}: must be >= 0")
        if self.run_dir is None and (self.ntp_path is None
                                     or self.hitlist_path is None):
            raise ValueError(
                f"ntp_path={self.ntp_path!r}, "
                f"hitlist_path={self.hitlist_path!r}: analyze needs both "
                "saved-result paths, or run_dir pointing at a run store")
        if self.run_dir is not None and (self.ntp_path is not None
                                         or self.hitlist_path is not None):
            raise ValueError(
                f"run_dir={self.run_dir!r}: give either a run store or "
                "saved-result paths, not both")


# -- results ----------------------------------------------------------------

@dataclass
class WorldResult:
    world: World
    report: RunReport


@dataclass
class CollectResult:
    campaign: CampaignReport
    report: RunReport


@dataclass
class StudyResult:
    experiment: ExperimentResult
    report: RunReport


@dataclass
class TelescopeResult:
    telescope: Telescope
    verdicts: List[ActorVerdict]
    report: RunReport


@dataclass
class AnalyzeResult:
    ntp_scan: ScanResults
    hitlist_scan: ScanResults
    report: RunReport


# -- entry points -----------------------------------------------------------

def build_world(config: Optional[WorldConfig] = None) -> WorldResult:
    """Generate a world and summarize its composition."""
    config = config or WorldConfig()
    with use_registry() as registry:
        world = _build_world(config)
    types = TallyCounter(device.type_name for device in world.devices)
    tables = {
        "composition": [{"type": name, "count": count}
                        for name, count in types.most_common()],
        "summary": {
            "premises": len(world.premises),
            "ases": len(world.asdb.systems),
            "ntp_clients": len(world.ntp_clients()),
            "scannable": len(world.scannable()),
            "dns_named": len(world.dns_named()),
        },
    }
    report = RunReport.build("world", asdict(config), registry, tables)
    return WorldResult(world=world, report=report)


def collect(config: Optional[CollectConfig] = None) -> CollectResult:
    """Run one collection campaign (no scanning)."""
    config = config or CollectConfig()
    with use_registry() as registry:
        world = _build_world(config.world)
        campaign = CollectionCampaign(world, config.campaign)
        campaign_report = campaign.run()
    dataset = campaign_report.dataset
    tables = {
        "per_server": [
            {"location": location, "addresses": count}
            for location, count in sorted(dataset.per_server_counts().items(),
                                          key=lambda item: -item[1])
        ],
        "totals": {
            "addresses": len(dataset),
            "requests": dataset.total_requests,
            "days_run": campaign_report.days_run,
            "wire_queries": campaign_report.wire_queries,
            "fast_queries": campaign_report.fast_queries,
        },
    }
    report = RunReport.build("collect", asdict(config), registry, tables)
    return CollectResult(campaign=campaign_report, report=report)


def study(config: Optional[ExperimentConfig] = None) -> StudyResult:
    """Run the full study pipeline (collection + both scan paths).

    Set ``config.store_dir`` to stream the run into a durable
    :mod:`repro.store` directory that :func:`resume` can continue.
    """
    config = config or ExperimentConfig()
    result = run_experiment(config)
    with use_registry(result.metrics):
        tables = study_tables(result, workers=config.parallel_workers)
    report = RunReport.build("study", asdict(config), result.metrics, tables)
    return StudyResult(experiment=result, report=report)


def resume(run_dir: str) -> StudyResult:
    """Continue an interrupted store-backed study to completion.

    Reads the run directory's stored config, replays the surviving WAL
    deterministically (every regenerated record is verified against the
    log), then continues the study live from the exact record where the
    crash cut it off.  The returned report is identical to an
    uninterrupted run's, modulo the ``store_*`` recovery metrics.
    """
    from repro.core.pipeline import experiment_config_from_document
    from repro.store import RunStore

    store = RunStore.open(run_dir)
    config = experiment_config_from_document(store.meta["config"],
                                             store_dir=str(run_dir))
    result = run_experiment(config, resume=True)
    with use_registry(result.metrics):
        tables = study_tables(result, workers=config.parallel_workers)
    report = RunReport.build("study", asdict(config), result.metrics, tables)
    return StudyResult(experiment=result, report=report)


def study_tables(result: ExperimentResult, *, workers: int = 0) -> dict:
    """The headline tables of one experiment, as JSON-shaped rows.

    ``workers > 1`` fans the independent analyses across a process
    pool via :func:`repro.analysis.parallel.run_analysis`; every table
    stays byte-identical to the sequential path, and the pool's
    wall-clock observability lands in a ``parallel_analysis`` table
    that deterministic-parity checks strip.
    """
    table1 = result.table1()
    protocols = result.config.protocols or PROTOCOLS
    bundle = run_analysis(result.ntp_scan, result.hitlist_scan,
                          asdb=result.world.asdb, workers=workers)
    ntp_gap, hitlist_gap = bundle.security_gap()
    table3 = bundle.table3
    findings = devicetypes.new_or_underrepresented(table3)
    tables: dict = {}
    if result.parallel is not None:
        # Wall-clock observability of the worker pool.  Kept out of the
        # metrics registry (which records simulated time only) and in
        # its own table so deterministic-parity checks can strip it.
        tables["parallel"] = result.parallel
    if workers > 1:
        # Same rule for the analysis pool's timings.
        tables["parallel_analysis"] = bundle.timing
    tables.update({
        "table1": [
            {"label": s.label, "addresses": s.address_count,
             "net48s": s.net48_count, "ases": s.as_count,
             "median_ips_per_48": s.median_ips_per_48,
             "median_ips_per_as": s.median_ips_per_as}
            for s in table1.summaries
        ],
        "table2": [
            {"protocol": protocol,
             "ntp_responsive":
                 len(result.ntp_scan.responsive_addresses(protocol)),
             "hitlist_responsive":
                 len(result.hitlist_scan.responsive_addresses(protocol))}
            for protocol in protocols
        ],
        "hit_rates": {
            "ntp": result.ntp_scan.hit_rate(),
            "hitlist": result.hitlist_scan.hit_rate(),
        },
        "security": {
            "ntp": {"secure_share": ntp_gap.secure_share,
                    "total": ntp_gap.total},
            "hitlist": {"secure_share": hitlist_gap.secure_share,
                        "total": hitlist_gap.total},
        },
        "device_gap": {
            "groups": len(findings),
            "devices": sum(count for count, _ in findings.values()),
        },
        "keyreuse": {
            side: {"reused_keys": report.reused_key_count,
                   "reused_addresses": report.total_reused_addresses}
            for side, report in bundle.keyreuse.items()
        },
    })
    return tables


def telescope(config: Optional[TelescopeConfig] = None) -> TelescopeResult:
    """Deploy third-party actors and run the Section-5 detector.

    This is the actor wiring the CLI used to inline: an overt research
    actor and a covert cloud actor source addresses from the pool, the
    telescope sweeps daily, and the detector classifies whoever scanned
    its baits.
    """
    config = config or TelescopeConfig()
    with use_registry() as registry:
        world = _build_world(config.world)
        campaign = CollectionCampaign(
            world, CampaignConfig(days=1, wire_fraction=0.0))
        scheduler = EventScheduler(world.clock)
        research_as = next(s for s in world.asdb.systems
                           if s.category == "Educational/Research")
        clouds = [s for s in world.asdb.systems
                  if s.name.startswith("HyperCloud")]
        NtpSourcingActor(
            world, campaign.pool, scheduler, research_profile("GT"),
            server_base=world.allocate_prefix64(clouds[0].number),
            scanner_base=world.allocate_prefix64(research_as.number),
            zones=list(config.research_zones), seed=1)
        NtpSourcingActor(
            world, campaign.pool, scheduler, covert_profile("covert"),
            server_base=world.allocate_prefix64(clouds[1].number),
            scanner_base=world.allocate_prefix64(clouds[2].number),
            zones=list(config.covert_zones), seed=2)
        scope = Telescope(world.network)
        for _ in range(config.sweep_days):
            scope.sweep(campaign.pool)
            scheduler.run_until(world.clock.now() + DAY)
        scheduler.run_until(world.clock.now() + config.settle_days * DAY)

        detector = ActorDetector(
            scope, world.asdb,
            operator_of_server=lambda a: campaign.pool.server(a).operator)
        verdicts = detector.report()

    tables = {
        "actors": [
            {"actor": verdict.observation.cluster,
             "verdict": verdict.kind,
             "servers": len(verdict.observation.triggering_servers),
             "ports": len(verdict.observation.ports),
             "median_delay_hours": verdict.observation.median_delay / HOUR,
             "sensitive_share": verdict.observation.sensitive_share}
            for verdict in verdicts
        ],
        "telescope": {
            "baits": len(scope.baits),
            "match_rate": scope.match_rate(),
        },
    }
    report = RunReport.build("telescope", asdict(config), registry, tables)
    return TelescopeResult(telescope=scope, verdicts=verdicts, report=report)


def analyze(config: AnalyzeConfig) -> AnalyzeResult:
    """Re-run the analyses over saved scan results or a run store."""
    from repro.io import load_results

    with use_registry() as registry:
        if config.run_dir is not None:
            from repro.store import read_study

            reader = read_study(config.run_dir)
            ntp_scan = reader.scan("ntp")
            hitlist_scan = reader.scan("hitlist")
        else:
            ntp_scan = load_results(config.ntp_path)
            hitlist_scan = load_results(config.hitlist_path)
        registry.counter("analyze_targets_total", source="ntp").inc(
            ntp_scan.targets_seen)
        registry.counter("analyze_targets_total", source="hitlist").inc(
            hitlist_scan.targets_seen)
        # Inside the registry scope so the analysis_* series land in
        # this run's snapshot.  No AS database offline, so the key-reuse
        # sweep is skipped (the bundle's keyreuse dict stays empty).
        bundle = run_analysis(ntp_scan, hitlist_scan,
                              workers=config.workers)

    table3 = bundle.table3
    ntp_gap, hitlist_gap = bundle.security_gap()
    tables = {
        "device_types": [
            {"group": group.representative, "ntp_certs": group.count,
             "hitlist_certs":
                 table3.http_group_count("hitlist", group.representative)}
            for group in table3.http_ntp[:8]
        ],
        "security": {
            "ntp": {"secure_share": ntp_gap.secure_share,
                    "total": ntp_gap.total},
            "hitlist": {"secure_share": hitlist_gap.secure_share,
                        "total": hitlist_gap.total},
        },
    }
    if config.workers > 1:
        tables["parallel_analysis"] = bundle.timing
    report = RunReport.build("analyze", asdict(config), registry, tables)
    return AnalyzeResult(ntp_scan=ntp_scan, hitlist_scan=hitlist_scan,
                         report=report)


__all__ = [
    "AnalyzeConfig",
    "AnalyzeResult",
    "CollectConfig",
    "CollectResult",
    "ExperimentConfig",
    "MetricsRegistry",
    "RunReport",
    "StudyResult",
    "TelescopeConfig",
    "TelescopeResult",
    "WorldResult",
    "analyze",
    "build_world",
    "collect",
    "resume",
    "study",
    "study_tables",
    "telescope",
]
