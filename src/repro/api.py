"""Typed library facade over the study's pipelines.

Every CLI subcommand is a thin wrapper over one function here, so
programs embed the reproduction without re-implementing the command
handlers: each entry point accepts a config dataclass, runs inside its
own metrics-registry scope, and returns a result object carrying both
the rich in-memory artefacts and a versioned
:class:`~repro.obs.runreport.RunReport` (config + metrics snapshot +
headline tables) ready for ``repro.io`` serialization or JSON output.

Quickstart::

    from repro import api
    from repro.core.pipeline import ExperimentConfig
    from repro.world.population import WorldConfig

    study = api.study(ExperimentConfig(world=WorldConfig(scale=0.1)))
    print(study.report.tables["hit_rates"])    # headline numbers
    study.experiment.table1()                  # full result object

Parallel execution is owned by :class:`ExecutionContext`: a context
holds one persistent ``spawn`` worker pool plus its pickle-once
snapshot cache, shared by every ``study``/``study_tables``/``analyze``
/``resume`` call that passes ``ctx=``::

    with api.ExecutionContext(workers=4) as ctx:
        study = api.study(config, ctx=ctx)          # ships world once
        tables = api.study_tables(study.experiment, ctx=ctx)
        again = api.study(config, ctx=ctx)          # reuses the pool

Entry points called with bare ``workers=`` (or a config whose
``parallel_workers``/``workers`` field is positive) delegate to an
implicit default context of that width, kept alive for the process and
closed at interpreter exit — the backward-compatible face of the same
machinery.
"""

from __future__ import annotations

import atexit
from collections import Counter as TallyCounter
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis import devicetypes
from repro.analysis.parallel import run_analysis
from repro.core.actors import NtpSourcingActor, covert_profile, research_profile
from repro.core.attribution import AttributionReport, attribute_events
from repro.core.campaign import CampaignConfig, CampaignReport, CollectionCampaign
from repro.core.detection import ActorDetector, ActorVerdict
from repro.core.ecosystem import ScannerPopulation, ScenarioConfig, leak_scenario
from repro.core.pipeline import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.telescope import Telescope
from repro.net.clock import DAY, HOUR, EventScheduler
from repro.obs import MetricsRegistry, RunReport, use_registry
from repro.runtime.pool import WorkerPool, resolve_workers
from repro.scan.result import PROTOCOLS, ScanResults
from repro.world.population import World, WorldConfig
from repro.world.population import build_world as _build_world


# -- execution contexts ------------------------------------------------------

class ExecutionContext:
    """Owner of one persistent worker pool and its snapshot cache.

    ``workers=0`` is a valid, fully sequential context (its
    :attr:`pool` is ``None``), so callers can thread one ``ctx``
    through a pipeline unconditionally.  ``workers >= 1`` lazily spawns
    a :class:`~repro.runtime.pool.WorkerPool` of that width (validated
    and CPU-capped by the same :func:`~repro.runtime.pool.
    resolve_workers` path every other worker knob uses) on first use
    and keeps it — and its pickle-once world/results snapshot cache —
    across every ``study``/``study_tables``/``analyze``/``resume``
    call until :meth:`close`.

    Use as a context manager::

        with api.ExecutionContext(workers=4) as ctx:
            first = api.study(config, ctx=ctx)
            tables = api.study_tables(first.experiment, ctx=ctx)
    """

    def __init__(self, workers: int = 0, *,
                 start_method: Optional[str] = None) -> None:
        self.workers = resolve_workers(workers)
        self.start_method = start_method
        self._pool: Optional[WorkerPool] = None
        self._closed = False

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pool(self) -> Optional[WorkerPool]:
        """The context's persistent pool (``None`` when sequential).

        A pool whose workers died is replaced transparently — the
        :class:`WorkerPool` itself respawns after a break, so the same
        instance normally lives for the context's whole lifetime.
        """
        if self._closed:
            raise RuntimeError(
                "ExecutionContext is closed; create a new one to run "
                "more work")
        if self.workers < 1:
            return None
        if self._pool is None or self._pool.closed:
            self._pool = WorkerPool(self.workers,
                                    start_method=self.start_method)
        return self._pool

    def stats(self) -> dict:
        """The pool's lifetime counters (spawn generations, batches,
        snapshot ship/reuse tallies); empty before first pooled use."""
        return dict(self._pool.stats) if self._pool is not None else {}

    def close(self) -> None:
        """Join the workers and drop the snapshot cache (idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "ExecutionContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


#: Implicit contexts backing bare ``workers=`` calls, one per distinct
#: (width, start method).  Persistent on purpose — that is what makes
#: repeated ``api.study(config)`` calls amortize worker spawn — and
#: closed at interpreter exit (tests close them between cases via
#: :func:`shutdown_default_contexts` in the conftest leak guard).
_DEFAULT_CONTEXTS: Dict[tuple, ExecutionContext] = {}


def _default_context(workers: int,
                     start_method: Optional[str] = None) -> ExecutionContext:
    key = (workers, start_method)
    ctx = _DEFAULT_CONTEXTS.get(key)
    if ctx is None or ctx.closed:
        ctx = ExecutionContext(workers, start_method=start_method)
        _DEFAULT_CONTEXTS[key] = ctx
    return ctx


def shutdown_default_contexts() -> None:
    """Close every implicit default :class:`ExecutionContext`.

    Registered ``atexit``; test harnesses with child-process leak
    guards call it explicitly so sanctioned persistent workers are
    joined before the guard counts leftovers.
    """
    while _DEFAULT_CONTEXTS:
        _, ctx = _DEFAULT_CONTEXTS.popitem()
        ctx.close()


atexit.register(shutdown_default_contexts)


def _context_pool(ctx: Optional[ExecutionContext],
                  workers: int) -> Optional[WorkerPool]:
    """The pool a call should run on: the explicit context's, or an
    implicit default context's for bare ``workers=`` calls."""
    if ctx is not None:
        return ctx.pool
    workers = resolve_workers(workers)
    if workers < 1:
        return None
    return _default_context(workers).pool


# -- configs ----------------------------------------------------------------

@dataclass
class CollectConfig:
    """Inputs of a standalone collection campaign run."""

    world: WorldConfig = field(default_factory=WorldConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)


@dataclass
class TelescopeConfig:
    """Inputs of a Section-5 telescope + actor-detection run."""

    world: WorldConfig = field(default_factory=WorldConfig)
    #: Daily telescope sweeps over the pool.
    sweep_days: int = 6
    #: Extra days for slow (covert) actors to fire their delayed scans.
    settle_days: int = 4
    #: Pool zones the overt research actor deploys servers into.
    research_zones: Tuple[str, ...] = ("us", "de", "jp")
    #: Pool zones the covert cloud actor deploys servers into.
    covert_zones: Tuple[str, ...] = ("us", "nl")

    def __post_init__(self) -> None:
        if self.sweep_days < 1:
            raise ValueError(
                f"sweep_days={self.sweep_days}: must be >= 1")
        if self.settle_days < 0:
            raise ValueError(
                f"settle_days={self.settle_days}: must be >= 0")


@dataclass
class EcosystemConfig:
    """Inputs of a mixed-population telescope + attribution run.

    Builds on :class:`TelescopeConfig`'s wiring (the same two
    NTP-sourcing actors and daily sweeps) and adds the five-strategy
    leak population plus the attribution layer.  ``workers`` pools the
    feature extraction exactly like :class:`AnalyzeConfig.workers`;
    ``window_days`` additionally emits rolling attribution windows
    through the service reader.
    """

    world: WorldConfig = field(default_factory=WorldConfig)
    #: Daily telescope sweeps over the pool.
    sweep_days: int = 4
    #: Extra days for slow (covert) actors to fire their delayed scans.
    settle_days: int = 2
    #: Pool zones the overt research actor deploys servers into.
    research_zones: Tuple[str, ...] = ("us", "de", "jp")
    #: Pool zones the covert cloud actor deploys servers into.
    covert_zones: Tuple[str, ...] = ("us", "nl")
    #: The leak population's knobs (target counts, per-actor seeds).
    scenario: ScenarioConfig = field(default_factory=ScenarioConfig)
    #: Attribution extraction pool size (0 = inline, byte-identical).
    workers: int = 0
    #: Rolling attribution windows (simulated days); None disables.
    window_days: Optional[float] = None
    step_days: Optional[float] = None

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)
        if self.sweep_days < 1:
            raise ValueError(
                f"sweep_days={self.sweep_days}: must be >= 1")
        if self.settle_days < 0:
            raise ValueError(
                f"settle_days={self.settle_days}: must be >= 0")
        if self.window_days is None:
            if self.step_days is not None:
                raise ValueError(
                    f"step_days={self.step_days}: rolling attribution "
                    "windows need window_days")
        else:
            if self.window_days <= 0:
                raise ValueError(
                    f"window_days={self.window_days}: must be positive")
            if self.step_days is not None and self.step_days <= 0:
                raise ValueError(
                    f"step_days={self.step_days}: must be positive")


@dataclass
class AmplificationConfig:
    """Inputs of the monlist amplification study.

    Builds a dedicated control-plane world: ``servers`` NTP pool
    members, each with the version/patch-level profile
    :func:`repro.world.ntpprofiles.profile_for` assigns and a
    pre-seeded recent-client table, scanned with the ``ntp`` probe
    module (mode-6 readvar + mode-7 monlist).  ``workers`` selects the
    parallel sharded engine; the amplification table is byte-identical
    at any worker count.
    """

    #: Pool servers deployed (and scanned).
    servers: int = 96
    seed: int = 20240720
    #: Largest pre-seeded recent-client table per server.
    max_entries: int = 48
    #: Scan worker processes (0 = in-process sequential engine).
    workers: int = 0
    #: Shard count of the sharded scan engine.
    shards: int = 4

    def __post_init__(self) -> None:
        self.workers = resolve_workers(self.workers)
        if self.servers < 1:
            raise ValueError(f"servers={self.servers}: must be >= 1")
        if self.max_entries < 0:
            raise ValueError(
                f"max_entries={self.max_entries}: must be >= 0")
        if self.shards < 1:
            raise ValueError(f"shards={self.shards}: must be >= 1")


@dataclass
class AnalyzeConfig:
    """Inputs of an offline re-analysis over saved scan results.

    Two sources: a pair of ``study --out-dir`` JSONL files
    (``ntp_path`` + ``hitlist_path``), or a :mod:`repro.store` run
    directory (``run_dir``) — the latter reads the WAL segments
    directly, so crashed or still-running studies analyze too.
    """

    ntp_path: Optional[str] = None
    hitlist_path: Optional[str] = None
    run_dir: Optional[str] = None
    #: Analysis worker-pool size; 0 runs the jobs inline, ``N >= 1``
    #: uses an N-process pool (CPU-capped).  Either way the report is
    #: byte-identical modulo the ``parallel_analysis`` wall-clock
    #: table, which only appears when the pool engages.
    workers: int = 0
    #: Windowed mode (``analyze --since/--window/--step``): setting
    #: ``window`` switches the run-store path to rolling
    #: :mod:`repro.service.query` tables.  All three are simulated
    #: DAYS; ``since``/``step`` default to 0 / the window span.
    since: Optional[float] = None
    window: Optional[float] = None
    step: Optional[float] = None

    def __post_init__(self) -> None:
        # Same validation/cap path as ExperimentConfig.parallel_workers
        # and the CLI --workers flags.
        self.workers = resolve_workers(self.workers)
        if self.run_dir is None and (self.ntp_path is None
                                     or self.hitlist_path is None):
            raise ValueError(
                f"ntp_path={self.ntp_path!r}, "
                f"hitlist_path={self.hitlist_path!r}: analyze needs both "
                "saved-result paths, or run_dir pointing at a run store")
        if self.run_dir is not None and (self.ntp_path is not None
                                         or self.hitlist_path is not None):
            raise ValueError(
                f"run_dir={self.run_dir!r}: give either a run store or "
                "saved-result paths, not both")
        if self.window is None:
            if self.since is not None:
                raise ValueError(
                    f"since={self.since}: rolling spans need --window")
            if self.step is not None:
                raise ValueError(
                    f"step={self.step}: rolling spans need --window")
        else:
            if self.run_dir is None:
                raise ValueError(
                    f"window={self.window}: windowed analysis replays a "
                    "run store; give run_dir, not saved-result paths")
            if self.window <= 0:
                raise ValueError(
                    f"window={self.window}: must be positive days")
            if self.since is not None and self.since < 0:
                raise ValueError(
                    f"since={self.since}: must be >= 0 days")
            if self.step is not None and self.step <= 0:
                raise ValueError(
                    f"step={self.step}: must be positive days")


# -- results ----------------------------------------------------------------

@dataclass
class WorldResult:
    world: World
    report: RunReport


@dataclass
class CollectResult:
    campaign: CampaignReport
    report: RunReport


@dataclass
class StudyResult:
    experiment: ExperimentResult
    report: RunReport


@dataclass
class TelescopeResult:
    telescope: Telescope
    verdicts: List[ActorVerdict]
    report: RunReport


@dataclass
class EcosystemResult:
    """A finished mixed-population run with strategy attribution."""

    telescope: Telescope
    population: ScannerPopulation
    attribution: AttributionReport
    verdicts: List[ActorVerdict]
    report: RunReport


@dataclass
class AmplificationResult:
    """A finished monlist amplification study."""

    results: ScanResults
    exposure: "object"       # analysis.amplification.MonlistExposureReport
    distribution: "object"   # analysis.amplification.AmplificationReport
    #: The rendered exposure + distribution artefact (bench-committed).
    table: str
    report: RunReport


@dataclass
class AnalyzeResult:
    ntp_scan: ScanResults
    hitlist_scan: ScanResults
    report: RunReport


@dataclass
class CampaignResult:
    """A finished (or gracefully stopped) longitudinal campaign."""

    daemon: "object"
    report: RunReport


@dataclass
class QueryResult:
    """One windowed query's rolling series + run report."""

    document: dict
    report: RunReport


# -- entry points -----------------------------------------------------------

def build_world(config: Optional[WorldConfig] = None) -> WorldResult:
    """Generate a world and summarize its composition."""
    config = config or WorldConfig()
    with use_registry() as registry:
        world = _build_world(config)
    types = TallyCounter(device.type_name for device in world.devices)
    tables = {
        "composition": [{"type": name, "count": count}
                        for name, count in types.most_common()],
        "summary": {
            "premises": len(world.premises),
            "ases": len(world.asdb.systems),
            "ntp_clients": len(world.ntp_clients()),
            "scannable": len(world.scannable()),
            "dns_named": len(world.dns_named()),
        },
    }
    report = RunReport.build("world", asdict(config), registry, tables)
    return WorldResult(world=world, report=report)


def collect(config: Optional[CollectConfig] = None) -> CollectResult:
    """Run one collection campaign (no scanning)."""
    config = config or CollectConfig()
    with use_registry() as registry:
        world = _build_world(config.world)
        campaign = CollectionCampaign(world, config.campaign)
        campaign_report = campaign.run()
    dataset = campaign_report.dataset
    tables = {
        "per_server": [
            {"location": location, "addresses": count}
            for location, count in sorted(dataset.per_server_counts().items(),
                                          key=lambda item: -item[1])
        ],
        "totals": {
            "addresses": len(dataset),
            "requests": dataset.total_requests,
            "days_run": campaign_report.days_run,
            "wire_queries": campaign_report.wire_queries,
            "fast_queries": campaign_report.fast_queries,
        },
    }
    report = RunReport.build("collect", asdict(config), registry, tables)
    return CollectResult(campaign=campaign_report, report=report)


def study(config: Optional[ExperimentConfig] = None, *,
          ctx: Optional[ExecutionContext] = None) -> StudyResult:
    """Run the full study pipeline (collection + both scan paths).

    Set ``config.store_dir`` to stream the run into a durable
    :mod:`repro.store` directory that :func:`resume` can continue.

    With ``config.parallel_workers > 0`` the batch scans and the
    analysis fan-out run on ``ctx``'s persistent pool (an implicit
    process-wide default context when ``ctx`` is omitted): repeated
    studies against one world reuse spawned workers and ship the
    world snapshot once per (world, pool) pair.
    """
    config = config or ExperimentConfig()
    pool = _context_pool(ctx, config.parallel_workers)
    result = run_experiment(config, pool=pool)
    with use_registry(result.metrics):
        tables = study_tables(result, workers=config.parallel_workers,
                              ctx=ctx)
    report = RunReport.build("study", asdict(config), result.metrics, tables)
    return StudyResult(experiment=result, report=report)


def resume(run_dir: str, *,
           ctx: Optional[ExecutionContext] = None) -> StudyResult:
    """Continue an interrupted store-backed study to completion.

    Reads the run directory's stored config, replays the surviving WAL
    deterministically (every regenerated record is verified against the
    log), then continues the study live from the exact record where the
    crash cut it off.  The returned report is identical to an
    uninterrupted run's, modulo the ``store_*`` recovery metrics.
    """
    from repro.core.pipeline import experiment_config_from_document
    from repro.service.config import is_service_document
    from repro.store import RunStore

    store = RunStore.open(run_dir)
    if is_service_document(store.meta.get("config", {})):
        raise ValueError(
            f"run_dir={run_dir}: holds a service campaign, not a batch "
            "study; use api.resume_campaign() instead")
    config = experiment_config_from_document(store.meta["config"],
                                             store_dir=str(run_dir))
    pool = _context_pool(ctx, config.parallel_workers)
    result = run_experiment(config, resume=True, pool=pool)
    with use_registry(result.metrics):
        tables = study_tables(result, workers=config.parallel_workers,
                              ctx=ctx)
    report = RunReport.build("study", asdict(config), result.metrics, tables)
    return StudyResult(experiment=result, report=report)


def study_tables(result: ExperimentResult, *, workers: int = 0,
                 ctx: Optional[ExecutionContext] = None) -> dict:
    """The headline tables of one experiment, as JSON-shaped rows.

    ``workers >= 1`` (or a parallel ``ctx``) fans the independent
    analyses across a worker pool via
    :func:`repro.analysis.parallel.run_analysis`; every table stays
    byte-identical to the sequential path, and the pool's wall-clock
    observability lands in a ``parallel_analysis`` table that
    deterministic-parity checks strip.  Both campaign sides' results
    ship to the pool once per (results, pool) pair, so re-tabulating
    on a shared ``ctx`` skips the serialization pass.
    """
    table1 = result.table1()
    protocols = result.config.protocols or PROTOCOLS
    pool = _context_pool(ctx, workers)
    bundle = run_analysis(result.ntp_scan, result.hitlist_scan,
                          asdb=result.world.asdb, pool=pool)
    ntp_gap, hitlist_gap = bundle.security_gap()
    table3 = bundle.table3
    findings = devicetypes.new_or_underrepresented(table3)
    tables: dict = {}
    if result.parallel is not None:
        # Wall-clock observability of the worker pool.  Kept out of the
        # metrics registry (which records simulated time only) and in
        # its own table so deterministic-parity checks can strip it.
        tables["parallel"] = result.parallel
    if pool is not None:
        # Same rule for the analysis pool's timings.
        tables["parallel_analysis"] = bundle.timing
    tables.update({
        "table1": [
            {"label": s.label, "addresses": s.address_count,
             "net48s": s.net48_count, "ases": s.as_count,
             "median_ips_per_48": s.median_ips_per_48,
             "median_ips_per_as": s.median_ips_per_as}
            for s in table1.summaries
        ],
        "table2": [
            {"protocol": protocol,
             "ntp_responsive":
                 len(result.ntp_scan.responsive_addresses(protocol)),
             "hitlist_responsive":
                 len(result.hitlist_scan.responsive_addresses(protocol))}
            for protocol in protocols
        ],
        "hit_rates": {
            "ntp": result.ntp_scan.hit_rate(),
            "hitlist": result.hitlist_scan.hit_rate(),
        },
        "security": {
            "ntp": {"secure_share": ntp_gap.secure_share,
                    "total": ntp_gap.total},
            "hitlist": {"secure_share": hitlist_gap.secure_share,
                        "total": hitlist_gap.total},
        },
        "device_gap": {
            "groups": len(findings),
            "devices": sum(count for count, _ in findings.values()),
        },
        "keyreuse": {
            side: {"reused_keys": report.reused_key_count,
                   "reused_addresses": report.total_reused_addresses}
            for side, report in bundle.keyreuse.items()
        },
    })
    return tables


def telescope(config: Optional[TelescopeConfig] = None) -> TelescopeResult:
    """Deploy third-party actors and run the Section-5 detector.

    This is the actor wiring the CLI used to inline: an overt research
    actor and a covert cloud actor source addresses from the pool, the
    telescope sweeps daily, and the detector classifies whoever scanned
    its baits.
    """
    config = config or TelescopeConfig()
    with use_registry() as registry:
        world = _build_world(config.world)
        campaign = CollectionCampaign(
            world, CampaignConfig(days=1, wire_fraction=0.0))
        scheduler = EventScheduler(world.clock)
        research_as = next(s for s in world.asdb.systems
                           if s.category == "Educational/Research")
        clouds = [s for s in world.asdb.systems
                  if s.name.startswith("HyperCloud")]
        NtpSourcingActor(
            world, campaign.pool, scheduler, research_profile("GT"),
            server_base=world.allocate_prefix64(clouds[0].number),
            scanner_base=world.allocate_prefix64(research_as.number),
            zones=list(config.research_zones), seed=1)
        NtpSourcingActor(
            world, campaign.pool, scheduler, covert_profile("covert"),
            server_base=world.allocate_prefix64(clouds[1].number),
            scanner_base=world.allocate_prefix64(clouds[2].number),
            zones=list(config.covert_zones), seed=2)
        scope = Telescope(world.network)
        for _ in range(config.sweep_days):
            scope.sweep(campaign.pool)
            scheduler.run_until(world.clock.now() + DAY)
        scheduler.run_until(world.clock.now() + config.settle_days * DAY)

        detector = ActorDetector(
            scope, world.asdb,
            operator_of_server=lambda a: campaign.pool.server(a).operator)
        verdicts = detector.report()

    tables = {
        "actors": [
            {"actor": verdict.observation.cluster,
             "verdict": verdict.kind,
             "servers": len(verdict.observation.triggering_servers),
             "ports": len(verdict.observation.ports),
             "median_delay_hours": verdict.observation.median_delay / HOUR,
             "sensitive_share": verdict.observation.sensitive_share}
            for verdict in verdicts
        ],
        "telescope": {
            "baits": len(scope.baits),
            "match_rate": scope.match_rate(),
        },
    }
    report = RunReport.build("telescope", asdict(config), registry, tables)
    return TelescopeResult(telescope=scope, verdicts=verdicts, report=report)


def ecosystem(config: Optional[EcosystemConfig] = None, *,
              ctx: Optional[ExecutionContext] = None) -> EcosystemResult:
    """Run the mixed scanner population and attribute every cluster.

    The telescope wiring of :func:`telescope` — two NTP-sourcing actors
    behind capture servers, daily bait sweeps — plus the five-strategy
    leak population of :mod:`repro.core.ecosystem` aimed at the bait
    /48.  The attribution layer then classifies every source cluster
    and scores itself against the simulation's ground truth; the
    report's ``confusion`` and ``strategy_metrics`` tables carry the
    per-strategy precision/recall and the truth-vs-predicted matrix.
    """
    from repro.net.clock import MINUTE
    from repro.service.query import WindowedAttributionReader

    config = config or EcosystemConfig()
    with use_registry() as registry:
        world = _build_world(config.world)
        campaign = CollectionCampaign(
            world, CampaignConfig(days=1, wire_fraction=0.0))
        scheduler = EventScheduler(world.clock)
        research_as = next(s for s in world.asdb.systems
                           if s.category == "Educational/Research")
        clouds = [s for s in world.asdb.systems
                  if s.name.startswith("HyperCloud")]
        overt = NtpSourcingActor(
            world, campaign.pool, scheduler, research_profile("GT"),
            server_base=world.allocate_prefix64(clouds[0].number),
            scanner_base=world.allocate_prefix64(research_as.number),
            zones=list(config.research_zones), seed=1)
        covert = NtpSourcingActor(
            world, campaign.pool, scheduler, covert_profile("covert"),
            server_base=world.allocate_prefix64(clouds[1].number),
            scanner_base=world.allocate_prefix64(clouds[2].number),
            zones=list(config.covert_zones), seed=2)
        scope = Telescope(world.network)

        population = ScannerPopulation(world.network, scheduler)
        population.add_external("GT", "ntp", overt.scanner_addresses)
        population.add_external("covert", "ntp", covert.scanner_addresses)
        # One eyeball AS per leak strategy: distinct ASes live in
        # distinct /32 blocks, so source /48 clustering keeps the
        # ground truth separable by construction.
        eyeballs = sorted(
            (s for s in world.asdb.systems
             if s.category == "Cable/DSL/ISP"), key=lambda s: s.number)
        if len(eyeballs) < 5:
            raise ValueError(
                f"world has {len(eyeballs)} eyeball ASes; the leak "
                "population needs 5 (raise the world scale)")
        sources = {}
        for strategy, system in zip(
                ("hitlist", "tga", "rdns", "residential",
                 "amplification"), eyeballs):
            base = world.allocate_prefix64(system.number)
            sources[strategy] = [base + offset for offset in range(3)]
        leak_scenario(world.network, scheduler, world.rdns,
                      scope.prefix48, sources=sources,
                      config=config.scenario, start=10 * MINUTE,
                      population=population)

        for _ in range(config.sweep_days):
            scope.sweep(campaign.pool)
            scheduler.run_until(world.clock.now() + DAY)
        scheduler.run_until(world.clock.now() + config.settle_days * DAY)

        detector = ActorDetector(
            scope, world.asdb, rdns=world.rdns,
            operator_of_server=lambda a: campaign.pool.server(a).operator)
        verdicts = detector.report()

        pool = _context_pool(ctx, config.workers)
        attribution, timing = attribute_events(
            scope.events, truth=population.ground_truth(),
            rdns=world.rdns, pool=pool)

        windows = None
        if config.window_days is not None:
            reader = WindowedAttributionReader(
                scope.events, truth=population.ground_truth(),
                rdns=world.rdns, pool=pool)
            windows = reader.series(
                since=0.0, window=config.window_days * DAY,
                step=(config.step_days or config.window_days) * DAY)

    tables = attribution.tables()
    tables.update({
        "telescope": {
            "baits": len(scope.baits),
            "events": len(scope.events),
            "matched": len(scope.matched_events()),
            "match_rate": scope.match_rate(),
        },
        "population": population.rows(),
        "detector": [
            {"actor": verdict.observation.cluster,
             "verdict": verdict.kind}
            for verdict in verdicts
        ],
    })
    if windows is not None:
        tables["attribution_windows"] = windows
    if timing is not None:
        tables["parallel_attribution"] = timing
    report = RunReport.build("ecosystem", asdict(config), registry, tables)
    return EcosystemResult(telescope=scope, population=population,
                           attribution=attribution, verdicts=verdicts,
                           report=report)


#: The amplification study's address plan: servers in consecutive
#: subnets of a documentation /48, the scanner outside them.
_AMPLIFICATION_PREFIX48 = 0x2001_0DB8_00AA << 80
_AMPLIFICATION_SCANNER = _AMPLIFICATION_PREFIX48 + (0xFFFF << 64) + 0x5CA7


def amplification(config: Optional[AmplificationConfig] = None, *,
                  ctx: Optional[ExecutionContext] = None
                  ) -> AmplificationResult:
    """Run the monlist amplification study (the Fig 2/3-style tables).

    Deploys ``config.servers`` profiled pool members as picklable
    :class:`~repro.ntp.service.NtpControlService` hosts on a lean
    loss-free network, scans them with the ``ntp`` probe module through
    the sharded engine (parallel when ``config.workers >= 1``), and
    folds the grabs into the monlist-exposure and amplification-factor
    reports.  The rendered table is byte-identical at any worker count.
    """
    from repro.analysis.amplification import (
        amplification_distribution,
        amplification_table,
        monlist_exposure,
    )
    from repro.net.simnet import Network
    from repro.ntp.service import control_service_for
    from repro.runtime.parallel import ParallelShardedScanEngine
    from repro.runtime.registry import ProbeRegistry
    from repro.runtime.sharding import ShardedScanEngine
    from repro.scan.engine import EngineConfig
    from repro.scan.modules.ntp import scan_ntp

    config = config or AmplificationConfig()
    with use_registry() as registry:
        network = Network()
        network.add_host(_AMPLIFICATION_SCANNER)
        addresses = [
            _AMPLIFICATION_PREFIX48 + ((0xA000 + index) << 64) + 1
            for index in range(config.servers)
        ]
        for address in addresses:
            host = network.add_host(address)
            host.bind_udp(123, control_service_for(
                config.seed, address, max_entries=config.max_entries))
        probes = ProbeRegistry()
        probes.register("ntp", scan_ntp, 123)
        engine_config = EngineConfig(drive_clock=False)
        pool = _context_pool(ctx, config.workers)
        if pool is not None:
            engine = ParallelShardedScanEngine(
                network, _AMPLIFICATION_SCANNER, engine_config,
                registry=probes, shards=config.shards, pool=pool,
                name="amplification")
        else:
            engine = ShardedScanEngine(
                network, _AMPLIFICATION_SCANNER, engine_config,
                registry=probes, shards=config.shards,
                name="amplification")
        results = engine.run(addresses, label="amplification")
        exposure = monlist_exposure("pool", results)
        distribution = amplification_distribution("pool", results)
        table = amplification_table(exposure, distribution)

    tables: dict = {
        "exposure": [
            {"group": row.group, "responsive": row.responsive,
             "exposed": row.exposed, "share": row.exposed_share}
            for row in exposure.rows
        ],
        "exposure_total": {
            "responsive": exposure.responsive,
            "exposed": exposure.exposed,
            "share": exposure.exposed_share,
        },
        "amplification": [
            {"bucket": bucket.label, "servers": bucket.count}
            for bucket in distribution.buckets
        ],
        "amplification_summary": {
            "samples": distribution.samples,
            "mean": distribution.mean,
            "max": distribution.maximum,
        },
        "rendered": table,
    }
    if pool is not None and getattr(engine, "last_run_timing", None):
        tables["parallel"] = engine.last_run_timing
    report = RunReport.build("amplification", asdict(config), registry,
                             tables)
    return AmplificationResult(results=results, exposure=exposure,
                               distribution=distribution, table=table,
                               report=report)


def analyze(config: AnalyzeConfig, *,
            ctx: Optional[ExecutionContext] = None) -> AnalyzeResult:
    """Re-run the analyses over saved scan results or a run store.

    ``config.workers`` (or a parallel ``ctx``) selects the worker pool
    exactly like :func:`study_tables`.
    """
    from repro.io import load_results

    if config.window is not None:
        return _analyze_windowed(config, ctx=ctx)
    with use_registry() as registry:
        if config.run_dir is not None:
            from repro.store import read_study

            reader = read_study(config.run_dir)
            ntp_scan = reader.scan("ntp")
            hitlist_scan = reader.scan("hitlist")
        else:
            ntp_scan = load_results(config.ntp_path)
            hitlist_scan = load_results(config.hitlist_path)
        registry.counter("analyze_targets_total", source="ntp").inc(
            ntp_scan.targets_seen)
        registry.counter("analyze_targets_total", source="hitlist").inc(
            hitlist_scan.targets_seen)
        # Inside the registry scope so the analysis_* series land in
        # this run's snapshot.  No AS database offline, so the key-reuse
        # sweep is skipped (the bundle's keyreuse dict stays empty).
        pool = _context_pool(ctx, config.workers)
        bundle = run_analysis(ntp_scan, hitlist_scan, pool=pool)

    table3 = bundle.table3
    ntp_gap, hitlist_gap = bundle.security_gap()
    tables = {
        "device_types": [
            {"group": group.representative, "ntp_certs": group.count,
             "hitlist_certs":
                 table3.http_group_count("hitlist", group.representative)}
            for group in table3.http_ntp[:8]
        ],
        "security": {
            "ntp": {"secure_share": ntp_gap.secure_share,
                    "total": ntp_gap.total},
            "hitlist": {"secure_share": hitlist_gap.secure_share,
                        "total": hitlist_gap.total},
        },
    }
    if pool is not None:
        tables["parallel_analysis"] = bundle.timing
    report = RunReport.build("analyze", asdict(config), registry, tables)
    return AnalyzeResult(ntp_scan=ntp_scan, hitlist_scan=hitlist_scan,
                         report=report)


def _analyze_windowed(config: AnalyzeConfig, *,
                      ctx: Optional[ExecutionContext]) -> AnalyzeResult:
    """``analyze --window``: rolling service tables over a run store.

    The scan fields of the result are empty placeholders — a windowed
    analysis produces per-window tables, not one merged result set.
    """
    from repro.service.frontend import QueryService

    with use_registry() as registry:
        service = QueryService(config.run_dir,
                               window_days=config.window,
                               step_days=config.step, ctx=ctx)
        document = service.query(since=config.since)
    tables = {
        "window_query": {
            "horizon_days": document["horizon"],
            "since": document["since"],
            "window": document["window"],
            "step": document["step"],
            "windows": len(document["windows"]),
        },
        "window_series": document["windows"],
    }
    report = RunReport.build("analyze", asdict(config), registry, tables)
    return AnalyzeResult(ntp_scan=ScanResults(label="ntp"),
                         hitlist_scan=ScanResults(label="hitlist"),
                         report=report)


# -- the measurement service -------------------------------------------------

def run_campaign(config) -> CampaignResult:
    """Run a longitudinal service campaign to its configured horizon.

    Takes a :class:`repro.service.ServiceConfig`; ticks the
    :class:`~repro.service.daemon.CampaignDaemon` one simulated day at
    a time to ``campaign_days``, closing the store (final mark +
    checkpoint) on the way out.
    """
    from repro.service.daemon import CampaignDaemon

    with use_registry() as registry:
        daemon = CampaignDaemon.create(config)
        daemon.run()
    report = RunReport.build("daemon", asdict(config), registry,
                             daemon.tables())
    return CampaignResult(daemon=daemon, report=report)


def resume_campaign(run_dir: str) -> CampaignResult:
    """Recover a crashed campaign daemon and run it to completion.

    The deterministic-replay counterpart of :func:`resume` for service
    stores: history is regenerated in verify mode, checked against the
    surviving WAL record-for-record, and the campaign continues live
    from the crash point to its configured horizon.
    """
    from repro.service.daemon import CampaignDaemon

    with use_registry() as registry:
        daemon = CampaignDaemon.resume(run_dir)
        daemon.run()
    report = RunReport.build("daemon", asdict(daemon.config), registry,
                             daemon.tables())
    return CampaignResult(daemon=daemon, report=report)


def query_window(run_dir: str, *, since: float = 0.0,
                 window: Optional[float] = None,
                 step: Optional[float] = None,
                 cache_frames: Optional[int] = None,
                 ctx: Optional[ExecutionContext] = None) -> QueryResult:
    """One rolling windowed query against a run store (spans in days).

    ``window``/``step`` default to the store's recorded service
    defaults (7/7 for batch-study stores); results come from bounded
    checkpoint-anchored replay, never a full-WAL scan.
    """
    from repro.service.frontend import QueryService

    with use_registry() as registry:
        service = QueryService(run_dir, window_days=window,
                               step_days=step, cache_frames=cache_frames,
                               ctx=ctx)
        document = service.query(since=since)
    inputs = {"run_dir": str(run_dir), "since": since,
              "window": service.window_days, "step": service.step_days}
    report = RunReport.build("query", inputs, registry,
                             {"window_query": document["windows"],
                              "stats": service.stats()})
    return QueryResult(document=document, report=report)


def serve(run_dir: str, *, host: str = "127.0.0.1", port: int = 0,
          window: Optional[float] = None, step: Optional[float] = None,
          cache_frames: Optional[int] = None,
          ctx: Optional[ExecutionContext] = None, daemon=None):
    """Start a :class:`~repro.service.frontend.ServiceServer`.

    Returns the started server (bind address in ``server.address``);
    callers own the serve loop — ``server.serve_forever()`` for a
    foreground CLI, ``server.shutdown()`` (or a ``shutdown`` command
    on the wire) to stop.  ``daemon`` attaches a live
    :class:`CampaignDaemon` whose final checkpoint is flushed on
    graceful shutdown.
    """
    from repro.service.frontend import QueryService, ServiceServer

    service = QueryService(run_dir, window_days=window, step_days=step,
                           cache_frames=cache_frames, ctx=ctx)
    return ServiceServer(service, host=host, port=port,
                         daemon=daemon).start()


__all__ = [
    "AmplificationConfig",
    "AmplificationResult",
    "AnalyzeConfig",
    "AnalyzeResult",
    "CampaignResult",
    "CollectConfig",
    "CollectResult",
    "EcosystemConfig",
    "EcosystemResult",
    "ExecutionContext",
    "ExperimentConfig",
    "MetricsRegistry",
    "QueryResult",
    "RunReport",
    "StudyResult",
    "TelescopeConfig",
    "TelescopeResult",
    "WorldResult",
    "amplification",
    "analyze",
    "build_world",
    "collect",
    "ecosystem",
    "query_window",
    "resume",
    "resume_campaign",
    "run_campaign",
    "serve",
    "shutdown_default_contexts",
    "study",
    "study_tables",
    "telescope",
]
