"""Command-line interface: run the study's experiments from a shell.

Subcommands
-----------
``world``       build a world and print its composition
``collect``     run the collection campaign, print per-server volumes
``study``       run the full pipeline, print the headline tables
``telescope``   deploy third-party actors and run the Section-5 detector
``ecosystem``   run the mixed scanner population (NTP + hitlist + TGA +
                rDNS walk + residential sweep + monlist amplification
                recon) and print the strategy attribution with
                ground-truth confusion metrics
``amplification``  probe a seeded pool's control plane (mode-6 readvar
                + mode-7 monlist) and print the monlist-exposure and
                amplification-factor tables (Figs 2/3)
``analyze``     re-run the analyses over saved JSONL scan results or a
                run-store directory (``--run-dir``); with ``--window``
                (plus ``--since``/``--step``) emits rolling windowed
                tables from checkpoint-anchored replay
``store``       inspect/verify/compact a durable run store
                (``study --store`` writes one; ``study --resume``
                continues an interrupted one)
``daemon``      run (or ``--resume``) a longitudinal service campaign:
                collection + scanning ticking day by day with world
                evolution, checkpointing into a run store
``serve``       answer concurrent windowed queries over a run store
                through a JSONL TCP front end with a frame cache

All commands are deterministic in ``--seed`` and scale with ``--scale``.
Every subcommand is a thin wrapper over :mod:`repro.api` and accepts
``--format {table,json}``: table mode renders the human tables below,
json mode emits the run's :class:`~repro.obs.runreport.RunReport` as one
stable document (``{"command", "version", "config", "metrics",
"tables"}``) through the ``repro.io`` serializer.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro import api
from repro.core.campaign import CampaignConfig
from repro.core.pipeline import ExperimentConfig
from repro.io import document_to_json
from repro.net.clock import HOUR
from repro.report import fmt_int, fmt_pct, fmt_permille, render_table
from repro.world.population import WorldConfig


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.2,
                        help="world scale factor (default 0.2)")
    parser.add_argument("--seed", type=int, default=20240720,
                        help="world seed (default 20240720)")


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=("table", "json"),
                        default="table", dest="format",
                        help="output format: human tables or the "
                             "RunReport JSON document (default table)")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    # One flag, one meaning, every subcommand: the value feeds the same
    # resolve_workers() validation/cap path as the config fields.
    parser.add_argument("--workers", type=int, default=0,
                        help="persistent worker-pool size shared by scan "
                             "execution and analysis fan-out (default 0 = "
                             "sequential; N >= 1 uses N processes, capped "
                             "at CPU cores; results are byte-identical "
                             "either way)")


def _emit_json(report) -> int:
    print(document_to_json(report.as_document()))
    return 0


def _world_config(args: argparse.Namespace) -> WorldConfig:
    return WorldConfig(seed=args.seed, scale=args.scale)


def cmd_world(args: argparse.Namespace) -> int:
    result = api.build_world(_world_config(args))
    if args.format == "json":
        return _emit_json(result.report)
    tables = result.report.tables
    print(render_table(
        ["device type", "count"],
        [[row["type"], fmt_int(row["count"])]
         for row in tables["composition"]],
        title=f"World composition (scale {args.scale}, seed {args.seed})"))
    summary = tables["summary"]
    print(f"\npremises: {fmt_int(summary['premises'])}, "
          f"ASes: {summary['ases']}, "
          f"NTP clients: {fmt_int(summary['ntp_clients'])}, "
          f"scannable: {fmt_int(summary['scannable'])}, "
          f"DNS-named: {fmt_int(summary['dns_named'])}")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    result = api.collect(api.CollectConfig(
        world=_world_config(args),
        campaign=CampaignConfig(days=args.days, wire_fraction=args.wire),
    ))
    written = 0
    if args.out:
        from repro.io import save_dataset

        written = save_dataset(result.campaign.dataset, args.out)
    if args.format == "json":
        return _emit_json(result.report)
    totals = result.report.tables["totals"]
    print(render_table(
        ["location", "#addresses"],
        [[row["location"], fmt_int(row["addresses"])]
         for row in result.report.tables["per_server"]],
        title=f"Collected {fmt_int(totals['addresses'])} addresses over "
              f"{args.days} days ({fmt_int(totals['requests'])} "
              "requests)"))
    if args.out:
        print(f"\nwrote {fmt_int(written)} records to {args.out}")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    protocols = tuple(args.protocols.split(",")) if args.protocols else None
    try:
        if args.resume:
            study = api.resume(args.resume)
        else:
            config = ExperimentConfig(
                world=_world_config(args),
                campaign=CampaignConfig(wire_fraction=args.wire),
                include_rl=not args.no_rl,
                scan_shards=args.shards,
                parallel_workers=args.workers,
                protocols=protocols,
                store_dir=args.store,
                checkpoint_days=args.checkpoint_days,
            )
            study = api.study(config)
    except ValueError as exc:
        # Config validation and store recovery failures (WalError is a
        # ValueError) both surface here as actionable exit-2 messages.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = study.experiment

    if args.out_dir:
        import os

        from repro.io import save_dataset, save_results, save_run_report

        os.makedirs(args.out_dir, exist_ok=True)
        save_dataset(result.ntp_dataset,
                     os.path.join(args.out_dir, "ntp_dataset.jsonl"))
        save_results(result.ntp_scan,
                     os.path.join(args.out_dir, "ntp_scan.jsonl"))
        save_results(result.hitlist_scan,
                     os.path.join(args.out_dir, "hitlist_scan.jsonl"))
        save_run_report(study.report,
                        os.path.join(args.out_dir, "run_report.jsonl"))

    if args.format == "json":
        return _emit_json(study.report)

    if args.full_report:
        from repro.report.study import render_full_report

        print(render_full_report(result))
        return 0

    tables = study.report.tables
    print(render_table(
        ["dataset", "addresses", "/48s", "ASes", "med IPs//48",
         "med IPs/AS"],
        [[s["label"], fmt_int(s["addresses"]), fmt_int(s["net48s"]),
          fmt_int(s["ases"]), f"{s['median_ips_per_48']:.1f}",
          f"{s['median_ips_per_as']:.1f}"] for s in tables["table1"]],
        title="Table 1 - datasets"))

    print("\n" + render_table(
        ["protocol", "NTP #addrs", "hitlist #addrs"],
        [[row["protocol"], fmt_int(row["ntp_responsive"]),
          fmt_int(row["hitlist_responsive"])] for row in tables["table2"]],
        title="Table 2 - scans"))
    rates = tables["hit_rates"]
    print(f"\nhit rates: NTP {fmt_permille(rates['ntp'])} "
          f"vs hitlist {fmt_permille(rates['hitlist'])}")

    gap = tables["security"]
    print(f"secure share: NTP {fmt_pct(gap['ntp']['secure_share'])} of "
          f"{fmt_int(gap['ntp']['total'])} vs hitlist "
          f"{fmt_pct(gap['hitlist']['secure_share'])} "
          f"of {fmt_int(gap['hitlist']['total'])} (paper: 28.4 % vs 43.5 %)")

    device_gap = tables["device_gap"]
    print(f"device groups missed/underrepresented by the hitlist: "
          f"{device_gap['groups']} "
          f"({fmt_int(device_gap['devices'])} devices)")

    if args.out_dir:
        print(f"artefacts written to {args.out_dir}/")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Re-run the analyses over saved scan results or a run store."""
    try:
        config = api.AnalyzeConfig(ntp_path=args.ntp,
                                   hitlist_path=args.hitlist,
                                   run_dir=args.run_dir,
                                   workers=args.workers,
                                   since=args.since,
                                   window=args.window,
                                   step=args.step)
        result = api.analyze(config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        return _emit_json(result.report)
    tables = result.report.tables
    if args.window is not None:
        spec = tables["window_query"]
        rows = []
        for doc in tables["window_series"]:
            targets = doc["targets"]
            rates = doc["hit_rates"]
            side = next(iter(rates))
            rows.append([
                f"{doc['window']['start'] / 86400.0:.0f}",
                f"{doc['window']['end'] / 86400.0:.0f}",
                fmt_int(targets.get(side, 0)),
                fmt_int(targets.get("hitlist", 0)),
                fmt_permille(rates[side]),
                fmt_permille(rates["hitlist"]),
            ])
        print(render_table(
            ["start d", "end d", "NTP targets", "hitlist targets",
             "NTP hits", "hitlist hits"],
            rows,
            title=f"Rolling windows ({spec['windows']} x "
                  f"{spec['window']:.0f} d, step {spec['step']:.0f} d, "
                  f"horizon {spec['horizon_days']:.0f} d)"))
        return 0
    print(render_table(
        ["HTML title group", "NTP #certs", "hitlist #certs"],
        [[row["group"][:44], fmt_int(row["ntp_certs"]),
          fmt_int(row["hitlist_certs"])] for row in tables["device_types"]],
        title="Device types (from saved results)"))

    gap = tables["security"]
    print(f"\nsecure share: NTP {fmt_pct(gap['ntp']['secure_share'])} of "
          f"{fmt_int(gap['ntp']['total'])} vs hitlist "
          f"{fmt_pct(gap['hitlist']['secure_share'])} of "
          f"{fmt_int(gap['hitlist']['total'])}")
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Operate on a durable run store: inspect, verify, compact."""
    from repro.store import RunStore

    try:
        store = RunStore.open(args.run_dir)
        if args.store_command == "inspect":
            document = store.inspect()
        elif args.store_command == "verify":
            document = store.verify()
        else:
            document = store.compact()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(document_to_json(document))
    elif args.store_command == "inspect":
        print(f"run store: {document['run_dir']}")
        print(f"segments: {document['segments']} "
              f"({fmt_int(document['wal_bytes'])} bytes)")
        print(f"checkpoints: {document['checkpoints']} "
              f"(latest at seq {document['latest_checkpoint_seq']})")
        print(f"compacted through: seq {document['compacted_through']}")
        print(f"cooldown TTL: {document['cooldown_ttl']:.0f} s, "
              f"segment max {fmt_int(document['segment_max_records'])} "
              f"records, fsync every {document['fsync_every']}")
    elif args.store_command == "verify":
        status = "OK" if document["ok"] else "CORRUPT"
        print(f"{status}: {fmt_int(document['records'])} records "
              f"(last seq {document['last_seq']}), "
              f"{document['checkpoints']} checkpoints, "
              f"{document['cooldown_violations']} cooldown violations")
        for kind, count in sorted(document["records_by_kind"].items()):
            print(f"  {kind}: {fmt_int(count)}")
        for problem in document["problems"]:
            print(f"  problem: {problem}")
    else:
        print(f"compacted {document['segments_deleted']} segments "
              f"({fmt_int(document['records_dropped'])} records) "
              f"through seq {document['compacted_through']}")
    if args.store_command == "verify" and not document["ok"]:
        return 1
    return 0


def cmd_daemon(args: argparse.Namespace) -> int:
    """Run (or resume) a longitudinal service campaign."""
    from repro.service import ServiceConfig

    try:
        if args.resume:
            result = api.resume_campaign(args.resume)
        else:
            result = api.run_campaign(ServiceConfig(
                world=_world_config(args),
                store_dir=args.store,
                campaign_days=args.days,
                checkpoint_days=args.checkpoint_days,
                hitlist_days=args.hitlist_days,
            ))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        return _emit_json(result.report)
    tables = result.report.tables
    campaign = tables["campaign"]
    drift = tables["drift"]
    pool = tables["pool"]
    print(f"campaign: {campaign['days_run']} days, "
          f"{fmt_int(campaign['addresses'])} addresses, "
          f"{fmt_int(campaign['requests'])} requests")
    for label, count in sorted(campaign["targets"].items()):
        print(f"  targets[{label}]: {fmt_int(count)}")
    print(f"drift: +{drift['devices_spawned']} / "
          f"-{drift['devices_retired']} devices, "
          f"+{drift['pool_joined']} / -{drift['pool_left']} pool members, "
          f"{drift['hitlist_sweeps']} hitlist sweeps")
    print(f"pool: {fmt_int(pool['background_members'])} background members, "
          f"{pool['capture_servers']} capture servers")
    print(f"store: {tables['store']['run_dir']} "
          f"(last seq {fmt_int(tables['store']['last_seq'])})")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve windowed queries over a run store until interrupted."""
    try:
        server = api.serve(args.run_dir, host=args.host, port=args.port,
                           window=args.window, step=args.step,
                           cache_frames=args.cache_frames)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    host, port = server.address
    print(f"serving {args.run_dir} on {host}:{port} "
          "(JSONL queries; send {\"cmd\": \"shutdown\"} to stop)",
          file=sys.stderr)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
    return 0


def cmd_telescope(args: argparse.Namespace) -> int:
    result = api.telescope(api.TelescopeConfig(
        world=_world_config(args), sweep_days=args.days))
    if args.format == "json":
        return _emit_json(result.report)
    rows = []
    for verdict in result.verdicts:
        o = verdict.observation
        rows.append([o.cluster[:32], verdict.kind,
                     len(o.triggering_servers), len(o.ports),
                     f"{o.median_delay / HOUR:.1f} h",
                     fmt_pct(o.sensitive_share, 0)])
    summary = result.report.tables["telescope"]
    print(render_table(
        ["actor", "verdict", "servers", "ports", "median delay",
         "sensitive ports"],
        rows,
        title=f"Actors detected ({summary['baits']} baits, "
              f"match rate {fmt_pct(summary['match_rate'])})"))
    return 0


def cmd_ecosystem(args: argparse.Namespace) -> int:
    """Run the mixed scanner population and print the attribution."""
    try:
        result = api.ecosystem(api.EcosystemConfig(
            world=_world_config(args), sweep_days=args.days,
            workers=args.workers, window_days=args.window_days,
            step_days=args.step_days))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        return _emit_json(result.report)
    tables = result.report.tables
    rows = []
    for row in tables["attribution"]:
        rows.append([
            row["cluster"][:28], row["strategy"],
            row["truth"] or "-", fmt_int(row["events"]),
            fmt_pct(row["bait_hit_ratio"], 0),
            fmt_int(row["dst64s"]),
            f"{row['revisit_ratio']:.1f}",
            fmt_pct(row["ptr_share"], 0),
        ])
    summary = tables["telescope"]
    print(render_table(
        ["cluster", "strategy", "truth", "events", "bait hits",
         "/64s", "revisit", "PTR"],
        rows,
        title=f"Strategy attribution ({summary['baits']} baits, "
              f"{fmt_int(summary['events'])} events)"))

    confusion = tables["confusion"]
    predicted_labels = sorted(
        {label for row in confusion.values() for label in row})
    print("\n" + render_table(
        ["truth \\ predicted"] + predicted_labels,
        [[truth] + [fmt_int(row.get(label, 0))
                    for label in predicted_labels]
         for truth, row in confusion.items()],
        title="Confusion matrix (ground truth vs attribution)"))

    accuracy = tables["accuracy"]
    print(f"\ndiagonal accuracy: {fmt_pct(accuracy['diagonal'])} over "
          f"{accuracy['labeled']} labeled of {accuracy['clusters']} "
          "clusters")
    for strategy, metric in tables["strategy_metrics"].items():
        print(f"  {strategy}: precision {fmt_pct(metric['precision'])}, "
              f"recall {fmt_pct(metric['recall'])}, "
              f"support {fmt_int(metric['support'])}")
    if "attribution_windows" in tables:
        print("\n" + render_table(
            ["start d", "end d", "events", "clusters", "diagonal"],
            [[f"{doc['window']['start'] / 86400.0:.0f}",
              f"{doc['window']['end'] / 86400.0:.0f}",
              fmt_int(doc["events"]), fmt_int(doc["clusters"]),
              fmt_pct(doc["accuracy"]["diagonal"])]
             for doc in tables["attribution_windows"]],
            title="Rolling attribution windows"))
    return 0


def cmd_amplification(args: argparse.Namespace) -> int:
    """Probe the seeded pool's control plane, print Figs 2/3 tables."""
    try:
        result = api.amplification(api.AmplificationConfig(
            servers=args.servers, seed=args.seed,
            max_entries=args.max_entries, workers=args.workers))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        return _emit_json(result.report)
    print(result.table)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Time To Scan: Digging into "
                    "NTP-based IPv6 Scanning' (IMC 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    world = sub.add_parser("world", help="print world composition")
    _add_common(world)
    _add_format(world)
    world.set_defaults(func=cmd_world)

    collect = sub.add_parser("collect", help="run the collection campaign")
    _add_common(collect)
    _add_format(collect)
    collect.add_argument("--days", type=int, default=7)
    collect.add_argument("--wire", type=float, default=0.02,
                         help="fraction of devices on the full wire path")
    collect.add_argument("--out", help="save the dataset as JSONL")
    collect.set_defaults(func=cmd_collect)

    study = sub.add_parser("study", help="run the full study pipeline")
    _add_common(study)
    _add_format(study)
    study.add_argument("--wire", type=float, default=0.02)
    study.add_argument("--no-rl", action="store_true",
                       help="skip the R&L-style pre-campaign")
    study.add_argument("--shards", type=int, default=1,
                       help="fan scan engines out over N shards (default 1)")
    _add_workers(study)
    study.add_argument("--protocols",
                       help="comma-separated probe profile, e.g. ssh,coap "
                            "(default: all eight paper protocols)")
    study.add_argument("--out-dir",
                       help="save dataset + scan results + run report "
                            "as JSONL")
    study.add_argument("--full-report", action="store_true",
                       help="print every paper table/figure")
    study.add_argument("--store",
                       help="stream the run into a durable run-store "
                            "directory (resumable after a crash)")
    study.add_argument("--checkpoint-days", type=int, default=7,
                       dest="checkpoint_days",
                       help="collection days between store checkpoints "
                            "(default 7)")
    study.add_argument("--resume", metavar="RUN_DIR",
                       help="recover an interrupted store-backed study "
                            "from its run directory and continue it "
                            "(other study flags are ignored)")
    study.set_defaults(func=cmd_study)

    analyze = sub.add_parser(
        "analyze", help="re-run analyses over saved scan results")
    _add_format(analyze)
    analyze.add_argument("--ntp",
                         help="JSONL file from `study --out-dir`")
    analyze.add_argument("--hitlist",
                         help="JSONL file from `study --out-dir`")
    analyze.add_argument("--run-dir", dest="run_dir",
                         help="analyze a run-store directory (from "
                              "`study --store`) instead of saved files")
    _add_workers(analyze)
    analyze.add_argument("--since", type=float, default=None,
                         help="windowed mode: first window start, in "
                              "simulated days (default 0)")
    analyze.add_argument("--window", type=float, default=None,
                         help="windowed mode: window span in simulated "
                              "days; switches --run-dir analysis to "
                              "rolling checkpoint-anchored tables")
    analyze.add_argument("--step", type=float, default=None,
                         help="windowed mode: stride between windows in "
                              "days (default: the window span)")
    analyze.set_defaults(func=cmd_analyze)

    store = sub.add_parser(
        "store", help="inspect, verify, or compact a run store")
    store_sub = store.add_subparsers(dest="store_command", required=True)
    for name, description in (
            ("inspect", "summarize a run store's layout and positions"),
            ("verify", "check CRCs, chain, and the cooldown invariant"),
            ("compact", "delete whole segments covered by the latest "
                        "checkpoint")):
        command = store_sub.add_parser(name, help=description)
        command.add_argument("run_dir", help="run-store directory")
        _add_format(command)
        command.set_defaults(func=cmd_store)

    daemon = sub.add_parser(
        "daemon", help="run a longitudinal service campaign")
    _add_common(daemon)
    _add_format(daemon)
    daemon.add_argument("--store",
                        help="run-store directory the daemon appends to "
                             "(required unless --resume)")
    daemon.add_argument("--days", type=int, default=21,
                        help="simulated campaign days (default 21)")
    daemon.add_argument("--checkpoint-days", type=int, default=7,
                        dest="checkpoint_days",
                        help="days between checkpoints (default 7)")
    daemon.add_argument("--hitlist-days", type=int, default=7,
                        dest="hitlist_days",
                        help="days between hitlist sweeps; 0 disables "
                             "(default 7)")
    daemon.add_argument("--resume", metavar="RUN_DIR",
                        help="recover a crashed campaign from its run "
                             "directory (other flags are ignored)")
    daemon.set_defaults(func=cmd_daemon)

    serve = sub.add_parser(
        "serve", help="serve windowed queries over a run store")
    serve.add_argument("run_dir", help="run-store directory to serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0,
                       help="TCP port (default 0 = ephemeral, printed "
                            "on stderr)")
    serve.add_argument("--window", type=float, default=None,
                       help="default window span in days (default: the "
                            "store's recorded service setting)")
    serve.add_argument("--step", type=float, default=None,
                       help="default window stride in days")
    serve.add_argument("--cache-frames", type=int, default=None,
                       dest="cache_frames",
                       help="LRU capacity of the materialized-frame "
                            "cache (default: the store's setting)")
    serve.set_defaults(func=cmd_serve)

    telescope = sub.add_parser("telescope",
                               help="detect NTP-sourcing scanners")
    _add_common(telescope)
    _add_format(telescope)
    telescope.add_argument("--days", type=int, default=6,
                           help="telescope sweep days")
    telescope.set_defaults(func=cmd_telescope)

    ecosystem = sub.add_parser(
        "ecosystem",
        help="run the mixed scanner population and attribute strategies")
    _add_common(ecosystem)
    _add_format(ecosystem)
    _add_workers(ecosystem)
    ecosystem.add_argument("--days", type=int, default=4,
                           help="telescope sweep days (default 4)")
    ecosystem.add_argument("--window-days", type=float, default=None,
                           dest="window_days",
                           help="also emit rolling attribution windows "
                                "of this many simulated days")
    ecosystem.add_argument("--step-days", type=float, default=None,
                           dest="step_days",
                           help="stride between attribution windows "
                                "(default: the window span)")
    ecosystem.set_defaults(func=cmd_ecosystem)

    amplification = sub.add_parser(
        "amplification",
        help="probe pool control planes and print the monlist "
             "exposure / amplification tables")
    _add_format(amplification)
    _add_workers(amplification)
    amplification.add_argument("--servers", type=int, default=96,
                               help="pool servers to probe (default 96)")
    amplification.add_argument("--seed", type=int, default=20240720,
                               help="profile seed (default 20240720)")
    amplification.add_argument("--max-entries", type=int, default=48,
                               dest="max_entries",
                               help="largest pre-seeded recent-client "
                                    "table (default 48)")
    amplification.set_defaults(func=cmd_amplification)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
