"""Command-line interface: run the study's experiments from a shell.

Subcommands
-----------
``world``       build a world and print its composition
``collect``     run the collection campaign, print per-server volumes
``study``       run the full pipeline, print the headline tables
``telescope``   deploy third-party actors and run the Section-5 detector
``analyze``     re-run the analyses over saved JSONL scan results

All commands are deterministic in ``--seed`` and scale with ``--scale``.
"""

from __future__ import annotations

import argparse
import sys
from collections import Counter
from typing import Optional, Sequence

from repro.analysis import devicetypes, security
from repro.core.actors import NtpSourcingActor, covert_profile, research_profile
from repro.core.campaign import CampaignConfig, CollectionCampaign
from repro.core.detection import ActorDetector
from repro.core.pipeline import ExperimentConfig, run_experiment
from repro.core.telescope import Telescope
from repro.net.clock import DAY, HOUR, EventScheduler
from repro.report import fmt_int, fmt_pct, fmt_permille, render_table
from repro.scan.result import PROTOCOLS
from repro.world.population import WorldConfig, build_world


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.2,
                        help="world scale factor (default 0.2)")
    parser.add_argument("--seed", type=int, default=20240720,
                        help="world seed (default 20240720)")


def cmd_world(args: argparse.Namespace) -> int:
    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    types = Counter(device.type_name for device in world.devices)
    print(render_table(
        ["device type", "count"],
        [[name, fmt_int(count)] for name, count in types.most_common()],
        title=f"World composition (scale {args.scale}, seed {args.seed})"))
    print(f"\npremises: {fmt_int(len(world.premises))}, "
          f"ASes: {len(world.asdb.systems)}, "
          f"NTP clients: {fmt_int(len(world.ntp_clients()))}, "
          f"scannable: {fmt_int(len(world.scannable()))}, "
          f"DNS-named: {fmt_int(len(world.dns_named()))}")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    campaign = CollectionCampaign(
        world, CampaignConfig(days=args.days, wire_fraction=args.wire))
    report = campaign.run()
    rows = sorted(report.dataset.per_server_counts().items(),
                  key=lambda item: -item[1])
    print(render_table(
        ["location", "#addresses"],
        [[loc, fmt_int(count)] for loc, count in rows],
        title=f"Collected {fmt_int(len(report.dataset))} addresses over "
              f"{args.days} days ({fmt_int(report.dataset.total_requests)} "
              "requests)"))
    if args.out:
        from repro.io import save_dataset

        records = save_dataset(report.dataset, args.out)
        print(f"\nwrote {fmt_int(records)} records to {args.out}")
    return 0


def cmd_study(args: argparse.Namespace) -> int:
    protocols = tuple(args.protocols.split(",")) if args.protocols else None
    if protocols:
        unknown = [name for name in protocols if name not in PROTOCOLS]
        if unknown:
            print(f"error: unknown protocol(s) {', '.join(sorted(unknown))}; "
                  f"choose from {', '.join(PROTOCOLS)}", file=sys.stderr)
            return 2
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    result = run_experiment(ExperimentConfig(
        world=WorldConfig(seed=args.seed, scale=args.scale),
        campaign=CampaignConfig(wire_fraction=args.wire),
        include_rl=not args.no_rl,
        scan_shards=args.shards,
        protocols=protocols,
    ))

    if args.full_report:
        from repro.report.study import render_full_report

        print(render_full_report(result))
        return 0

    table = result.table1()
    print(render_table(
        ["dataset", "addresses", "/48s", "ASes", "med IPs//48",
         "med IPs/AS"],
        [[s.label, fmt_int(s.address_count), fmt_int(s.net48_count),
          fmt_int(s.as_count), f"{s.median_ips_per_48:.1f}",
          f"{s.median_ips_per_as:.1f}"] for s in table.summaries],
        title="Table 1 - datasets"))

    rows = []
    for protocol in (protocols or PROTOCOLS):
        rows.append([
            protocol,
            fmt_int(len(result.ntp_scan.responsive_addresses(protocol))),
            fmt_int(len(result.hitlist_scan.responsive_addresses(protocol))),
        ])
    print("\n" + render_table(["protocol", "NTP #addrs", "hitlist #addrs"],
                              rows, title="Table 2 - scans"))
    print(f"\nhit rates: NTP {fmt_permille(result.ntp_scan.hit_rate())} "
          f"vs hitlist {fmt_permille(result.hitlist_scan.hit_rate())}")

    ntp, hitlist = security.security_gap(result.ntp_scan,
                                         result.hitlist_scan)
    print(f"secure share: NTP {fmt_pct(ntp.secure_share)} of "
          f"{fmt_int(ntp.total)} vs hitlist {fmt_pct(hitlist.secure_share)} "
          f"of {fmt_int(hitlist.total)} (paper: 28.4 % vs 43.5 %)")

    table3 = devicetypes.build_table3(result.ntp_scan, result.hitlist_scan)
    findings = devicetypes.new_or_underrepresented(table3)
    print(f"device groups missed/underrepresented by the hitlist: "
          f"{len(findings)} "
          f"({fmt_int(sum(n for n, _ in findings.values()))} devices)")

    if args.out_dir:
        import os

        from repro.io import save_dataset, save_results

        os.makedirs(args.out_dir, exist_ok=True)
        save_dataset(result.ntp_dataset,
                     os.path.join(args.out_dir, "ntp_dataset.jsonl"))
        save_results(result.ntp_scan,
                     os.path.join(args.out_dir, "ntp_scan.jsonl"))
        save_results(result.hitlist_scan,
                     os.path.join(args.out_dir, "hitlist_scan.jsonl"))
        print(f"artefacts written to {args.out_dir}/")
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    """Re-run the analyses over previously saved scan results."""
    from repro.io import load_results

    ntp_scan = load_results(args.ntp)
    hitlist_scan = load_results(args.hitlist)

    table3 = devicetypes.build_table3(ntp_scan, hitlist_scan)
    rows = []
    hit_by_group = {g.representative: g.count for g in table3.http_hitlist}
    for group in table3.http_ntp[:8]:
        rows.append([group.representative[:44], fmt_int(group.count),
                     fmt_int(hit_by_group.get(group.representative, 0))])
    print(render_table(
        ["HTML title group", "NTP #certs", "hitlist #certs"], rows,
        title="Device types (from saved results)"))

    ntp, hitlist = security.security_gap(ntp_scan, hitlist_scan)
    print(f"\nsecure share: NTP {fmt_pct(ntp.secure_share)} of "
          f"{fmt_int(ntp.total)} vs hitlist "
          f"{fmt_pct(hitlist.secure_share)} of {fmt_int(hitlist.total)}")
    return 0


def cmd_telescope(args: argparse.Namespace) -> int:
    world = build_world(WorldConfig(seed=args.seed, scale=args.scale))
    campaign = CollectionCampaign(world, CampaignConfig(days=1,
                                                        wire_fraction=0.0))
    scheduler = EventScheduler(world.clock)
    research_as = next(s for s in world.asdb.systems
                       if s.category == "Educational/Research")
    clouds = [s for s in world.asdb.systems
              if s.name.startswith("HyperCloud")]
    NtpSourcingActor(
        world, campaign.pool, scheduler, research_profile("GT"),
        server_base=world.allocate_prefix64(clouds[0].number),
        scanner_base=world.allocate_prefix64(research_as.number),
        zones=["us", "de", "jp"], seed=1)
    NtpSourcingActor(
        world, campaign.pool, scheduler, covert_profile("covert"),
        server_base=world.allocate_prefix64(clouds[1].number),
        scanner_base=world.allocate_prefix64(clouds[2].number),
        zones=["us", "nl"], seed=2)
    telescope = Telescope(world.network)
    for _ in range(args.days):
        telescope.sweep(campaign.pool)
        scheduler.run_until(world.clock.now() + DAY)
    scheduler.run_until(world.clock.now() + 4 * DAY)

    detector = ActorDetector(
        telescope, world.asdb,
        operator_of_server=lambda a: campaign.pool.server(a).operator)
    rows = []
    for verdict in detector.report():
        o = verdict.observation
        rows.append([o.cluster[:32], verdict.kind,
                     len(o.triggering_servers), len(o.ports),
                     f"{o.median_delay / HOUR:.1f} h",
                     fmt_pct(o.sensitive_share, 0)])
    print(render_table(
        ["actor", "verdict", "servers", "ports", "median delay",
         "sensitive ports"],
        rows,
        title=f"Actors detected ({len(telescope.baits)} baits, "
              f"match rate {fmt_pct(telescope.match_rate())})"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Time To Scan: Digging into "
                    "NTP-based IPv6 Scanning' (IMC 2025)")
    sub = parser.add_subparsers(dest="command", required=True)

    world = sub.add_parser("world", help="print world composition")
    _add_common(world)
    world.set_defaults(func=cmd_world)

    collect = sub.add_parser("collect", help="run the collection campaign")
    _add_common(collect)
    collect.add_argument("--days", type=int, default=7)
    collect.add_argument("--wire", type=float, default=0.02,
                         help="fraction of devices on the full wire path")
    collect.add_argument("--out", help="save the dataset as JSONL")
    collect.set_defaults(func=cmd_collect)

    study = sub.add_parser("study", help="run the full study pipeline")
    _add_common(study)
    study.add_argument("--wire", type=float, default=0.02)
    study.add_argument("--no-rl", action="store_true",
                       help="skip the R&L-style pre-campaign")
    study.add_argument("--shards", type=int, default=1,
                       help="fan scan engines out over N shards (default 1)")
    study.add_argument("--protocols",
                       help="comma-separated probe profile, e.g. ssh,coap "
                            "(default: all eight paper protocols)")
    study.add_argument("--out-dir",
                       help="save dataset + scan results as JSONL")
    study.add_argument("--full-report", action="store_true",
                       help="print every paper table/figure")
    study.set_defaults(func=cmd_study)

    analyze = sub.add_parser(
        "analyze", help="re-run analyses over saved scan results")
    analyze.add_argument("--ntp", required=True,
                         help="JSONL file from `study --out-dir`")
    analyze.add_argument("--hitlist", required=True,
                         help="JSONL file from `study --out-dir`")
    analyze.set_defaults(func=cmd_analyze)

    telescope = sub.add_parser("telescope",
                               help="detect NTP-sourcing scanners")
    _add_common(telescope)
    telescope.add_argument("--days", type=int, default=6,
                           help="telescope sweep days")
    telescope.set_defaults(func=cmd_telescope)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
