"""The paper's contribution: NTP-based sourcing, real-time scanning,
dataset comparison, and scanner detection."""

from repro.core.actors import (
    COVERT_PORTS,
    ActorProfile,
    NtpSourcingActor,
    covert_profile,
    research_ports,
    research_profile,
)
from repro.core.campaign import (
    CampaignConfig,
    CampaignReport,
    CollectionCampaign,
    rl_2022_config,
)
from repro.core.collector import AddressObservation, CaptureServer, CollectedDataset
from repro.core.comparison import (
    ComparisonTable,
    DatasetComparison,
    DatasetSummary,
    OverlapSummary,
)
from repro.core.detection import ActorDetector, ActorObservation, ActorVerdict
from repro.core.pipeline import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.realtime import RealTimeScanQueue, RealTimeStats
from repro.core.telescope import BaitRecord, InboundEvent, Telescope

__all__ = [
    "ActorDetector",
    "ActorObservation",
    "ActorProfile",
    "ActorVerdict",
    "AddressObservation",
    "BaitRecord",
    "COVERT_PORTS",
    "CampaignConfig",
    "CampaignReport",
    "CaptureServer",
    "CollectedDataset",
    "CollectionCampaign",
    "ComparisonTable",
    "DatasetComparison",
    "DatasetSummary",
    "ExperimentConfig",
    "ExperimentResult",
    "InboundEvent",
    "NtpSourcingActor",
    "OverlapSummary",
    "RealTimeScanQueue",
    "RealTimeStats",
    "Telescope",
    "covert_profile",
    "research_ports",
    "research_profile",
    "rl_2022_config",
    "run_experiment",
]
