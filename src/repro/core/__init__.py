"""The paper's contribution: NTP-based sourcing, real-time scanning,
dataset comparison, and scanner detection."""

from repro.core.actors import (
    COVERT_PORTS,
    ActorProfile,
    NtpSourcingActor,
    covert_profile,
    research_ports,
    research_profile,
)
from repro.core.attribution import (
    AttributionReport,
    ClusterAttribution,
    ClusterFeatures,
    FeatureAccumulator,
    attribute_events,
    classify_features,
    derive_features,
)
from repro.core.campaign import (
    CampaignConfig,
    CampaignReport,
    CollectionCampaign,
    rl_2022_config,
)
from repro.core.collector import AddressObservation, CaptureServer, CollectedDataset
from repro.core.comparison import (
    ComparisonTable,
    DatasetComparison,
    DatasetSummary,
    OverlapSummary,
)
from repro.core.detection import ActorDetector, ActorObservation, ActorVerdict
from repro.core.ecosystem import (
    HitlistSweepActor,
    RdnsWalkActor,
    ResidentialSweepActor,
    ScannerActor,
    ScannerPopulation,
    ScenarioConfig,
    TgaActor,
    leak_scenario,
)
from repro.core.pipeline import ExperimentConfig, ExperimentResult, run_experiment
from repro.core.realtime import RealTimeScanQueue, RealTimeStats
from repro.core.telescope import BaitRecord, InboundEvent, Telescope

__all__ = [
    "ActorDetector",
    "ActorObservation",
    "ActorProfile",
    "ActorVerdict",
    "AddressObservation",
    "AttributionReport",
    "BaitRecord",
    "COVERT_PORTS",
    "CampaignConfig",
    "CampaignReport",
    "CaptureServer",
    "ClusterAttribution",
    "ClusterFeatures",
    "CollectedDataset",
    "CollectionCampaign",
    "ComparisonTable",
    "DatasetComparison",
    "DatasetSummary",
    "ExperimentConfig",
    "ExperimentResult",
    "FeatureAccumulator",
    "HitlistSweepActor",
    "InboundEvent",
    "NtpSourcingActor",
    "OverlapSummary",
    "RdnsWalkActor",
    "RealTimeScanQueue",
    "RealTimeStats",
    "ResidentialSweepActor",
    "ScannerActor",
    "ScannerPopulation",
    "ScenarioConfig",
    "Telescope",
    "TgaActor",
    "attribute_events",
    "classify_features",
    "covert_profile",
    "derive_features",
    "leak_scenario",
    "research_ports",
    "research_profile",
    "rl_2022_config",
    "run_experiment",
]
