"""Third-party scanners that source targets from their own pool servers.

Section 5 of the paper identifies two such actors in the wild:

* an **overt research actor** ("GT"): 15 pool servers, scans begin less
  than an hour after the NTP response and last about ten minutes,
  covering 1011 ports — no attempt to hide, operated from identifiable
  research address space;
* a **covert actor**: pool servers and scan sources in *different*
  cloud providers, a small security-sensitive port set (HTTPS, RDP/VNC
  /X11 remote access, Elasticsearch, MongoDB), connection attempts
  spread over days with long gaps, and not every port probed on every
  address — consistent with detection avoidance.

Both are modelled as :class:`NtpSourcingActor` configurations.  The
actor runs capture NTP servers registered in the pool; every captured
client address is scheduled for a port scan according to its profile.
The telescope (same module family) observes the resulting SYNs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.net.clock import DAY, EventScheduler, HOUR, MINUTE
from repro.ntp.packet import NtpPacket
from repro.ntp.pool import NtpPool
from repro.ntp.server import NtpServer
from repro.world.population import World

#: The covert actor's observed port set (paper Section 5.2).
COVERT_PORTS: Tuple[int, ...] = (
    443, 8443, 3388, 3389, 5900, 5901, 6000, 6001, 9200, 27017,
)

#: The research actor's port count (we generate a deterministic list).
RESEARCH_PORT_COUNT = 1011


def research_ports() -> Tuple[int, ...]:
    """A deterministic 1011-port list including FTP, BGP, Postgres.

    The stride lands on some well-known ports already seeded into
    ``base`` (3306 = 1024 + 7*326, 5672, 9200); those collisions are
    skipped explicitly so the walk provably adds one *new* port per
    step and the count invariant holds without truncation.  The bound
    check can't trip at the current count (the walk tops out well below
    10 000) but pins the invariant that every port stays valid.
    """
    base = {21, 22, 23, 25, 53, 80, 110, 143, 179, 443, 465, 587, 993,
            995, 1883, 3306, 5432, 5672, 5683, 8080, 8443, 9200, 27017}
    port = 1024
    while len(base) < RESEARCH_PORT_COUNT:
        if port > 65535:
            raise RuntimeError(
                f"port stride exhausted the 16-bit range at "
                f"{len(base)} of {RESEARCH_PORT_COUNT} ports")
        if port not in base:
            base.add(port)
        port += 7
    return tuple(sorted(base))


@dataclass
class ActorProfile:
    """Behavioural parameters of one NTP-sourcing scanner."""

    name: str
    #: Pool servers the actor operates.
    server_count: int
    #: Ports probed (full coverage for research, sampled for covert).
    ports: Tuple[int, ...]
    #: Scan start delay after capturing an address (seconds, uniform).
    delay_min: float
    delay_max: float
    #: Duration over which one address's ports are spread.
    spread: float
    #: Probability that any given port is probed on a given address.
    port_coverage: float
    #: AS category the actor's *scanner* sources live in.
    scanner_segment: str  # "research" | "cloud"
    #: Whether servers and scanners share a provider (the covert actor
    #: splits them across two clouds).
    split_providers: bool = False
    #: PTR pattern published for scanner addresses (None = no rDNS,
    #: the covert actor's choice).  ``{index}`` interpolates.
    rdns_pattern: Optional[str] = None


def research_profile(name: str = "GT") -> ActorProfile:
    """The overt research actor's behaviour."""
    return ActorProfile(
        name=name,
        server_count=15,
        ports=research_ports(),
        delay_min=5 * MINUTE,
        delay_max=55 * MINUTE,
        spread=10 * MINUTE,
        port_coverage=1.0,
        scanner_segment="research",
        rdns_pattern="ipv6-research-scanner-{index}.gt.example.edu",
    )


def covert_profile(name: str = "covert") -> ActorProfile:
    """The covert actor's behaviour."""
    return ActorProfile(
        name=name,
        server_count=4,
        ports=COVERT_PORTS,
        delay_min=6 * HOUR,
        delay_max=4 * DAY,
        spread=3 * DAY,
        port_coverage=0.6,
        scanner_segment="cloud",
        split_providers=True,
    )


class NtpSourcingActor:
    """A scanner wired to its own capture servers in the pool."""

    def __init__(self, world: World, pool: NtpPool,
                 scheduler: EventScheduler, profile: ActorProfile, *,
                 server_base: int, scanner_base: int,
                 zones: Sequence[str], seed: int = 0) -> None:
        self.world = world
        self.pool = pool
        self.scheduler = scheduler
        self.profile = profile
        self.rng = random.Random(seed or (hash(profile.name) & 0xFFFF))
        self.servers: List[NtpServer] = []
        self.scanner_addresses: List[int] = []
        self.scans_launched = 0
        self.probes_sent = 0
        self._seen: set = set()
        self._deploy(server_base, scanner_base, zones)

    def _deploy(self, server_base: int, scanner_base: int,
                zones: Sequence[str]) -> None:
        for index in range(self.profile.server_count):
            address = server_base + (index << 64)
            server = NtpServer(self.world.network, address,
                               location=f"{self.profile.name}-{index}")
            server.add_capture_hook(self._on_capture)
            self.servers.append(server)
            zone = zones[index % len(zones)]
            self.pool.register(address, zone, netspeed=1000,
                               operator=self.profile.name)
        for index in range(4):
            address = scanner_base + (index << 64)
            self.world.network.add_host(address, reachable=True)
            self.scanner_addresses.append(address)
        if self.profile.rdns_pattern is not None:
            self.world.rdns.register_range(self.scanner_addresses,
                                           self.profile.rdns_pattern)

    # -- capture → scan -----------------------------------------------------

    def _on_capture(self, client: int, client_port: int,
                    request: NtpPacket, time: float) -> None:
        if client in self._seen:
            return
        self._seen.add(client)
        delay = self.rng.uniform(self.profile.delay_min,
                                 self.profile.delay_max)
        self.scheduler.call_at(time + delay, lambda: self._scan(client))

    def _scan(self, target: int) -> None:
        self.scans_launched += 1
        ports = [port for port in self.profile.ports
                 if self.rng.random() < self.profile.port_coverage]
        start = self.world.clock.now()
        for index, port in enumerate(ports):
            offset = (self.rng.uniform(0, self.profile.spread)
                      if self.profile.spread > 0 else 0.0)
            self.scheduler.call_at(start + offset,
                                   lambda p=port: self._probe(target, p))
            if index >= 64:
                # Cap per-address probes so huge port lists stay tractable;
                # the telescope only needs the port *profile*, not all 1011.
                break

    def _probe(self, target: int, port: int) -> None:
        source = self.rng.choice(self.scanner_addresses)
        self.probes_sent += 1
        stream = self.world.network.tcp_connect(source, target, port)
        if stream is not None:
            stream.close()
