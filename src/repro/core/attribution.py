"""Strategy attribution: classifying telescope clusters by behaviour.

The :class:`~repro.core.detection.ActorDetector` answers *who* (which
AS, overt or covert); this layer answers *how* — which address-discovery
strategy produced a cluster of inbound events.  Per-source-cluster
features are extracted from the raw :class:`~repro.core.telescope.
InboundEvent` stream:

* **bait-hit ratio** — share of events landing on revealed baits (only
  NTP-sourced scanners can find baits; scatter-only clusters cannot be
  NTP-sourced, however much they probe);
* **subnet locality** — destinations per destination /64 (TGAs pack
  candidates into seed /64s; residential sweeps touch many /64s once);
* **revisit ratio** — events per distinct (address, port) pair
  (hitlist replays revisit, generators do not);
* **IID structure** — share of low-IID destinations (broadband recon
  probes ``::1``-style gateway addresses);
* **PTR coverage** — share of destinations with reverse DNS (the rDNS
  walker probes only named hosts);
* **timing dispersion** and **port-set shape** — reported as evidence.

Feature state lives in :class:`FeatureAccumulator`, whose ``merge`` is
associative *and* commutative (counters plus a time multiset), so
extraction shards over the persistent worker pool with fixed chunk
boundaries and folds back byte-identically at any worker count — the
same contract the scan engines honour.  :func:`attribute_events` is the
entry point: events in, :class:`AttributionReport` out, with per-
strategy precision/recall and a confusion matrix against the
simulation's ground-truth labels.
"""

from __future__ import annotations

import statistics
import time as _time
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.detection import SENSITIVE_PORTS
from repro.core.telescope import InboundEvent
from repro.net.rdns import ReverseDns
from repro.obs.metrics import current_registry
from repro.runtime.pool import WorkerPool

#: Clusters are source /48s — one scanner deployment's address block.
CLUSTER_PREFIX_BITS = 48

#: Below this many events a cluster gets no confident label.
MIN_CLUSTER_EVENTS = 2

#: NTP attribution needs at least one bait hit AND a majority of the
#: cluster's traffic on baits; guard-band wander that stumbles onto a
#: bait stays non-NTP.
NTP_BAIT_RATIO = 0.5

#: PTR coverage that marks an rDNS-walking cluster.
RDNS_PTR_SHARE = 0.8

#: Residential sweep: many /64s, ~one destination each, low IIDs.
RESIDENTIAL_MIN_SUBNETS = 8
RESIDENTIAL_MAX_CONCENTRATION = 1.5
RESIDENTIAL_LOW_IID_SHARE = 0.9

#: IIDs below this bound count as "low" (gateway-style addresses).
LOW_IID_BOUND = 0x10000

#: TGA: several distinct destinations packed into each /64.
TGA_MIN_CONCENTRATION = 3.0

#: Hitlist replay: events per (address, port) pair above this.
HITLIST_MIN_REVISIT = 1.5

#: Amplification recon: near-pure UDP/123 traffic (monlist sweeps
#: probe nothing else; no TCP service scan concentrates on port 123).
AMPLIFICATION_NTP_SHARE = 0.9

#: The NTP port, the amplification fingerprint's anchor.
NTP_PORT = 123

#: Fixed extraction chunk size — independent of worker count, so chunk
#: boundaries (and therefore the merge tree's leaves) never vary.
ATTRIBUTION_CHUNK = 512

_IID_MASK = (1 << 64) - 1


def cluster_key(src: int) -> str:
    """The cluster label of a source address (its /48)."""
    return f"src {src >> (128 - CLUSTER_PREFIX_BITS):#x}/48"


# -- mergeable feature state --------------------------------------------------


@dataclass
class FeatureAccumulator:
    """Canonical mergeable per-cluster state.

    Every field is a sum or a multiset, so ``merge`` is associative and
    commutative and equality is order-insensitive — the properties the
    Hypothesis suite pins and the parallel extraction path relies on.
    """

    events: int = 0
    bait_hits: int = 0
    sources: Counter = field(default_factory=Counter)
    dsts: Counter = field(default_factory=Counter)
    dst64s: Counter = field(default_factory=Counter)
    pairs: Counter = field(default_factory=Counter)
    ports: Counter = field(default_factory=Counter)
    times: Counter = field(default_factory=Counter)

    def add(self, event: InboundEvent) -> None:
        self.events += 1
        if event.bait is not None:
            self.bait_hits += 1
        self.sources[event.src] += 1
        self.dsts[event.dst] += 1
        self.dst64s[event.dst >> 64] += 1
        self.pairs[(event.dst, event.dst_port)] += 1
        self.ports[event.dst_port] += 1
        self.times[event.time] += 1

    def merge(self, other: "FeatureAccumulator") -> "FeatureAccumulator":
        """A new accumulator combining both (pure; operands untouched)."""
        return FeatureAccumulator(
            events=self.events + other.events,
            bait_hits=self.bait_hits + other.bait_hits,
            sources=self.sources + other.sources,
            dsts=self.dsts + other.dsts,
            dst64s=self.dst64s + other.dst64s,
            pairs=self.pairs + other.pairs,
            ports=self.ports + other.ports,
            times=self.times + other.times,
        )


@dataclass(frozen=True)
class ClusterFeatures:
    """Derived, classification-ready view of one cluster."""

    event_count: int
    bait_hits: int
    bait_hit_ratio: float
    distinct_sources: int
    distinct_dsts: int
    distinct_dst64s: int
    dst64_concentration: float
    revisit_ratio: float
    low_iid_share: float
    ptr_share: float
    timing_dispersion: float
    port_count: int
    sensitive_share: float
    span: float
    #: Share of events aimed at UDP/123 (the amplification fingerprint).
    ntp_port_share: float = 0.0


def derive_features(accumulator: FeatureAccumulator, *,
                    rdns: Optional[ReverseDns] = None) -> ClusterFeatures:
    """Collapse an accumulator into the classifier's feature vector.

    ``rdns`` is consulted here (main process, post-merge), keeping the
    accumulator itself picklable and registry-free for pool shipping.
    """
    distinct_dsts = len(accumulator.dsts)
    distinct_dst64s = len(accumulator.dst64s)
    low_iids = sum(1 for dst in accumulator.dsts
                   if (dst & _IID_MASK) < LOW_IID_BOUND)
    named = 0
    if rdns is not None:
        named = sum(1 for dst in accumulator.dsts
                    if rdns.lookup(dst) is not None)
    expanded = sorted(accumulator.times.elements())
    deltas = [later - earlier
              for earlier, later in zip(expanded, expanded[1:])]
    dispersion = 0.0
    if len(deltas) >= 2:
        mean = statistics.fmean(deltas)
        if mean > 0:
            dispersion = statistics.pstdev(deltas) / mean
    distinct_ports = set(accumulator.ports)
    return ClusterFeatures(
        event_count=accumulator.events,
        bait_hits=accumulator.bait_hits,
        bait_hit_ratio=(accumulator.bait_hits / accumulator.events
                        if accumulator.events else 0.0),
        distinct_sources=len(accumulator.sources),
        distinct_dsts=distinct_dsts,
        distinct_dst64s=distinct_dst64s,
        dst64_concentration=(distinct_dsts / distinct_dst64s
                             if distinct_dst64s else 0.0),
        revisit_ratio=(accumulator.events / len(accumulator.pairs)
                       if accumulator.pairs else 0.0),
        low_iid_share=(low_iids / distinct_dsts if distinct_dsts else 0.0),
        ptr_share=(named / distinct_dsts if distinct_dsts else 0.0),
        timing_dispersion=dispersion,
        port_count=len(distinct_ports),
        sensitive_share=(len(distinct_ports & SENSITIVE_PORTS)
                         / len(distinct_ports) if distinct_ports else 0.0),
        span=(expanded[-1] - expanded[0]) if expanded else 0.0,
        ntp_port_share=(accumulator.ports[NTP_PORT] / accumulator.events
                        if accumulator.events else 0.0),
    )


# -- classification -----------------------------------------------------------

#: The label of clusters below the evidence floor.
INSUFFICIENT = "insufficient"

#: Every strategy the classifier can emit (scored strategies only;
#: ``insufficient``/``unknown`` are non-labels).
STRATEGIES = ("ntp", "amplification", "rdns", "residential", "tga",
              "hitlist")


def classify_features(features: ClusterFeatures
                      ) -> Tuple[str, Tuple[str, ...]]:
    """One cluster's strategy verdict plus the reasons behind it.

    Precedence is deliberate: the bait signal is the strongest (only
    NTP-sourced scanners can learn bait addresses) but demands a bait
    *majority*, so scatter-only clusters and guard-band wander can
    never be attributed to an NTP actor; a near-pure UDP/123 port
    profile marks amplification recon; PTR coverage beats geometry;
    geometry (locality, IID structure) beats revisit behaviour.
    """
    if features.event_count < MIN_CLUSTER_EVENTS:
        return INSUFFICIENT, (
            f"only {features.event_count} event(s): below the "
            f"{MIN_CLUSTER_EVENTS}-event evidence floor",)
    if (features.bait_hits >= 1
            and features.bait_hit_ratio >= NTP_BAIT_RATIO):
        return "ntp", (
            f"{features.bait_hit_ratio:.0%} of events land on revealed "
            "baits — the addresses only an NTP-sourced scanner can know",)
    if features.ntp_port_share >= AMPLIFICATION_NTP_SHARE:
        return "amplification", (
            f"{features.ntp_port_share:.0%} of events aim at UDP/123: "
            "a monlist amplification sweep",)
    if features.ptr_share >= RDNS_PTR_SHARE:
        return "rdns", (
            f"{features.ptr_share:.0%} of destinations carry PTR "
            "records: a reverse-DNS zone walk",)
    if (features.distinct_dst64s >= RESIDENTIAL_MIN_SUBNETS
            and features.dst64_concentration
            <= RESIDENTIAL_MAX_CONCENTRATION
            and features.low_iid_share >= RESIDENTIAL_LOW_IID_SHARE):
        return "residential", (
            f"{features.distinct_dst64s} /64s probed at ~1 low-IID "
            "address each: a broadband prefix sweep",)
    if features.dst64_concentration >= TGA_MIN_CONCENTRATION:
        return "tga", (
            f"{features.dst64_concentration:.1f} destinations per /64: "
            "candidates generated around seed subnets",)
    if features.revisit_ratio >= HITLIST_MIN_REVISIT:
        return "hitlist", (
            f"{features.revisit_ratio:.1f} probes per (address, port): "
            "a replayed target list",)
    return "unknown", ("no strategy signature matched",)


# -- extraction (sequential and pooled) --------------------------------------


def _accumulate_chunk(events: Sequence[InboundEvent]
                      ) -> Dict[str, FeatureAccumulator]:
    """Fold one event chunk into per-cluster accumulators (pure)."""
    accumulators: Dict[str, FeatureAccumulator] = {}
    for event in events:
        key = cluster_key(event.src)
        accumulator = accumulators.get(key)
        if accumulator is None:
            accumulator = accumulators[key] = FeatureAccumulator()
        accumulator.add(event)
    return accumulators


def cluster_accumulators(events: Sequence[InboundEvent], *,
                         pool: Optional[WorkerPool] = None,
                         chunk_size: int = ATTRIBUTION_CHUNK
                         ) -> Tuple[Dict[str, FeatureAccumulator],
                                    Optional[dict]]:
    """Per-cluster accumulators, optionally extracted on a worker pool.

    Chunk boundaries depend only on ``chunk_size`` (never on worker
    count) and partial results merge in chunk order, so the pooled path
    is byte-identical to the sequential fold.  Returns ``(clusters,
    timing)``; ``timing`` is wall-clock provenance and is only non-None
    when the pool actually engaged.
    """
    if chunk_size < 1:
        raise ValueError(f"chunk_size={chunk_size}: must be >= 1")
    events = list(events)
    chunks = [events[start:start + chunk_size]
              for start in range(0, len(events), chunk_size)]
    timing: Optional[dict] = None
    if pool is None or len(chunks) <= 1:
        parts = [_accumulate_chunk(chunk) for chunk in chunks]
    else:
        started = _time.perf_counter()
        parts = [outcome for _, outcome
                 in pool.map_in_order(_accumulate_chunk, chunks)]
        timing = {"workers": pool.workers, "chunks": len(chunks),
                  "events": len(events),
                  "elapsed_s": _time.perf_counter() - started}
    merged: Dict[str, FeatureAccumulator] = {}
    for part in parts:
        for key, accumulator in part.items():
            existing = merged.get(key)
            merged[key] = (accumulator if existing is None
                           else existing.merge(accumulator))
    return merged, timing


# -- the report ---------------------------------------------------------------


@dataclass(frozen=True)
class ClusterAttribution:
    """One cluster's verdict, evidence, and ground-truth label."""

    cluster: str
    strategy: str
    truth: Optional[str]
    features: ClusterFeatures
    reasons: Tuple[str, ...]


#: Confusion-matrix row label for clusters without ground truth.
UNLABELED = "(unlabeled)"


@dataclass
class AttributionReport:
    """Every cluster's attribution plus ground-truth scoring."""

    attributions: List[ClusterAttribution]

    def confusion(self) -> Dict[str, Dict[str, int]]:
        """truth → predicted → cluster count (unlabeled rows included)."""
        matrix: Dict[str, Dict[str, int]] = {}
        for attribution in self.attributions:
            truth = attribution.truth or UNLABELED
            row = matrix.setdefault(truth, {})
            row[attribution.strategy] = row.get(attribution.strategy, 0) + 1
        return {truth: dict(sorted(row.items()))
                for truth, row in sorted(matrix.items())}

    def strategy_metrics(self) -> Dict[str, Dict[str, float]]:
        """Per-strategy precision/recall/support over labeled clusters."""
        labeled = [a for a in self.attributions if a.truth is not None]
        metrics: Dict[str, Dict[str, float]] = {}
        for strategy in STRATEGIES:
            predicted = [a for a in labeled if a.strategy == strategy]
            actual = [a for a in labeled if a.truth == strategy]
            true_positives = sum(1 for a in predicted
                                 if a.truth == strategy)
            metrics[strategy] = {
                "precision": (true_positives / len(predicted)
                              if predicted else 0.0),
                "recall": (true_positives / len(actual)
                           if actual else 0.0),
                "support": len(actual),
            }
        return metrics

    def diagonal_accuracy(self) -> float:
        """Share of labeled clusters attributed to their true strategy."""
        labeled = [a for a in self.attributions if a.truth is not None]
        if not labeled:
            return 0.0
        return (sum(1 for a in labeled if a.strategy == a.truth)
                / len(labeled))

    def tables(self) -> dict:
        """The report's canonical table shapes (RunReport payload)."""
        return {
            "attribution": [
                {"cluster": a.cluster, "strategy": a.strategy,
                 "truth": a.truth, "events": a.features.event_count,
                 "bait_hit_ratio": a.features.bait_hit_ratio,
                 "dst64s": a.features.distinct_dst64s,
                 "dst64_concentration": a.features.dst64_concentration,
                 "revisit_ratio": a.features.revisit_ratio,
                 "low_iid_share": a.features.low_iid_share,
                 "ptr_share": a.features.ptr_share,
                 "timing_dispersion": a.features.timing_dispersion,
                 "ports": a.features.port_count,
                 "reasons": list(a.reasons)}
                for a in self.attributions
            ],
            "confusion": self.confusion(),
            "strategy_metrics": self.strategy_metrics(),
            "accuracy": {
                "diagonal": self.diagonal_accuracy(),
                "clusters": len(self.attributions),
                "labeled": sum(1 for a in self.attributions
                               if a.truth is not None),
            },
        }


def _cluster_truth(accumulator: FeatureAccumulator,
                   truth: Mapping[int, str]) -> Optional[str]:
    """Majority ground-truth strategy of a cluster's sources."""
    labels = Counter(truth[src] for src in accumulator.sources
                     if src in truth)
    if not labels:
        return None
    # Deterministic even on ties: highest count, then name order.
    return min(labels.items(), key=lambda item: (-item[1], item[0]))[0]


def attribute_events(events: Sequence[InboundEvent], *,
                     truth: Optional[Mapping[int, str]] = None,
                     rdns: Optional[ReverseDns] = None,
                     pool: Optional[WorkerPool] = None,
                     chunk_size: int = ATTRIBUTION_CHUNK
                     ) -> Tuple[AttributionReport, Optional[dict]]:
    """Attribute every source cluster of an event stream.

    Returns ``(report, timing)``; ``timing`` is the pooled extraction's
    wall-clock provenance (None when extraction ran inline) and is the
    only permitted difference between worker counts.
    """
    clusters, timing = cluster_accumulators(events, pool=pool,
                                            chunk_size=chunk_size)
    registry = current_registry()
    attributions = []
    for key in sorted(clusters):
        accumulator = clusters[key]
        features = derive_features(accumulator, rdns=rdns)
        strategy, reasons = classify_features(features)
        registry.counter("attribution_clusters_total",
                         strategy=strategy).inc()
        attributions.append(ClusterAttribution(
            cluster=key, strategy=strategy,
            truth=_cluster_truth(accumulator, truth or {}),
            features=features, reasons=reasons))
    return AttributionReport(attributions=attributions), timing
