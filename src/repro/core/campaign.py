"""The collection campaign: pool deployment + day-driven client traffic.

This reproduces Section 3's methodology end to end:

1. deploy capture servers into the pool zones of the 11 study countries
   (competing against the zones' existing servers, whose density is the
   placement criterion);
2. let the world's NTP clients synchronize for the collection window,
   capturing every client address that reaches one of our servers;
3. optionally feed each first-sighted address into the real-time scan
   queue.

Client traffic runs day-by-day: churn advances first, then every NTP
client re-resolves the pool a few times (as real ntpd does when its
server set ages out) and spreads its day's polls across the resolved
servers.  A configurable fraction of devices exercises the full wire
path — real mode-3/mode-4 packets through the simulated network — while
the rest uses the statistically identical fast path, keeping large
worlds tractable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.collector import CaptureServer, CollectedDataset
from repro.core.realtime import RealTimeScanQueue
from repro.obs.metrics import COUNT_BUCKETS, current_registry
from repro.ipv6 import address as addrmod
from repro.net.clock import DAY
from repro.ntp.client import NtpClient
from repro.ntp.pool import NtpPool
from repro.ntp.server import NtpServer
from repro.world.geo import DEPLOYMENT_COUNTRIES
from repro.world.ntpprofiles import profile_for
from repro.world.population import World


@dataclass
class CampaignConfig:
    """Parameters of one collection campaign."""

    label: str = "ntp"
    days: int = 28
    #: Countries receiving one capture server each.
    deployment: Tuple[str, ...] = DEPLOYMENT_COUNTRIES
    #: Our servers' operator-configured pool weight (the paper raises
    #: this until the request rate matches the scan budget).
    netspeed: int = 4000
    #: Background (non-capture) pool members' weight.
    background_netspeed: int = 1000
    #: Times per day a client re-resolves the pool DNS.
    resolutions_per_day: int = 4
    #: Fraction of devices whose every resolution does a real wire
    #: round trip (full codec + capture hook).
    wire_fraction: float = 0.02
    #: Run the pool's health monitoring once per collection day, so
    #: failed members drop out of rotation mid-campaign.
    monitor_daily: bool = False
    #: Fraction of background pool members that are dead or flaky
    #: (registered but unresponsive).  The real pool always carries
    #: some: the paper's telescope saw only ~86 % of queries answered.
    background_dead_rate: float = 0.12
    seed: int = 0xC0FFEE


@dataclass
class CampaignReport:
    """Outcome of a campaign run."""

    dataset: CollectedDataset
    days_run: int
    wire_queries: int
    fast_queries: int
    per_server_requests: Dict[str, int] = field(default_factory=dict)


class CollectionCampaign:
    """Owns the pool deployment and drives the collection window."""

    def __init__(self, world: World, config: Optional[CampaignConfig] = None,
                 scan_queue: Optional[RealTimeScanQueue] = None) -> None:
        self.world = world
        self.config = config or CampaignConfig()
        self.rng = random.Random(self.config.seed)
        self.dataset = CollectedDataset(label=self.config.label)
        if scan_queue is not None:
            scan_queue.attach(self.dataset)
        self.scan_queue = scan_queue
        self.pool = NtpPool(
            world.network, rng=random.Random(self.config.seed ^ 1),
            monitor_address=self._infrastructure_prefix(0xFFFF),
        )
        self.capture_servers: Dict[int, CaptureServer] = {}
        self._capture_locations: Dict[int, str] = {}
        self._background_servers: List[NtpServer] = []
        #: Every background member's pool address (dead ones included),
        #: in registration order — the leave-churn candidate set.
        self._background_addresses: List[int] = []
        #: Next free infrastructure-address index (advanced by _deploy,
        #: then by mid-campaign joins).
        self._infra_cursor = 0
        self._deploy()
        self.wire_queries = 0
        self.fast_queries = 0
        self._metrics = current_registry()
        self._m_days = self._metrics.counter("campaign_days_total",
                                             campaign=self.config.label)

    # -- deployment -------------------------------------------------------

    def _infrastructure_prefix(self, index: int) -> int:
        """Address space for NTP infrastructure (outside the world's ASes).

        Disambiguated per campaign label so that consecutive campaigns
        (e.g. the R&L 2022 profile followed by ours) never collide.
        """
        base = addrmod.parse("2001:500::")
        campaign_id = sum(self.config.label.encode()) & 0xFFFF
        return base + (campaign_id << 80) + (index << 64)

    def _deploy(self) -> None:
        """Register background zone members, then our capture servers.

        Following the paper's ethics (Appendix A.1.1) we never deploy
        into an *empty* zone: countries with zero competing servers are
        served by the global rotation and our server joins the zone
        only if it already has members.
        """
        index = 0
        for country in self.world.geo.countries:
            for _ in range(country.competing_servers):
                address = self._infrastructure_prefix(index)
                index += 1
                if self.rng.random() >= self.config.background_dead_rate:
                    server = self._background_server(
                        address, location=f"bg-{country.code}")
                    self._background_servers.append(server)
                # Dead members stay registered (the pool's DNS hands
                # them out until monitoring catches up) but answer
                # nothing — clients simply lose those polls.
                self.pool.register(address, country.code.lower(),
                                   netspeed=self.config.background_netspeed,
                                   operator="background")
                self._background_addresses.append(address)
        for code in self.config.deployment:
            country = self.world.geo.country(code)
            if country.competing_servers == 0:
                continue  # refuse to fill an empty zone
            address = self._infrastructure_prefix(index)
            index += 1
            capture = CaptureServer(self.world.network, address,
                                    location=country.name,
                                    dataset=self.dataset)
            self.capture_servers[address] = capture
            self._capture_locations[address] = country.name
            self.pool.register(address, code.lower(),
                               netspeed=self.config.netspeed,
                               operator="study")
        self._infra_cursor = index

    def _background_server(self, address: int, *,
                           location: str) -> NtpServer:
        """A background pool member with its seeded software profile.

        Profiles come from :func:`repro.world.ntpprofiles.profile_for`
        — a pure function of ``(campaign seed, address)`` on a private
        RNG stream, so version/monlist assignment never shifts the
        campaign's own draws (the dead-rate coin flips above) and stays
        stable across resume/replay.  Capture servers are *not*
        profiled: the study's own deployment always runs patched.
        """
        profile = profile_for(self.config.seed, address)
        return NtpServer(self.world.network, address,
                         location=location,
                         software_version=profile.software_version,
                         monlist_enabled=profile.monlist_enabled)

    # -- mid-campaign pool churn (the service daemon's lever) ----------------

    def add_background_server(self, country_code: str, *,
                              dead: bool = False) -> int:
        """A new background member joins its country zone mid-campaign.

        The real pool's membership is never static over a multi-week
        window: operators join, leave, and fail.  ``dead=True`` models a
        member that registers but answers nothing (same as the
        ``background_dead_rate`` share at deployment).  Returns the new
        member's address.
        """
        address = self._infrastructure_prefix(self._infra_cursor)
        self._infra_cursor += 1
        if not dead:
            self._background_servers.append(
                self._background_server(address,
                                        location=f"bg-{country_code}"))
        self.pool.register(address, country_code.lower(),
                           netspeed=self.config.background_netspeed,
                           operator="background")
        self._background_addresses.append(address)
        return address

    def remove_background_server(self, address: int) -> None:
        """De-advertise one background member (it leaves rotation)."""
        self.pool.deregister(address)
        self._background_addresses.remove(address)

    def remove_random_background(self,
                                 rng: random.Random) -> Optional[int]:
        """De-advertise a random background member; None if none left."""
        if not self._background_addresses:
            return None
        address = rng.choice(self._background_addresses)
        self.remove_background_server(address)
        return address

    def background_pool_size(self) -> int:
        """Background members still advertised (dead ones included)."""
        return len(self._background_addresses)

    # -- mid-campaign population drift ---------------------------------------

    def adopt_client(self, device) -> None:
        """Add a drifted-in NTP client to the frozen collection roster.

        :meth:`start` freezes the roster once; long-running campaigns
        grow it explicitly through this hook so the wire-path sample
        stays consistent (each new device draws its wire membership from
        the same campaign RNG stream as the founders).
        """
        self.start()
        self._clients.append(device)
        if self.rng.random() < self.config.wire_fraction:
            self._wire_devices.add(id(device))

    def retire_client(self, device) -> None:
        """Drop a retired device from the roster (idempotent)."""
        self.start()
        try:
            self._clients.remove(device)
        except ValueError:
            pass
        self._wire_devices.discard(id(device))

    def deregister_all(self) -> None:
        """De-advertise our servers (the wind-down grace period)."""
        for address in self.capture_servers:
            self.pool.deregister(address)

    # -- the collection window ----------------------------------------------

    def start(self) -> None:
        """Freeze the client roster and wire sample; idempotent."""
        if getattr(self, "_started", False):
            return
        self._started = True
        self._days_run = 0
        self._clients = self.world.ntp_clients()
        self._wire_devices = {
            id(device) for device in self._clients
            if self.rng.random() < self.config.wire_fraction
        }

    def advance_days(self, days: int) -> None:
        """Run ``days`` more collection days (interleavable with other
        activity, e.g. the hitlist scan during the final week)."""
        self.start()
        for _ in range(days):
            day_start = self.world.clock.now()
            if self._days_run > 0:
                self.world.churn.step_day()
            if self.config.monitor_daily:
                self.pool.run_monitor()
            before = {location: len(addresses) for location, addresses
                      in self.dataset.per_server.items()}
            self._run_day(day_start, self._clients, self._wire_devices)
            self.world.clock.advance_to(day_start + DAY)
            self._days_run += 1
            self._record_day_metrics(before)

    def _record_day_metrics(self, before: Dict[str, int]) -> None:
        """Per-server, per-simulated-day sourcing volume (Table 7's axis)."""
        self._m_days.inc()
        label = self.config.label
        day_total = 0
        for location, addresses in self.dataset.per_server.items():
            new_addresses = len(addresses) - before.get(location, 0)
            day_total += new_addresses
            self._metrics.counter("campaign_addresses_total",
                                  campaign=label, server=location,
                                  ).inc(new_addresses)
            self._metrics.histogram("campaign_server_day_addresses",
                                    buckets=COUNT_BUCKETS,
                                    campaign=label, server=location,
                                    ).observe(new_addresses)
        self._metrics.histogram("campaign_day_addresses",
                                buckets=COUNT_BUCKETS, campaign=label,
                                ).observe(day_total)

    # -- operator weight tuning (paper Section 3.1) --------------------------

    def autotune_netspeed(self, target_daily_requests: int, *,
                          max_days: int = 6, factor: float = 2.0,
                          ceiling: int = 1_000_000) -> List[Dict[str, int]]:
        """Raise our servers' netspeed until the request rate fits the
        scan budget.

        Mirrors the paper's ramp-up: "we monitor the number of requests
        and increase our servers' operator-configurable weight in the
        NTP Pool until reaching, at peak times, a request rate close to
        our maximum scanning rate."  Each tuning round costs one
        collection day (observed rates come from real traffic).
        Returns the per-round log of observed totals and weights.
        """
        if target_daily_requests <= 0:
            raise ValueError("target_daily_requests must be positive")
        log: List[Dict[str, int]] = []
        for _ in range(max_days):
            before = {address: server.stats.requests
                      for address, server in self.capture_servers.items()}
            self.advance_days(1)
            observed = sum(
                server.stats.requests - before[address]
                for address, server in self.capture_servers.items())
            entry = {
                "observed_requests": observed,
                "netspeed": self.pool.server(
                    next(iter(self.capture_servers))).netspeed,
            }
            log.append(entry)
            if observed >= target_daily_requests:
                break
            for address in self.capture_servers:
                current = self.pool.server(address).netspeed
                self.pool.set_netspeed(
                    address, min(ceiling, int(current * factor)))
        return log

    def report(self) -> CampaignReport:
        """Summarize everything collected so far."""
        return CampaignReport(
            dataset=self.dataset,
            days_run=getattr(self, "_days_run", 0),
            wire_queries=self.wire_queries,
            fast_queries=self.fast_queries,
            per_server_requests={
                server.location: server.stats.requests
                for server in self.capture_servers.values()
            },
        )

    def run(self) -> CampaignReport:
        """Run the configured number of days; returns the report."""
        self.start()
        self.advance_days(self.config.days)
        return self.report()

    def _run_day(self, day_start: float, clients, wire_devices) -> None:
        events = [(self.rng.random() * DAY, device) for device in clients]
        events.sort(key=lambda event: event[0])
        resolutions = self.config.resolutions_per_day
        for offset, device in events:
            self.world.clock.advance_to(max(day_start + offset,
                                            self.world.clock.now()))
            polls = max(1, round(DAY / device.ntp_interval))
            share = max(1, polls // resolutions)
            for _ in range(min(resolutions, polls)):
                server_address = self.pool.resolve(device.country.lower(),
                                                   self.rng)
                if server_address is None:
                    continue
                capture = self.capture_servers.get(server_address)
                if capture is None:
                    continue  # a background server absorbed these polls
                if id(device) in wire_devices:
                    client = NtpClient(self.world.network, device.address)
                    result = client.query(server_address)
                    self.wire_queries += 1
                    if result is not None and share > 1:
                        capture.record_direct(device.address,
                                              self.world.clock.now(),
                                              requests=share - 1)
                        self.fast_queries += share - 1
                else:
                    capture.record_direct(device.address,
                                          self.world.clock.now(),
                                          requests=share)
                    self.fast_queries += share


def rl_2022_config(days: int = 14, seed: int = 0x2022) -> CampaignConfig:
    """A Rye-&-Levin-style deployment profile.

    R&L ran 27 servers for seven months with a different (undisclosed)
    placement.  For the Table 1 overlap rows we run this profile on the
    same world *before* our campaign: more servers, default weights, a
    placement covering many zones.  The world churns on between the two
    campaigns, so the overlap is structural, not total.
    """
    return CampaignConfig(
        label="rl2022",
        days=days,
        deployment=(
            "US", "US", "US", "DE", "DE", "GB", "FR", "NL", "SE", "CH",
            "JP", "JP", "AU", "BR", "IN", "ES", "IT", "PL", "CA", "MX",
            "KR", "ZA", "TH", "AR", "ID", "VN", "EG",
        ),
        netspeed=1000,
        wire_fraction=0.0,
        seed=seed,
    )
