"""NTP-based address collection (the paper's Section 3 pipeline).

A :class:`CaptureServer` is a pool-member NTP server whose capture hook
feeds a :class:`CollectedDataset` — the growing set of client IPv6
addresses with observation metadata.  The dataset is the object every
downstream analysis consumes: Table 1's counts, Figure 1's structure
profile, Appendix B's MAC analysis, and the real-time scan queue.

First sightings are published as typed
:class:`~repro.runtime.bus.AddressSighted` events on the dataset's
:class:`~repro.runtime.bus.EventBus` — the trigger of the paper's
real-time scans.  The seed-era callback API
(:meth:`CollectedDataset.add_new_address_hook`) remains as a thin
adapter over the bus.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Set

from repro.net.simnet import Network
from repro.ntp.packet import NtpPacket
from repro.ntp.server import NtpServer
from repro.runtime.bus import AddressSighted, EventBus

#: Observer invoked when an address is seen for the very first time:
#: (address, first_seen_time, server_location).
NewAddressHook = Callable[[int, float, str], None]


@dataclass
class AddressObservation:
    """Aggregate record for one distinct collected address."""

    first_seen: float
    last_seen: float
    requests: int = 1


@dataclass
class CollectedDataset:
    """All addresses captured by one collection campaign."""

    label: str = "ntp"
    observations: Dict[int, AddressObservation] = field(default_factory=dict)
    per_server: Dict[str, Set[int]] = field(default_factory=dict)
    total_requests: int = 0
    #: First-sightings publish :class:`AddressSighted` events here.
    bus: EventBus = field(default_factory=EventBus)

    def add_new_address_hook(self, hook: NewAddressHook) -> None:
        """Subscribe to first-sightings (the real-time scan trigger).

        Seed-era adapter: wraps ``hook`` as an :class:`AddressSighted`
        subscriber on :attr:`bus`.
        """
        self.bus.subscribe(
            AddressSighted,
            lambda event: hook(event.address, event.time,
                               event.server_location))

    def record(self, address: int, time: float, server_location: str,
               requests: int = 1) -> bool:
        """Record ``requests`` observations of ``address`` at ``time``.

        Returns True when the address is new to the dataset.
        """
        self.total_requests += requests
        self.per_server.setdefault(server_location, set()).add(address)
        observation = self.observations.get(address)
        if observation is not None:
            observation.last_seen = max(observation.last_seen, time)
            observation.requests += requests
            return False
        self.observations[address] = AddressObservation(
            first_seen=time, last_seen=time, requests=requests,
        )
        self.bus.publish(AddressSighted(
            address=address, time=time, server_location=server_location))
        return True

    # -- views ------------------------------------------------------------

    @property
    def addresses(self) -> Set[int]:
        """The distinct collected addresses."""
        return set(self.observations)

    def __len__(self) -> int:
        return len(self.observations)

    def __contains__(self, address: int) -> bool:
        return address in self.observations

    def iter_addresses(self) -> Iterator[int]:
        return iter(self.observations)

    def server_locations(self) -> List[str]:
        return list(self.per_server)

    def per_server_counts(self) -> Dict[str, int]:
        """Distinct addresses per capture server (Appendix D, Table 7)."""
        return {loc: len(addrs) for loc, addrs in self.per_server.items()}

    def first_seen(self, address: int) -> Optional[float]:
        observation = self.observations.get(address)
        return observation.first_seen if observation else None

    def new_addresses_per_day(self, day_length: float = 86_400.0) -> Dict[int, int]:
        """Histogram of first-sightings per day (collection-rate check)."""
        histogram: Dict[int, int] = {}
        for observation in self.observations.values():
            day = int(observation.first_seen // day_length)
            histogram[day] = histogram.get(day, 0) + 1
        return histogram


class CaptureServer:
    """A pool NTP server modified to log client source addresses."""

    def __init__(self, network: Network, address: int, location: str,
                 dataset: CollectedDataset) -> None:
        self.location = location
        self.dataset = dataset
        self.server = NtpServer(network, address, location=location)
        self.server.add_capture_hook(self._capture)

    @property
    def address(self) -> int:
        return self.server.address

    @property
    def stats(self):
        return self.server.stats

    def _capture(self, client: int, client_port: int,
                 request: NtpPacket, time: float) -> None:
        self.dataset.record(client, time, self.location)

    def record_direct(self, client: int, time: float,
                      requests: int = 1) -> None:
        """Fast-path capture used by the campaign's aggregate mode.

        Statistically equivalent to ``requests`` wire round-trips
        hitting :meth:`_capture`; the server's request counters are kept
        consistent so operational stats match either mode.
        """
        self.server.stats.requests += requests
        self.server.stats.responses += requests
        self.dataset.record(client, time, self.location, requests=requests)
