"""Dataset comparison — the machinery behind Table 1.

Compares address sets (our NTP collection, an R&L-style collection,
and the TUM-like hitlist variants) on the metrics the paper reports:
distinct addresses, covering /48 networks and ASes, pairwise overlaps,
and median address density per /48 and per AS.

Each dataset is held as a deduplicated, sorted
:class:`~repro.ipv6.columnar.AddressColumn`: per-/48 and per-AS counts
come from the columnar bucketing kernel (the AS registry is /32
granular, so grouping by /32 and resolving one lookup per distinct
network is exactly equal to the seed-era per-address loop), and address
overlaps are sorted-column intersections instead of
``set(left) & set(right)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Set

from repro.ipv6.columnar import AddressColumn
from repro.world.asdb import AsDatabase


@dataclass(frozen=True)
class DatasetSummary:
    """One column of Table 1."""

    label: str
    address_count: int
    net48_count: int
    as_count: int
    median_ips_per_48: float
    median_ips_per_as: float


@dataclass(frozen=True)
class OverlapSummary:
    """Overlap rows between a reference dataset and another."""

    other_label: str
    address_overlap: int
    net48_overlap: int
    as_overlap: int


class DatasetComparison:
    """Computes Table 1 for any number of labelled address sets."""

    def __init__(self, asdb: AsDatabase) -> None:
        self.asdb = asdb
        self._columns: Dict[str, AddressColumn] = {}

    def add(self, label: str, addresses: Iterable[int]) -> None:
        if label in self._columns:
            raise ValueError(f"dataset {label!r} already added")
        self._columns[label] = AddressColumn.coerce(addresses).dedup()

    @property
    def labels(self) -> List[str]:
        return list(self._columns)

    def addresses(self, label: str) -> frozenset:
        return frozenset(self._columns[label])

    def column(self, label: str) -> AddressColumn:
        """The dataset as a sorted-unique packed column."""
        return self._columns[label]

    # -- per-dataset metrics ------------------------------------------------

    def _net48s(self, label: str) -> Set[int]:
        return self._columns[label].distinct_network_keys(48)

    def _asns(self, label: str) -> Set[int]:
        return set(self.asdb.as_counts(self._columns[label]))

    def summary(self, label: str) -> DatasetSummary:
        column = self._columns[label]
        per48 = column.network_key_counts(48)
        per_as = self.asdb.as_counts(column)
        return DatasetSummary(
            label=label,
            address_count=len(column),
            net48_count=len(per48),
            as_count=len(per_as),
            median_ips_per_48=_median(per48.values()),
            median_ips_per_as=_median(per_as.values()),
        )

    # -- overlaps ----------------------------------------------------------

    def overlap(self, reference: str, other: str) -> OverlapSummary:
        ref, oth = self._columns[reference], self._columns[other]
        return OverlapSummary(
            other_label=other,
            address_overlap=ref.intersection_count(oth),
            net48_overlap=len(self._net48s(reference) & self._net48s(other)),
            as_overlap=len(self._asns(reference) & self._asns(other)),
        )

    def table(self, reference: str) -> "ComparisonTable":
        """Full Table 1: every dataset + overlaps against ``reference``."""
        if reference not in self._columns:
            raise KeyError(reference)
        summaries = [self.summary(label) for label in self._columns]
        overlaps = [self.overlap(reference, label)
                    for label in self._columns if label != reference]
        return ComparisonTable(reference=reference, summaries=summaries,
                               overlaps=overlaps)


@dataclass(frozen=True)
class ComparisonTable:
    """Rendered-friendly Table 1 contents."""

    reference: str
    summaries: Sequence[DatasetSummary]
    overlaps: Sequence[OverlapSummary]

    def summary_for(self, label: str) -> DatasetSummary:
        for summary in self.summaries:
            if summary.label == label:
                return summary
        raise KeyError(label)

    def overlap_for(self, label: str) -> OverlapSummary:
        for overlap in self.overlaps:
            if overlap.other_label == label:
                return overlap
        raise KeyError(label)


def _median(values) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2
