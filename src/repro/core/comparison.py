"""Dataset comparison — the machinery behind Table 1.

Compares address sets (our NTP collection, an R&L-style collection,
and the TUM-like hitlist variants) on the metrics the paper reports:
distinct addresses, covering /48 networks and ASes, pairwise overlaps,
and median address density per /48 and per AS.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.ipv6 import address as addrmod
from repro.world.asdb import AsDatabase


@dataclass(frozen=True)
class DatasetSummary:
    """One column of Table 1."""

    label: str
    address_count: int
    net48_count: int
    as_count: int
    median_ips_per_48: float
    median_ips_per_as: float


@dataclass(frozen=True)
class OverlapSummary:
    """Overlap rows between a reference dataset and another."""

    other_label: str
    address_overlap: int
    net48_overlap: int
    as_overlap: int


class DatasetComparison:
    """Computes Table 1 for any number of labelled address sets."""

    def __init__(self, asdb: AsDatabase) -> None:
        self.asdb = asdb
        self._sets: Dict[str, frozenset] = {}

    def add(self, label: str, addresses: Iterable[int]) -> None:
        if label in self._sets:
            raise ValueError(f"dataset {label!r} already added")
        self._sets[label] = frozenset(addresses)

    @property
    def labels(self) -> List[str]:
        return list(self._sets)

    def addresses(self, label: str) -> frozenset:
        return self._sets[label]

    # -- per-dataset metrics ------------------------------------------------

    def _net48s(self, label: str) -> set:
        return addrmod.distinct_networks(self._sets[label], 48)

    def _asns(self, label: str) -> set:
        lookup = self.asdb.lookup_asn
        return {asn for value in self._sets[label]
                if (asn := lookup(value)) is not None}

    def summary(self, label: str) -> DatasetSummary:
        addresses = self._sets[label]
        shift = 128 - 48
        per48: Dict[int, int] = {}
        per_as: Dict[int, int] = {}
        lookup = self.asdb.lookup_asn
        for value in addresses:
            key = value >> shift
            per48[key] = per48.get(key, 0) + 1
            asn = lookup(value)
            if asn is not None:
                per_as[asn] = per_as.get(asn, 0) + 1
        return DatasetSummary(
            label=label,
            address_count=len(addresses),
            net48_count=len(per48),
            as_count=len(per_as),
            median_ips_per_48=_median(per48.values()),
            median_ips_per_as=_median(per_as.values()),
        )

    # -- overlaps ----------------------------------------------------------

    def overlap(self, reference: str, other: str) -> OverlapSummary:
        ref, oth = self._sets[reference], self._sets[other]
        return OverlapSummary(
            other_label=other,
            address_overlap=len(ref & oth),
            net48_overlap=len(self._net48s(reference) & self._net48s(other)),
            as_overlap=len(self._asns(reference) & self._asns(other)),
        )

    def table(self, reference: str) -> "ComparisonTable":
        """Full Table 1: every dataset + overlaps against ``reference``."""
        summaries = [self.summary(label) for label in self._sets]
        overlaps = [self.overlap(reference, label)
                    for label in self._sets if label != reference]
        return ComparisonTable(reference=reference, summaries=summaries,
                               overlaps=overlaps)


@dataclass(frozen=True)
class ComparisonTable:
    """Rendered-friendly Table 1 contents."""

    reference: str
    summaries: Sequence[DatasetSummary]
    overlaps: Sequence[OverlapSummary]

    def summary_for(self, label: str) -> DatasetSummary:
        for summary in self.summaries:
            if summary.label == label:
                return summary
        raise KeyError(label)

    def overlap_for(self, label: str) -> OverlapSummary:
        for overlap in self.overlaps:
            if overlap.other_label == label:
                return overlap
        raise KeyError(label)


def _median(values) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (ordered[mid - 1] + ordered[mid]) / 2
