"""Actor identification from telescope observations (Section 5.2).

Groups the telescope's matched inbound events into actors (clustered by
the scanner's origin AS group), derives each actor's behavioural
profile — which pool servers trigger it, the delay between NTP reveal
and first probe, the per-address scan duration, the port set — and
classifies the actor as *overt research* or *covert*:

* short reaction (< 1 h), one quick burst per address, broad port
  coverage, identifiable (research) address space → **overt**;
* multi-day delays, probes spread over days, partial port coverage,
  servers and scanners in different cloud providers, security-sensitive
  port profile → **covert**.
"""

from __future__ import annotations

import statistics
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.telescope import InboundEvent, Telescope
from repro.net.clock import DAY, HOUR
from repro.net.rdns import ReverseDns
from repro.world.asdb import AsDatabase

#: Ports conventionally gated by access control (remote admin, DBs).
SENSITIVE_PORTS = frozenset({
    443, 8443, 3388, 3389, 5900, 5901, 6000, 6001, 9200, 27017, 22, 23,
})


@dataclass(frozen=True)
class ActorObservation:
    """The evidence gathered about one scanning actor."""

    cluster: str
    source_addresses: FrozenSet[int]
    source_categories: FrozenSet[str]
    #: PTR names the scanner sources publish (empty for covert actors).
    source_rdns: FrozenSet[str]
    triggering_servers: FrozenSet[int]
    server_operators: FrozenSet[str]
    ports: FrozenSet[int]
    event_count: int
    addresses_scanned: int
    median_delay: float
    max_delay: float
    median_duration: float
    span: float

    @property
    def sensitive_share(self) -> float:
        if not self.ports:
            return 0.0
        return len(self.ports & SENSITIVE_PORTS) / len(self.ports)


@dataclass(frozen=True)
class ActorVerdict:
    """Classification of one actor."""

    observation: ActorObservation
    kind: str  # "research" | "covert" | "unclassified"
    reasons: Tuple[str, ...]


class ActorDetector:
    """Turns telescope events into actor observations and verdicts."""

    def __init__(self, telescope: Telescope, asdb: AsDatabase,
                 operator_of_server=None,
                 rdns: Optional[ReverseDns] = None) -> None:
        """``operator_of_server(address) -> str`` resolves a pool
        server's operator label (from the pool registry); optional —
        unresolvable servers group as "(unknown)".  ``rdns`` enables the
        paper's strongest identification signal: scanners that publish
        self-identifying PTR records."""
        self.telescope = telescope
        self.asdb = asdb
        self.rdns = rdns
        self._operator_of_server = operator_of_server or (lambda _: "(unknown)")

    # -- clustering -----------------------------------------------------------

    def _cluster_key(self, event: InboundEvent) -> str:
        """Cluster scanners by origin-AS name, falling back to /48."""
        system = self.asdb.lookup(event.src)
        if system is not None:
            return f"AS{system.number} {system.name}"
        return f"net {event.src >> 80:#x}/48"

    def observations(self) -> List[ActorObservation]:
        """Group matched events into per-actor evidence records."""
        groups: Dict[str, List[InboundEvent]] = defaultdict(list)
        for event in self.telescope.matched_events():
            groups[self._cluster_key(event)].append(event)
        result = []
        for cluster, events in sorted(groups.items()):
            result.append(self._summarize(cluster, events))
        return result

    def _summarize(self, cluster: str,
                   events: Sequence[InboundEvent]) -> ActorObservation:
        delays = []
        per_address: Dict[int, List[float]] = defaultdict(list)
        servers = set()
        for event in events:
            bait = event.bait
            assert bait is not None
            delays.append(event.time - bait.query_time)
            per_address[event.dst].append(event.time)
            servers.add(bait.server)
        durations = [max(times) - min(times)
                     for times in per_address.values()]
        categories = set()
        for event in events:
            system = self.asdb.lookup(event.src)
            categories.add(system.category if system else "(unrouted)")
        times = [event.time for event in events]
        rdns_names: set = set()
        if self.rdns is not None:
            for event in events:
                name = self.rdns.lookup(event.src)
                if name is not None:
                    rdns_names.add(name)
        return ActorObservation(
            cluster=cluster,
            source_addresses=frozenset(event.src for event in events),
            source_categories=frozenset(categories),
            source_rdns=frozenset(rdns_names),
            triggering_servers=frozenset(servers),
            server_operators=frozenset(
                self._operator_of_server(server) for server in servers
            ),
            ports=frozenset(event.dst_port for event in events),
            event_count=len(events),
            addresses_scanned=len(per_address),
            median_delay=statistics.median(delays) if delays else 0.0,
            max_delay=max(delays) if delays else 0.0,
            median_duration=statistics.median(durations) if durations else 0.0,
            span=(max(times) - min(times)) if times else 0.0,
        )

    # -- classification ---------------------------------------------------------

    def classify(self, observation: ActorObservation) -> ActorVerdict:
        reasons: List[str] = []
        covert_score = 0
        overt_score = 0

        if observation.median_delay <= HOUR:
            overt_score += 1
            reasons.append("reacts within an hour of the NTP response")
        if observation.median_delay >= 6 * HOUR:
            covert_score += 1
            reasons.append("waits many hours to days before scanning")
        if observation.median_duration <= 15 * 60:
            overt_score += 1
            reasons.append("finishes each address within minutes")
        if observation.median_duration >= DAY / 2:
            covert_score += 1
            reasons.append("spreads probes on one address over days")
        if observation.source_rdns:
            if any("research" in name.lower() or "scan" in name.lower()
                   for name in observation.source_rdns):
                overt_score += 2
                reasons.append(
                    "publishes self-identifying reverse DNS")
        elif self.rdns is not None and len(self.rdns):
            covert_score += 1
            reasons.append("sources have no reverse DNS at all")
        if "Educational/Research" in observation.source_categories:
            overt_score += 2
            reasons.append("scans from identifiable research address space")
        if observation.source_categories <= {"Content"}:
            covert_score += 1
            reasons.append("scans exclusively from cloud address space")
        if 0 < len(observation.ports) <= 16 and \
                observation.sensitive_share >= 0.8:
            covert_score += 1
            reasons.append("targets access-control-protected services")
        if len(observation.ports) >= 50:
            overt_score += 1
            reasons.append("broad service-diversity port coverage")

        if overt_score > covert_score:
            kind = "research"
        elif covert_score > overt_score:
            kind = "covert"
        else:
            kind = "unclassified"
        return ActorVerdict(observation=observation, kind=kind,
                            reasons=tuple(reasons))

    def report(self) -> List[ActorVerdict]:
        """Observations + verdicts for every detected actor."""
        return [self.classify(observation)
                for observation in self.observations()]
