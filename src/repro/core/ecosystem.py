"""A population of scanner actors beyond the NTP-sourcing pair.

Section 5 of the paper attributes telescope traffic to two NTP-sourcing
actors, but real telescopes ("Glowing in the Dark", "Illuminating
Large-Scale IPv6 Scanning") see a whole ecosystem of scanners whose
address-discovery strategies differ — and those strategies leave
distinct fingerprints in probe arrival patterns.  This module models
that population:

* :class:`HitlistSweepActor` — replays a published hitlist in several
  regular rounds (high revisit ratio, metronomic timing);
* :class:`TgaActor` — target-generation around seed addresses by
  low-entropy IID mutation (many candidates packed into few /64s);
* :class:`RdnsWalkActor` — walks the reverse-DNS zone with a word
  dictionary and probes only PTR-bearing names (ptr share ~1);
* :class:`ResidentialSweepActor` — sweeps one low IID across many
  consecutive residential /64s (broadband recon, Bruns' thesis);
* :class:`AmplificationReconActor` — sweeps UDP/123 monlist probes
  hunting open NTP amplifiers (near-pure port-123 profile).

Every actor precomputes its full probe **plan** ``(when, src, dst,
port)`` from a private seeded RNG at deploy time and fires it through
the shared :class:`~repro.net.clock.EventScheduler`; runs are therefore
deterministic byte for byte, and every probe is attributable to the
actor's configured address source — properties the ecosystem test
suite asserts directly.

:class:`ScannerPopulation` deploys actors and keeps the simulation's
ground truth (source address → strategy), which the attribution layer
(:mod:`repro.core.attribution`) scores its confusion matrix against.
Actors only need a :class:`~repro.net.simnet.Network` and a scheduler —
no :class:`World` — so unit tests stay fast; :func:`leak_scenario`
builds the standard mixed population whose targets "leak" into a
telescope's bait /48 the way real telescope prefixes end up in
hitlists and rDNS zones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.ipv6 import address as addrmod
from repro.net.clock import EventScheduler, MINUTE
from repro.net.rdns import ReverseDns
from repro.net.simnet import Network
from repro.obs.metrics import current_registry

#: Subnet-index layout (bits 64-79) inside a telescope /48 for leaked
#: targets.  The telescope's own bait counter starts at 0x1000; each
#: strategy gets a disjoint range so subnet locality separates them.
HITLIST_SUBNET_BASE = 0x2000
RDNS_SUBNET_BASE = 0x4000
RESIDENTIAL_SUBNET_BASE = 0x6000
TGA_SUBNET_BASE = 0x8000
AMPLIFICATION_SUBNET_BASE = 0xA000

#: PTR vocabulary the rDNS walker (and the leak scenario) share.
RDNS_DICTIONARY: Tuple[str, ...] = ("www", "mail", "ns", "vpn", "gw", "host")


class ScannerActor:
    """Base scanner: a seeded plan of probes fired on the scheduler.

    Subclasses implement :meth:`plan` — a pure function of the
    constructor arguments and the actor's private RNG — returning the
    complete ``(when, src, dst, port)`` probe stream.  ``deploy()``
    registers the source hosts, freezes the plan, and schedules every
    probe; ``probe_log`` records fired probes in virtual-time order.
    """

    strategy = "generic"

    def __init__(self, network: Network, scheduler: EventScheduler, *,
                 name: str, sources: Sequence[int], seed: int,
                 start: float = 0.0) -> None:
        if not sources:
            raise ValueError(f"{name}: an actor needs at least one source")
        self.network = network
        self.scheduler = scheduler
        self.name = name
        self.sources = tuple(sources)
        self.start = start
        self.rng = random.Random(seed)
        self.probes_sent = 0
        self.probe_log: List[Tuple[float, int, int, int]] = []
        self._plan: Optional[Tuple[Tuple[float, int, int, int], ...]] = None

    # -- planning -----------------------------------------------------------

    def plan(self) -> List[Tuple[float, int, int, int]]:
        """The full probe stream ``(when, src, dst, port)``."""
        raise NotImplementedError

    def address_pool(self) -> frozenset:
        """Every destination this actor's strategy can ever produce."""
        raise NotImplementedError

    def planned(self) -> Tuple[Tuple[float, int, int, int], ...]:
        """The frozen plan (computed once; deploy() freezes it too)."""
        if self._plan is None:
            self._plan = tuple(self.plan())
        return self._plan

    # -- execution ----------------------------------------------------------

    def deploy(self) -> None:
        """Register source hosts and schedule the whole plan."""
        for source in self.sources:
            if self.network.host(source) is None:
                self.network.add_host(source, reachable=True)
        for when, src, dst, port in self.planned():
            self.scheduler.call_at(
                when, lambda s=src, d=dst, p=port: self._probe(s, d, p))

    def _probe(self, src: int, dst: int, port: int) -> None:
        self.probes_sent += 1
        self.probe_log.append((self.network.clock.now(), src, dst, port))
        current_registry().counter(
            "ecosystem_probes_total", strategy=self.strategy).inc()
        stream = self.network.tcp_connect(src, dst, port)
        if stream is not None:
            stream.close()

    def _source(self) -> int:
        return self.rng.choice(self.sources)


class HitlistSweepActor(ScannerActor):
    """Replays a published hitlist, port by port, in regular rounds."""

    strategy = "hitlist"

    def __init__(self, network: Network, scheduler: EventScheduler, *,
                 name: str, sources: Sequence[int],
                 targets: Sequence[int], ports: Sequence[int] = (22, 80, 443),
                 rounds: int = 2, interval: float = 30.0,
                 seed: int = 0, start: float = 0.0) -> None:
        super().__init__(network, scheduler, name=name, sources=sources,
                         seed=seed, start=start)
        if rounds < 1:
            raise ValueError(f"rounds={rounds}: must be >= 1")
        self.targets = tuple(targets)
        self.ports = tuple(ports)
        self.rounds = rounds
        self.interval = interval

    def plan(self) -> List[Tuple[float, int, int, int]]:
        stream = []
        when = self.start
        for _ in range(self.rounds):
            for dst in self.targets:
                for port in self.ports:
                    stream.append((when, self._source(), dst, port))
                    when += self.interval
        return stream

    def address_pool(self) -> frozenset:
        return frozenset(self.targets)


class TgaActor(ScannerActor):
    """Entropy-guided generation: low-entropy IID mutation around seeds.

    Real TGAs (6Gen/entropy-ip style) concentrate candidates into the
    /64s of their seeds, flipping low bits of observed IIDs.  That
    concentration — several distinct destinations per destination /64 —
    is the attribution signature.
    """

    strategy = "tga"

    def __init__(self, network: Network, scheduler: EventScheduler, *,
                 name: str, sources: Sequence[int],
                 seeds: Sequence[int], candidates_per_seed: int = 6,
                 ports: Sequence[int] = (443,), interval: float = 20.0,
                 seed: int = 0, start: float = 0.0) -> None:
        super().__init__(network, scheduler, name=name, sources=sources,
                         seed=seed, start=start)
        if candidates_per_seed < 1:
            raise ValueError(
                f"candidates_per_seed={candidates_per_seed}: must be >= 1")
        self.seeds = tuple(seeds)
        self.candidates_per_seed = candidates_per_seed
        self.ports = tuple(ports)
        self.interval = interval

    def _mutations(self, seed_address: int) -> List[int]:
        prefix64 = addrmod.prefix(seed_address, 64)
        base_iid = addrmod.iid(seed_address)
        produced: List[int] = []
        seen = {base_iid}
        while len(produced) < self.candidates_per_seed:
            candidate = base_iid ^ self.rng.randrange(1, 0x100)
            if candidate in seen:
                continue
            seen.add(candidate)
            produced.append(addrmod.with_iid(prefix64, candidate))
        return produced

    def plan(self) -> List[Tuple[float, int, int, int]]:
        stream = []
        when = self.start
        for seed_address in self.seeds:
            for dst in self._mutations(seed_address):
                for port in self.ports:
                    stream.append((when, self._source(), dst, port))
                    when += self.interval * self.rng.uniform(0.5, 1.5)
        return stream

    def address_pool(self) -> frozenset:
        """Every address the mutator can reach: the seeds' /64s."""
        return frozenset(addrmod.prefix(seed, 64) for seed in self.seeds)


class RdnsWalkActor(ScannerActor):
    """Walks a reverse-DNS zone and probes dictionary-named hosts."""

    strategy = "rdns"

    def __init__(self, network: Network, scheduler: EventScheduler, *,
                 name: str, sources: Sequence[int], rdns: ReverseDns,
                 zone48: int, dictionary: Sequence[str] = RDNS_DICTIONARY,
                 ports: Sequence[int] = (80, 443), interval: float = 45.0,
                 seed: int = 0, start: float = 0.0) -> None:
        super().__init__(network, scheduler, name=name, sources=sources,
                         seed=seed, start=start)
        self.rdns = rdns
        self.zone48 = addrmod.prefix(zone48, 48)
        self.dictionary = tuple(dictionary)
        self.ports = tuple(ports)
        self.interval = interval

    def _walk(self) -> List[int]:
        """Zone addresses whose PTR names match the dictionary, sorted."""
        matched = []
        for address, name in self.rdns.entries():
            if addrmod.prefix(address, 48) != self.zone48:
                continue
            lowered = name.lower()
            if any(word in lowered for word in self.dictionary):
                matched.append(address)
        return sorted(matched)

    def plan(self) -> List[Tuple[float, int, int, int]]:
        stream = []
        when = self.start
        for dst in self._walk():
            for port in self.ports:
                stream.append((when, self._source(), dst, port))
                when += self.interval
        return stream

    def address_pool(self) -> frozenset:
        return frozenset(self._walk())


class ResidentialSweepActor(ScannerActor):
    """Sweeps low IIDs across consecutive residential /64s.

    Broadband recon probes the gateway address (::1 and friends) of
    every customer subnet in a delegation — many distinct /64s, one
    low-IID address each, metronomic pacing.
    """

    strategy = "residential"

    def __init__(self, network: Network, scheduler: EventScheduler, *,
                 name: str, sources: Sequence[int], base48: int,
                 subnet_start: int, subnet_count: int,
                 iids: Sequence[int] = (1,), ports: Sequence[int] = (443,),
                 interval: float = 15.0, seed: int = 0,
                 start: float = 0.0) -> None:
        super().__init__(network, scheduler, name=name, sources=sources,
                         seed=seed, start=start)
        if subnet_count < 1:
            raise ValueError(f"subnet_count={subnet_count}: must be >= 1")
        self.base48 = addrmod.prefix(base48, 48)
        self.subnet_start = subnet_start
        self.subnet_count = subnet_count
        self.iids = tuple(iids)
        self.ports = tuple(ports)
        self.interval = interval

    def _targets(self) -> List[int]:
        return [self.base48 + ((self.subnet_start + index) << 64) + iid
                for index in range(self.subnet_count)
                for iid in self.iids]

    def plan(self) -> List[Tuple[float, int, int, int]]:
        stream = []
        when = self.start
        for dst in self._targets():
            for port in self.ports:
                stream.append((when, self._source(), dst, port))
                when += self.interval
        return stream

    def address_pool(self) -> frozenset:
        return frozenset(self._targets())


class AmplificationReconActor(ScannerActor):
    """Sweeps for open NTP amplifiers: UDP monlist probes to port 123.

    The DRDoS-recon pattern the NTP scanning literature documents
    (Czyz et al.'s amplification measurements, the paper's Fig 2/3
    story): low-IID sweeps across consecutive subnets, every probe a
    72-byte mode-7 monlist request to UDP/123.  The near-pure UDP/123
    port profile is the attribution fingerprint — no TCP service scan
    shares it.
    """

    strategy = "amplification"

    def __init__(self, network: Network, scheduler: EventScheduler, *,
                 name: str, sources: Sequence[int], base48: int,
                 subnet_start: int, subnet_count: int,
                 iids: Sequence[int] = (1,), port: int = 123,
                 interval: float = 12.0, seed: int = 0,
                 start: float = 0.0) -> None:
        super().__init__(network, scheduler, name=name, sources=sources,
                         seed=seed, start=start)
        if subnet_count < 1:
            raise ValueError(f"subnet_count={subnet_count}: must be >= 1")
        self.base48 = addrmod.prefix(base48, 48)
        self.subnet_start = subnet_start
        self.subnet_count = subnet_count
        self.iids = tuple(iids)
        self.port = port
        self.interval = interval

    def _targets(self) -> List[int]:
        return [self.base48 + ((self.subnet_start + index) << 64) + iid
                for index in range(self.subnet_count)
                for iid in self.iids]

    def plan(self) -> List[Tuple[float, int, int, int]]:
        stream = []
        when = self.start
        for dst in self._targets():
            stream.append((when, self._source(), dst, self.port))
            when += self.interval
        return stream

    def address_pool(self) -> frozenset:
        return frozenset(self._targets())

    def _probe(self, src: int, dst: int, port: int) -> None:
        # UDP, not TCP: a monlist request, the telescope records the
        # dst-port-123 datagram whether or not anything answers.
        from repro.ntp.control import monlist_request

        self.probes_sent += 1
        self.probe_log.append((self.network.clock.now(), src, dst, port))
        current_registry().counter(
            "ecosystem_probes_total", strategy=self.strategy).inc()
        self.network.udp_request(
            src, dst, port,
            monlist_request(sequence=self.probes_sent & 0x7F).encode())


# -- population + ground truth ------------------------------------------------


class ScannerPopulation:
    """Deploys a mixed actor population and holds the ground truth.

    The truth map (source address → strategy) is what the attribution
    layer's confusion matrix is scored against.  Actors created outside
    this module (the NTP-sourcing pair) register their sources through
    :meth:`add_external` so one table covers the whole population.
    """

    def __init__(self, network: Network,
                 scheduler: EventScheduler) -> None:
        self.network = network
        self.scheduler = scheduler
        self.actors: List[ScannerActor] = []
        self._truth: Dict[int, str] = {}
        self._names: Dict[int, str] = {}

    def add(self, actor: ScannerActor) -> ScannerActor:
        """Deploy an actor and record its sources' ground truth."""
        actor.deploy()
        self.actors.append(actor)
        self._label(actor.name, actor.strategy, actor.sources)
        return actor

    def add_external(self, name: str, strategy: str,
                     sources: Iterable[int]) -> None:
        """Register ground truth for an actor deployed elsewhere."""
        self._label(name, strategy, sources)

    def _label(self, name: str, strategy: str,
               sources: Iterable[int]) -> None:
        for source in sources:
            self._truth[source] = strategy
            self._names[source] = name

    def ground_truth(self) -> Dict[int, str]:
        """source address → strategy, for attribution scoring."""
        return dict(self._truth)

    def actor_of(self, source: int) -> Optional[str]:
        return self._names.get(source)

    def rows(self) -> List[dict]:
        """One summary row per deployed actor (report table shape)."""
        return [{"actor": actor.name, "strategy": actor.strategy,
                 "sources": len(actor.sources),
                 "planned": len(actor.planned()),
                 "probes_sent": actor.probes_sent}
                for actor in self.actors]


# -- the standard leak scenario ----------------------------------------------


@dataclass
class ScenarioConfig:
    """Knobs of the standard mixed-population leak scenario."""

    hitlist_targets: int = 12
    hitlist_rounds: int = 2
    tga_seeds: int = 3
    tga_candidates: int = 6
    rdns_names: int = 12
    residential_subnets: int = 12
    amplification_subnets: int = 10
    seed: int = 7

    def __post_init__(self) -> None:
        for name in ("hitlist_targets", "hitlist_rounds", "tga_seeds",
                     "tga_candidates", "rdns_names", "residential_subnets",
                     "amplification_subnets"):
            value = getattr(self, name)
            if value < 1:
                raise ValueError(f"{name}={value}: must be >= 1")


def leak_scenario(network: Network, scheduler: EventScheduler,
                  rdns: ReverseDns, prefix48: int, *,
                  sources: Dict[str, Sequence[int]],
                  config: Optional[ScenarioConfig] = None,
                  start: float = 10 * MINUTE,
                  population: Optional[ScannerPopulation] = None
                  ) -> ScannerPopulation:
    """The standard five-strategy population aimed at a telescope /48.

    Targets "leak" into the bait prefix the way real telescope prefixes
    end up in public hitlists and rDNS zones: each strategy draws from
    a disjoint subnet-index range (`*_SUBNET_BASE`), so subnet locality,
    IID structure, revisit behaviour and PTR coverage separate cleanly.
    ``sources`` maps each strategy name to that actor's scanner
    addresses — give every actor a distinct source /48 so clustering
    keeps the ground truth separable.
    """
    config = config or ScenarioConfig()
    prefix48 = addrmod.prefix(prefix48, 48)
    rng = random.Random(config.seed)
    population = population or ScannerPopulation(network, scheduler)

    def high_iid() -> int:
        # Pseudo-random (SLAAC-privacy-shaped) IIDs, never low-range.
        return rng.randrange(1 << 32, 1 << 63)

    hitlist = [prefix48 + ((HITLIST_SUBNET_BASE + index) << 64) + high_iid()
               for index in range(config.hitlist_targets)]
    population.add(HitlistSweepActor(
        network, scheduler, name="hitlist-sweeper",
        sources=sources["hitlist"], targets=hitlist,
        rounds=config.hitlist_rounds, seed=config.seed + 1, start=start))

    seeds = [prefix48 + ((TGA_SUBNET_BASE + index) << 64) + high_iid()
             for index in range(config.tga_seeds)]
    population.add(TgaActor(
        network, scheduler, name="tga-generator",
        sources=sources["tga"], seeds=seeds,
        candidates_per_seed=config.tga_candidates,
        seed=config.seed + 2, start=start))

    for index in range(config.rdns_names):
        address = (prefix48 + ((RDNS_SUBNET_BASE + index // 4) << 64)
                   + high_iid())
        word = RDNS_DICTIONARY[index % len(RDNS_DICTIONARY)]
        rdns.register(address, f"{word}{index}.leak.example.net")
    population.add(RdnsWalkActor(
        network, scheduler, name="rdns-walker",
        sources=sources["rdns"], rdns=rdns, zone48=prefix48,
        seed=config.seed + 3, start=start))

    population.add(ResidentialSweepActor(
        network, scheduler, name="residential-sweeper",
        sources=sources["residential"], base48=prefix48,
        subnet_start=RESIDENTIAL_SUBNET_BASE,
        subnet_count=config.residential_subnets,
        seed=config.seed + 4, start=start))

    population.add(AmplificationReconActor(
        network, scheduler, name="amplification-recon",
        sources=sources["amplification"], base48=prefix48,
        subnet_start=AMPLIFICATION_SUBNET_BASE,
        subnet_count=config.amplification_subnets,
        seed=config.seed + 5, start=start))
    return population
