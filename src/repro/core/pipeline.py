"""End-to-end experiment orchestration.

:func:`run_experiment` reproduces the paper's full measurement
timeline on one simulated world:

1. *(optional)* an **R&L-style collection** (their 2022 study) — used
   only for Table 1's overlap rows;
2. a **gap period** in which the world churns on (the two years between
   the studies, compressed);
3. **our collection campaign** with real-time scanning of every newly
   sourced address (three collection weeks, then a final week in which
   collection continues *and* the freshly built full hitlist is scanned
   — matching the paper's August 9–16 window);
4. the assembled :class:`ExperimentResult`, the single object every
   table/figure bench consumes.

Both scan paths run on the staged runtime (`repro.runtime`): the
campaign's dataset publishes ``AddressSighted`` events, the real-time
queue consumes them as a bounded stage, and the engines draw their
probe set from a pluggable registry.  ``scan_shards > 1`` fans both
engines out across hash-partitioned shards with deterministic merged
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.campaign import CampaignConfig, CollectionCampaign, rl_2022_config
from repro.core.collector import CollectedDataset
from repro.core.comparison import ComparisonTable, DatasetComparison
from repro.core.realtime import RealTimeScanQueue
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.pool import WorkerPool, resolve_workers
from repro.runtime.registry import ProbeRegistry, default_registry
from repro.runtime.sharding import ShardedScanEngine
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import PROTOCOLS, ScanResults
from repro.world.hitlist import Hitlist, HitlistConfig, build_hitlist
from repro.world.population import World, WorldConfig, build_world


@dataclass
class ExperimentConfig:
    """Everything needed to run the full study."""

    world: WorldConfig = field(default_factory=WorldConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    hitlist: HitlistConfig = field(default_factory=HitlistConfig)
    #: Run the R&L-style pre-campaign for Table 1's overlap rows.
    include_rl: bool = True
    rl_days: int = 10
    #: Churn-only days between the R&L study and ours.
    gap_days: int = 14
    #: Collection days before the hitlist snapshot + final week.
    lead_days: int = 21
    final_days: int = 7
    scan_seed: int = 0x51AB
    #: Fan each scan engine out over N hash-partitioned shards (1 = the
    #: single-engine path).  Embedded-mode results are shard-invariant.
    scan_shards: int = 1
    #: Execute batch scans (the hitlist campaign) in N worker processes
    #: (0 = sequential, the default).  Results are byte-identical to a
    #: sequential run; silently capped at the machine's CPU count.
    parallel_workers: int = 0
    #: Restrict the campaign's probe profile to these protocols (None =
    #: the paper's full eight-protocol registry).
    protocols: Optional[Tuple[str, ...]] = None
    #: Stream the run into a durable :mod:`repro.store` run directory
    #: (None = in-memory only, the seed behaviour).
    store_dir: Optional[str] = None
    #: Collection days between store checkpoints (only meaningful with
    #: ``store_dir``).
    checkpoint_days: int = 7

    def __post_init__(self) -> None:
        # Validation lives on the config (not the CLI handler) so the
        # api facade and direct library construction share it.  Error
        # messages lead with ``field=value`` so CLI exit-2 output names
        # the offending value, not just the field.
        if self.scan_shards < 1:
            raise ValueError(
                f"scan_shards={self.scan_shards}: must be >= 1")
        # One validation/cap path for every worker knob (the analyze
        # config and the CLI flags go through the same function).
        self.parallel_workers = resolve_workers(
            self.parallel_workers, field="parallel_workers")
        if self.checkpoint_days < 1:
            raise ValueError(
                f"checkpoint_days={self.checkpoint_days}: must be >= 1")
        if self.protocols is not None:
            if not self.protocols:
                raise ValueError(
                    f"protocols={self.protocols!r}: must name at least one "
                    "protocol (or be None for the full registry)")
            unknown = [name for name in self.protocols
                       if name not in PROTOCOLS]
            if unknown:
                raise ValueError(
                    f"protocols={','.join(self.protocols)}: unknown "
                    f"protocol(s) {', '.join(sorted(unknown))}; "
                    f"choose from {', '.join(PROTOCOLS)}")


@dataclass
class ExperimentResult:
    """All artefacts of one experiment run."""

    world: World
    ntp_dataset: CollectedDataset
    ntp_scan: ScanResults
    hitlist: Hitlist
    hitlist_scan: ScanResults
    rl_dataset: Optional[CollectedDataset]
    campaign: CollectionCampaign
    config: ExperimentConfig
    #: The run's metrics registry (every stage/scheduler/probe series).
    metrics: Optional[MetricsRegistry] = None
    #: Wall-clock timing of the parallel batch scan (None when the run
    #: was sequential): worker count plus per-shard wall/cpu seconds.
    parallel: Optional[dict] = None

    def comparison(self) -> DatasetComparison:
        """The Table 1 comparator over every dataset in this run."""
        comparison = DatasetComparison(self.world.asdb)
        comparison.add("ntp", self.ntp_dataset.addresses)
        if self.rl_dataset is not None:
            comparison.add("rl", self.rl_dataset.addresses)
        comparison.add("hitlist-full", self.hitlist.full)
        comparison.add("hitlist-public", self.hitlist.public)
        return comparison

    def table1(self) -> ComparisonTable:
        return self.comparison().table("ntp")


#: The study scanner's self-identifying PTR name (Appendix A.2.2).
SCANNER_PTR_NAME = "ipv6-research-scan.comsys.example.edu"


def _scanner_source(world: World) -> int:
    """Allocate the study's scanner address inside a research AS.

    Placing the scanner in identifiable research address space mirrors
    the paper's ethics setup (reverse-DNS + info pages) and lets the
    Section 5 detector classify our own scans as an overt actor.  The
    study runs *one* scanner identity: allocating a second address
    under the same PTR name is a bug (the seed did exactly that for the
    hitlist engine), so duplicate registration is rejected here.
    """
    for system in world.asdb.systems:
        if system.category == "Educational/Research":
            source = world.allocate_prefix64(system.number) | 0x10
            existing = world.rdns.addresses_of(SCANNER_PTR_NAME)
            if existing:
                raise RuntimeError(
                    f"scanner identity {SCANNER_PTR_NAME!r} already "
                    f"registered to {existing[0]:#x}; reuse that source")
            world.rdns.register(source, SCANNER_PTR_NAME)
            return source
    # Fallback: infrastructure space (no research AS configured).
    return int("20010db8000000000000000000000010", 16)


def _build_engine(world: World, source: int, config: EngineConfig,
                  registry: ProbeRegistry, shards: int, name: str,
                  workers: int = 0, pool: Optional[WorkerPool] = None):
    """One scan engine — sharded and/or multiprocess when asked for.

    ``workers > 0`` wraps the sharded engine in the multiprocess batch
    backend: per-target feeds (the real-time path) stay in-process,
    while ``run`` — the hitlist campaign — fans shards out to a worker
    pool with byte-identical merged results.  ``pool`` hands both
    engines one shared persistent :class:`WorkerPool`, so the world
    snapshot ships once per pool, not once per engine run.
    """
    if workers > 0:
        from repro.runtime.parallel import ParallelShardedScanEngine

        return ParallelShardedScanEngine(
            world.network, source, config, registry=registry,
            shards=shards, workers=workers, name=name, pool=pool)
    if shards > 1:
        return ShardedScanEngine(world.network, source, config,
                                 registry=registry, shards=shards, name=name)
    return ScanEngine(world.network, source, config, registry=registry,
                      name=name)


def run_experiment(config: Optional[ExperimentConfig] = None,
                   metrics: Optional[MetricsRegistry] = None,
                   *, resume: bool = False,
                   pool: Optional[WorkerPool] = None) -> ExperimentResult:
    """Run the complete study; deterministic in ``config``.

    Every run records into its own :class:`MetricsRegistry` (or the one
    passed as ``metrics``), returned on ``result.metrics`` — identical
    snapshots for identical configs, so runs can be diffed.

    With ``config.store_dir`` set, the run streams into a durable
    :mod:`repro.store` run directory; ``resume=True`` recovers an
    interrupted run from that directory and continues it (deterministic
    replay: the simulation re-runs from genesis, verified record-by-
    record against the surviving log, then keeps going live).

    ``pool`` is a caller-owned persistent :class:`WorkerPool` (usually
    :class:`repro.api.ExecutionContext`'s): with
    ``config.parallel_workers > 0`` the batch scans run on it and its
    pickle-once snapshot cache survives this call.  Without one, a
    parallel run uses a private pool closed before returning.
    """
    config = config or ExperimentConfig()
    registry = metrics if metrics is not None else MetricsRegistry()
    ephemeral = pool is None and config.parallel_workers > 0
    if ephemeral:
        pool = WorkerPool(config.parallel_workers)
    try:
        with use_registry(registry):
            writer = _open_store_writer(config, resume=resume)
            result = _run_experiment(config, writer, pool)
    finally:
        if ephemeral:
            pool.close()
    result.metrics = registry
    return result


def _open_store_writer(config: ExperimentConfig, *, resume: bool):
    """The run's StoreWriter (None when no store is configured)."""
    if config.store_dir is None:
        if resume:
            raise ValueError(
                "store_dir=None: resuming requires the run directory of "
                "an interrupted store-backed study")
        return None
    import json
    from dataclasses import asdict

    from repro.store.runstore import RunStore
    from repro.store.writer import StoreWriter

    if resume:
        store = RunStore.open(config.store_dir)
        return StoreWriter(store, recovery=store.recover(repair=True))
    store = RunStore.create(
        config.store_dir,
        # JSON round-trip normalizes tuples to lists, so the stored
        # config is exactly what experiment_config_from_document reads.
        config=json.loads(json.dumps(asdict(config))),
        cooldown_ttl=EngineConfig().cooldown,
    )
    return StoreWriter(store)


def experiment_config_from_document(document: dict, *,
                                    store_dir: Optional[str] = None
                                    ) -> ExperimentConfig:
    """Rebuild an :class:`ExperimentConfig` from its stored JSON form.

    Inverse of the ``asdict`` + JSON round-trip persisted in a run
    store's ``meta.json``; ``store_dir`` overrides the recorded path so
    a moved run directory resumes in place.
    """
    campaign_doc = dict(document["campaign"])
    campaign_doc["deployment"] = tuple(campaign_doc["deployment"])
    protocols = document.get("protocols")
    return ExperimentConfig(
        world=WorldConfig(**document["world"]),
        campaign=CampaignConfig(**campaign_doc),
        hitlist=HitlistConfig(**document["hitlist"]),
        include_rl=document["include_rl"],
        rl_days=document["rl_days"],
        gap_days=document["gap_days"],
        lead_days=document["lead_days"],
        final_days=document["final_days"],
        scan_seed=document["scan_seed"],
        scan_shards=document["scan_shards"],
        parallel_workers=document.get("parallel_workers", 0),
        protocols=tuple(protocols) if protocols is not None else None,
        store_dir=store_dir if store_dir is not None
        else document.get("store_dir"),
        checkpoint_days=document.get("checkpoint_days", 7),
    )


def _campaign_targets(queue: RealTimeScanQueue,
                      hitlist_scan: Optional[ScanResults] = None) -> dict:
    """Cumulative targets-seen denominators for mark records."""
    targets = {"ntp": queue.results.targets_seen}
    if hitlist_scan is not None:
        targets["hitlist"] = hitlist_scan.targets_seen
    return targets


def _checkpoint_state(config: ExperimentConfig, world,
                      campaign: CollectionCampaign,
                      queue: RealTimeScanQueue, engines: list,
                      phase: str, day: int) -> dict:
    """The JSON state snapshot stored in a checkpoint.

    Recovery does not *load* this state (deterministic replay rebuilds
    it); it exists for offline inspection and as the compaction anchor.
    """
    from repro.obs.metrics import current_registry

    report = campaign.report()
    cooldowns: dict = {}
    for engine in engines:
        cooldowns.update(engine.cooldown_snapshots())
    return {
        "phase": phase,
        "day": day,
        "clock": world.clock.now(),
        "campaign": {
            "days_run": report.days_run,
            "addresses": len(campaign.dataset),
            "requests": campaign.dataset.total_requests,
            "wire_queries": report.wire_queries,
            "fast_queries": report.fast_queries,
            "per_server_requests": report.per_server_requests,
        },
        "targets": _campaign_targets(queue),
        "cooldowns": cooldowns,
        "metrics": current_registry().snapshot(),
    }


def _run_experiment(config: ExperimentConfig, writer=None,
                    pool: Optional[WorkerPool] = None) -> ExperimentResult:
    world = build_world(config.world)

    rl_dataset: Optional[CollectedDataset] = None
    if config.include_rl:
        rl_campaign = CollectionCampaign(world, rl_2022_config(config.rl_days))
        rl_dataset = rl_campaign.run().dataset
        rl_campaign.deregister_all()

    for _ in range(config.gap_days):
        world.churn.step_day()

    from repro.scan.ethics import publish_scanner_identity

    registry = default_registry()
    if config.protocols is not None:
        registry = registry.subset(*config.protocols)

    # One scanner identity serves both scan paths (the paper scans the
    # NTP feed and the hitlist from the same research vantage point).
    scanner_source = _scanner_source(world)
    publish_scanner_identity(world.network, scanner_source, world.rdns,
                             ptr_name=SCANNER_PTR_NAME)
    engine = _build_engine(
        world, scanner_source,
        EngineConfig(drive_clock=False, seed=config.scan_seed),
        registry, config.scan_shards, name="ntp",
        workers=config.parallel_workers, pool=pool,
    )
    queue = RealTimeScanQueue(engine)
    campaign = CollectionCampaign(world, config.campaign, scan_queue=queue)
    if writer is not None:
        # The queue subscribed first (campaign construction), so each
        # sighting's admit/grab records land before its sighting record
        # — in both original and replayed runs, since it is the same
        # code path both times.
        engine.attach_store(writer, label="ntp")
        writer.attach(campaign.dataset.bus)
        writer.mark("setup", 0, world.clock.now(), {})

    engines = [engine]
    for phase, days in (("lead", config.lead_days),
                        ("final", config.final_days)):
        if phase == "final":
            # Hitlist snapshot between the lead and final weeks.
            hitlist = build_hitlist(world, config.hitlist)
        for day in range(1, days + 1):
            campaign.advance_days(1)
            if writer is not None:
                writer.mark(phase, day, world.clock.now(),
                            _campaign_targets(queue))
                if day % config.checkpoint_days == 0:
                    writer.checkpoint(lambda: _checkpoint_state(
                        config, world, campaign, queue, engines, phase, day))

    hitlist_engine = _build_engine(
        world, scanner_source,
        EngineConfig(drive_clock=False, seed=config.scan_seed ^ 0xFF),
        registry, config.scan_shards, name="hitlist",
        workers=config.parallel_workers, pool=pool,
    )
    if writer is not None:
        hitlist_engine.attach_store(writer, label="hitlist")
        engines.append(hitlist_engine)
    hitlist_scan = hitlist_engine.run(sorted(hitlist.full), label="hitlist")
    parallel_timing = None
    if config.parallel_workers > 0:
        parallel_timing = {
            "workers": config.parallel_workers,
            "hitlist": hitlist_engine.last_run_timing,
        }

    if writer is not None:
        writer.mark("done", 0, world.clock.now(),
                    _campaign_targets(queue, hitlist_scan))
        writer.checkpoint(lambda: _checkpoint_state(
            config, world, campaign, queue, engines, "done", 0))
        writer.close()

    return ExperimentResult(
        world=world,
        ntp_dataset=campaign.dataset,
        ntp_scan=queue.results,
        hitlist=hitlist,
        hitlist_scan=hitlist_scan,
        rl_dataset=rl_dataset,
        campaign=campaign,
        config=config,
        parallel=parallel_timing,
    )
