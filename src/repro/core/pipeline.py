"""End-to-end experiment orchestration.

:func:`run_experiment` reproduces the paper's full measurement
timeline on one simulated world:

1. *(optional)* an **R&L-style collection** (their 2022 study) — used
   only for Table 1's overlap rows;
2. a **gap period** in which the world churns on (the two years between
   the studies, compressed);
3. **our collection campaign** with real-time scanning of every newly
   sourced address (three collection weeks, then a final week in which
   collection continues *and* the freshly built full hitlist is scanned
   — matching the paper's August 9–16 window);
4. the assembled :class:`ExperimentResult`, the single object every
   table/figure bench consumes.

Both scan paths run on the staged runtime (`repro.runtime`): the
campaign's dataset publishes ``AddressSighted`` events, the real-time
queue consumes them as a bounded stage, and the engines draw their
probe set from a pluggable registry.  ``scan_shards > 1`` fans both
engines out across hash-partitioned shards with deterministic merged
results.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.campaign import CampaignConfig, CollectionCampaign, rl_2022_config
from repro.core.collector import CollectedDataset
from repro.core.comparison import ComparisonTable, DatasetComparison
from repro.core.realtime import RealTimeScanQueue
from repro.obs.metrics import MetricsRegistry, use_registry
from repro.runtime.registry import ProbeRegistry, default_registry
from repro.runtime.sharding import ShardedScanEngine
from repro.scan.engine import EngineConfig, ScanEngine
from repro.scan.result import PROTOCOLS, ScanResults
from repro.world.hitlist import Hitlist, HitlistConfig, build_hitlist
from repro.world.population import World, WorldConfig, build_world


@dataclass
class ExperimentConfig:
    """Everything needed to run the full study."""

    world: WorldConfig = field(default_factory=WorldConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    hitlist: HitlistConfig = field(default_factory=HitlistConfig)
    #: Run the R&L-style pre-campaign for Table 1's overlap rows.
    include_rl: bool = True
    rl_days: int = 10
    #: Churn-only days between the R&L study and ours.
    gap_days: int = 14
    #: Collection days before the hitlist snapshot + final week.
    lead_days: int = 21
    final_days: int = 7
    scan_seed: int = 0x51AB
    #: Fan each scan engine out over N hash-partitioned shards (1 = the
    #: single-engine path).  Embedded-mode results are shard-invariant.
    scan_shards: int = 1
    #: Restrict the campaign's probe profile to these protocols (None =
    #: the paper's full eight-protocol registry).
    protocols: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        # Validation lives on the config (not the CLI handler) so the
        # api facade and direct library construction share it.
        if self.scan_shards < 1:
            raise ValueError(
                f"scan_shards must be >= 1, got {self.scan_shards}")
        if self.protocols is not None:
            if not self.protocols:
                raise ValueError(
                    "protocols must name at least one protocol (or be None "
                    "for the full registry)")
            unknown = [name for name in self.protocols
                       if name not in PROTOCOLS]
            if unknown:
                raise ValueError(
                    f"unknown protocol(s) {', '.join(sorted(unknown))}; "
                    f"choose from {', '.join(PROTOCOLS)}")


@dataclass
class ExperimentResult:
    """All artefacts of one experiment run."""

    world: World
    ntp_dataset: CollectedDataset
    ntp_scan: ScanResults
    hitlist: Hitlist
    hitlist_scan: ScanResults
    rl_dataset: Optional[CollectedDataset]
    campaign: CollectionCampaign
    config: ExperimentConfig
    #: The run's metrics registry (every stage/scheduler/probe series).
    metrics: Optional[MetricsRegistry] = None

    def comparison(self) -> DatasetComparison:
        """The Table 1 comparator over every dataset in this run."""
        comparison = DatasetComparison(self.world.asdb)
        comparison.add("ntp", self.ntp_dataset.addresses)
        if self.rl_dataset is not None:
            comparison.add("rl", self.rl_dataset.addresses)
        comparison.add("hitlist-full", self.hitlist.full)
        comparison.add("hitlist-public", self.hitlist.public)
        return comparison

    def table1(self) -> ComparisonTable:
        return self.comparison().table("ntp")


#: The study scanner's self-identifying PTR name (Appendix A.2.2).
SCANNER_PTR_NAME = "ipv6-research-scan.comsys.example.edu"


def _scanner_source(world: World) -> int:
    """Allocate the study's scanner address inside a research AS.

    Placing the scanner in identifiable research address space mirrors
    the paper's ethics setup (reverse-DNS + info pages) and lets the
    Section 5 detector classify our own scans as an overt actor.  The
    study runs *one* scanner identity: allocating a second address
    under the same PTR name is a bug (the seed did exactly that for the
    hitlist engine), so duplicate registration is rejected here.
    """
    for system in world.asdb.systems:
        if system.category == "Educational/Research":
            source = world.allocate_prefix64(system.number) | 0x10
            existing = world.rdns.addresses_of(SCANNER_PTR_NAME)
            if existing:
                raise RuntimeError(
                    f"scanner identity {SCANNER_PTR_NAME!r} already "
                    f"registered to {existing[0]:#x}; reuse that source")
            world.rdns.register(source, SCANNER_PTR_NAME)
            return source
    # Fallback: infrastructure space (no research AS configured).
    return int("20010db8000000000000000000000010", 16)


def _build_engine(world: World, source: int, config: EngineConfig,
                  registry: ProbeRegistry, shards: int, name: str):
    """One scan engine — sharded when the experiment asks for it."""
    if shards > 1:
        return ShardedScanEngine(world.network, source, config,
                                 registry=registry, shards=shards, name=name)
    return ScanEngine(world.network, source, config, registry=registry,
                      name=name)


def run_experiment(config: Optional[ExperimentConfig] = None,
                   metrics: Optional[MetricsRegistry] = None) -> ExperimentResult:
    """Run the complete study; deterministic in ``config``.

    Every run records into its own :class:`MetricsRegistry` (or the one
    passed as ``metrics``), returned on ``result.metrics`` — identical
    snapshots for identical configs, so runs can be diffed.
    """
    config = config or ExperimentConfig()
    registry = metrics if metrics is not None else MetricsRegistry()
    with use_registry(registry):
        result = _run_experiment(config)
    result.metrics = registry
    return result


def _run_experiment(config: ExperimentConfig) -> ExperimentResult:
    world = build_world(config.world)

    rl_dataset: Optional[CollectedDataset] = None
    if config.include_rl:
        rl_campaign = CollectionCampaign(world, rl_2022_config(config.rl_days))
        rl_dataset = rl_campaign.run().dataset
        rl_campaign.deregister_all()

    for _ in range(config.gap_days):
        world.churn.step_day()

    from repro.scan.ethics import publish_scanner_identity

    registry = default_registry()
    if config.protocols is not None:
        registry = registry.subset(*config.protocols)

    # One scanner identity serves both scan paths (the paper scans the
    # NTP feed and the hitlist from the same research vantage point).
    scanner_source = _scanner_source(world)
    publish_scanner_identity(world.network, scanner_source, world.rdns,
                             ptr_name=SCANNER_PTR_NAME)
    engine = _build_engine(
        world, scanner_source,
        EngineConfig(drive_clock=False, seed=config.scan_seed),
        registry, config.scan_shards, name="ntp",
    )
    queue = RealTimeScanQueue(engine)
    campaign = CollectionCampaign(world, config.campaign, scan_queue=queue)
    campaign.advance_days(config.lead_days)

    # Hitlist snapshot, then the final shared week: collection continues
    # while a second engine walks the full hitlist.
    hitlist = build_hitlist(world, config.hitlist)
    campaign.advance_days(config.final_days)
    hitlist_engine = _build_engine(
        world, scanner_source,
        EngineConfig(drive_clock=False, seed=config.scan_seed ^ 0xFF),
        registry, config.scan_shards, name="hitlist",
    )
    hitlist_scan = hitlist_engine.run(sorted(hitlist.full), label="hitlist")

    return ExperimentResult(
        world=world,
        ntp_dataset=campaign.dataset,
        ntp_scan=queue.results,
        hitlist=hitlist,
        hitlist_scan=hitlist_scan,
        rl_dataset=rl_dataset,
        campaign=campaign,
        config=config,
    )
