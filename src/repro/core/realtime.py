"""Real-time coupling between address collection and active scanning.

The paper feeds every *newly* sourced address into zgrab2 immediately —
a necessity, not an optimization: end-user addresses churn so fast that
a batch scan hours later would mostly probe dead addresses (Section 6,
"aggregating NTP-sourced addresses into a list is not useful").

:class:`RealTimeScanQueue` is a :class:`~repro.runtime.stage.Stage` on
the sourcing→scan event bus: it subscribes to
:class:`~repro.runtime.bus.AddressSighted`, buffers sightings in a
:class:`~repro.runtime.stage.BoundedQueue` (real scanner intakes are
finite — when sourcing outruns the scanner, targets are *dropped and
accounted*, not silently queued forever), and drives a
:class:`~repro.scan.engine.ScanEngine` in embedded mode.  Sampled-out
and dropped targets still count toward ``results.targets_seen`` so hit
rates keep the right denominator.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Mapping, Optional, Type, Union

from repro.core.collector import CollectedDataset
from repro.runtime.bus import AddressSighted, Event, EventBus, Handler
from repro.runtime.stage import BoundedQueue, Stage, StageStats
from repro.scan.result import ScanResults

#: Default intake capacity: generous enough that the paper-shaped
#: campaigns never drop, small enough that runaway sourcing surfaces
#: as accounted drops instead of unbounded memory.
DEFAULT_CAPACITY = 65_536


@dataclass
class RealTimeStats(StageStats):
    """Counters for the coupling layer.

    Extends the uniform stage counters (``received``, ``processed``,
    ``dropped``) with the seed-era names the benches report.
    """

    triggered: int = 0
    scanned: int = 0
    suppressed: int = 0


class RealTimeScanQueue(Stage):
    """Scans every newly collected address as it arrives."""

    name = "realtime-scan"

    def __init__(self, engine, results: Optional[ScanResults] = None,
                 *, sample_rate: float = 1.0, seed: int = 0x5EED,
                 capacity: int = DEFAULT_CAPACITY,
                 auto_drain: bool = True) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        super().__init__()
        self.engine = engine
        self.results = results if results is not None else ScanResults(label="ntp")
        self.sample_rate = sample_rate
        self.stats = RealTimeStats()
        self.queue: BoundedQueue = BoundedQueue(capacity)
        #: Drain after every intake (the paper's real-time behaviour).
        #: Disable to batch intakes and drain explicitly — the staleness
        #: ablation and the backpressure tests do.
        self.auto_drain = auto_drain
        self._rng = random.Random(seed)

    # -- stage wiring -----------------------------------------------------

    def subscriptions(self) -> Mapping[Type[Event], Handler]:
        return {AddressSighted: self._on_sighting}

    def attach(self, source: Union[CollectedDataset, EventBus]) -> "RealTimeScanQueue":
        """Subscribe to a dataset's (or bus's) first-sighting events."""
        bus = source.bus if isinstance(source, CollectedDataset) else source
        super().attach(bus)
        return self

    # -- intake -----------------------------------------------------------

    def _on_sighting(self, event: AddressSighted) -> None:
        self.mark_received()
        self.stats.triggered += 1
        if self.sample_rate < 1.0 and self._rng.random() > self.sample_rate:
            self.stats.suppressed += 1
            # Still count the target so hit rates use the right denominator.
            self.results.targets_seen += 1
            return
        if not self.queue.push(event):
            # Intake full: the scanner cannot keep up.  Account the drop
            # and keep the denominator consistent with the other paths.
            self.mark_dropped()
            self.results.targets_seen += 1
            return
        self.note_queue_depth(len(self.queue))
        if self.auto_drain:
            self.drain()

    def drain(self, limit: int = -1) -> int:
        """Scan up to ``limit`` queued targets (all when negative)."""
        drained = 0
        for event in self.queue.drain(limit):
            drained += 1
            self.mark_processed()
            if self.engine.feed(event.address, self.results):
                self.stats.scanned += 1
        return drained

    @property
    def pending(self) -> int:
        """Targets waiting in the intake queue."""
        return len(self.queue)
