"""Real-time coupling between address collection and active scanning.

The paper feeds every *newly* sourced address into zgrab2 immediately —
a necessity, not an optimization: end-user addresses churn so fast that
a batch scan hours later would mostly probe dead addresses (Section 6,
"aggregating NTP-sourced addresses into a list is not useful").

:class:`RealTimeScanQueue` subscribes to a dataset's first-sighting
hook and drives a :class:`~repro.scan.engine.ScanEngine` in embedded
mode.  A configurable reaction delay models the scanner's queueing; the
effect of raising it is measurable with the staleness ablation bench.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.collector import CollectedDataset
from repro.scan.engine import ScanEngine
from repro.scan.result import ScanResults


@dataclass
class RealTimeStats:
    """Counters for the coupling layer."""

    triggered: int = 0
    scanned: int = 0
    suppressed: int = 0


class RealTimeScanQueue:
    """Scans every newly collected address as it arrives."""

    def __init__(self, engine: ScanEngine, results: Optional[ScanResults] = None,
                 *, sample_rate: float = 1.0, seed: int = 0x5EED) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError(f"sample_rate must be in (0, 1], got {sample_rate}")
        self.engine = engine
        self.results = results if results is not None else ScanResults(label="ntp")
        self.sample_rate = sample_rate
        self.stats = RealTimeStats()
        self._rng = random.Random(seed)

    def attach(self, dataset: CollectedDataset) -> None:
        """Subscribe to the dataset's first-sighting events."""
        dataset.add_new_address_hook(self._on_new_address)

    def _on_new_address(self, address: int, time: float,
                        server_location: str) -> None:
        self.stats.triggered += 1
        if self.sample_rate < 1.0 and self._rng.random() > self.sample_rate:
            self.stats.suppressed += 1
            # Still count the target so hit rates use the right denominator.
            self.results.targets_seen += 1
            return
        if self.engine.feed(address, self.results):
            self.stats.scanned += 1
