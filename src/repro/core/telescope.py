"""The NTP-sourcing telescope (Section 5 methodology).

The telescope continuously queries pool servers, using a **distinct,
never-before-used source address per query** inside a dedicated bait
prefix.  Any inbound connection attempt on a bait address can then be
attributed to exactly one NTP server — the only place that address was
ever revealed.  A guard band of neighbouring, never-used addresses is
monitored for scattering, separating NTP-sourced scans from brute-force
or random IPv6 scanning that happened to wander into the prefix.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ipv6 import address as addrmod
from repro.net.packet import PacketRecord, Transport
from repro.net.simnet import Network
from repro.ntp.client import NtpClient
from repro.ntp.pool import NtpPool
from repro.ntp.server import NTP_PORT


@dataclass(frozen=True)
class BaitRecord:
    """One bait address and the single server it was revealed to."""

    address: int
    server: int
    query_time: float
    answered: bool


@dataclass(frozen=True)
class InboundEvent:
    """One unsolicited inbound packet observed inside the bait prefix."""

    time: float
    src: int
    dst: int
    dst_port: int
    transport: str
    #: None when the destination was never used for a query (scatter).
    bait: Optional[BaitRecord] = None

    @property
    def is_scatter(self) -> bool:
        return self.bait is None


class Telescope:
    """Owns a bait /48, queries servers, and records inbound traffic."""

    def __init__(self, network: Network, *,
                 prefix48: Optional[int] = None) -> None:
        self.network = network
        self.prefix48 = (prefix48 if prefix48 is not None
                         else addrmod.parse("2001:6d0:babe::"))
        self._iid_counter = itertools.count(0x1000)
        self._baits: Dict[int, BaitRecord] = {}
        self.events: List[InboundEvent] = []
        network.add_tap(self._tap)

    # -- bait management --------------------------------------------------

    def _fresh_bait(self) -> int:
        """Allocate a never-used address: fresh /64 within the bait /48."""
        index = next(self._iid_counter)
        return self.prefix48 + (index << 64) + 0x42

    def query(self, server: int) -> BaitRecord:
        """Query one pool server from a fresh bait address."""
        bait = self._fresh_bait()
        client = NtpClient(self.network, bait)
        result = client.query(server)
        record = BaitRecord(
            address=bait, server=server,
            query_time=self.network.clock.now(),
            answered=result is not None,
        )
        self._baits[bait] = record
        return record

    def sweep(self, pool: NtpPool) -> List[BaitRecord]:
        """Query every registered pool server once (one bait each)."""
        return [self.query(server.address) for server in pool.servers]

    @property
    def baits(self) -> Tuple[BaitRecord, ...]:
        return tuple(self._baits.values())

    def response_rate(self) -> float:
        """Share of queries answered (the paper saw ~86 %)."""
        if not self._baits:
            return 0.0
        answered = sum(1 for record in self._baits.values() if record.answered)
        return answered / len(self._baits)

    # -- capture -----------------------------------------------------------

    def _in_prefix(self, address: int) -> bool:
        return addrmod.prefix(address, 48) == self.prefix48

    def _tap(self, record: PacketRecord) -> None:
        if not self._in_prefix(record.dst):
            return
        if record.transport is Transport.UDP and record.src_port == NTP_PORT:
            return  # our own query's NTP response
        if not (record.syn or record.transport is Transport.UDP):
            return  # only connection attempts / datagrams, not stream data
        bait = self._baits.get(record.dst)
        if bait is not None and record.time <= bait.query_time:
            return  # traffic preceding the reveal cannot be NTP-sourced
        self.events.append(InboundEvent(
            time=record.time,
            src=record.src,
            dst=record.dst,
            dst_port=record.dst_port,
            transport=record.transport.value,
            bait=bait,
        ))

    # -- views --------------------------------------------------------------

    def matched_events(self) -> List[InboundEvent]:
        """Inbound events attributable to an NTP query."""
        return [event for event in self.events if event.bait is not None]

    def scatter_events(self) -> List[InboundEvent]:
        """Inbound events on never-queried addresses."""
        return [event for event in self.events if event.bait is None]

    def match_rate(self) -> float:
        """Share of inbound events matched to a bait (paper: 100 %)."""
        if not self.events:
            return 0.0
        return len(self.matched_events()) / len(self.events)
