"""Static reference data: release catalogues and title pools."""
