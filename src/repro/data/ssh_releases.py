"""Catalogue of OpenSSH builds per distribution release.

Debian-derived distributions encode their package patch level in the
SSH identification string (``OpenSSH_9.2p1 Debian-2+deb12u3``), and —
because stable updates only ship security/important fixes — the paper
counts every non-latest patch level as outdated (Section 4.4.1).

This table plays the role of the public Debian/Ubuntu/Raspbian
changelogs: the world generator samples device banners from it, and the
analysis judges up-to-dateness against it.  Patch levels are ordered
oldest → newest; the last entry is the *latest* at scan time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class SshRelease:
    """OpenSSH builds of one distro release (e.g. Debian 12)."""

    distro: str
    release: str
    upstream: str
    patches: Tuple[str, ...]

    @property
    def latest(self) -> str:
        return self.patches[-1]

    def banner_software(self) -> str:
        return f"OpenSSH_{self.upstream}"

    def banner_comment(self, patch: str) -> str:
        return f"{self.distro}-{patch}"


RELEASES: Tuple[SshRelease, ...] = (
    SshRelease("Ubuntu", "24.04", "9.6p1",
               ("3ubuntu13", "3ubuntu13.3", "3ubuntu13.4", "3ubuntu13.5")),
    SshRelease("Ubuntu", "22.04", "8.9p1",
               ("3ubuntu0.6", "3ubuntu0.7", "3ubuntu0.10")),
    SshRelease("Ubuntu", "20.04", "8.2p1",
               ("4ubuntu0.9", "4ubuntu0.10", "4ubuntu0.11")),
    SshRelease("Debian", "12", "9.2p1",
               ("2", "2+deb12u1", "2+deb12u2", "2+deb12u3")),
    SshRelease("Debian", "11", "8.4p1",
               ("5", "5+deb11u1", "5+deb11u2", "5+deb11u3")),
    SshRelease("Debian", "10", "7.9p1",
               ("10", "10+deb10u2", "10+deb10u3", "10+deb10u4")),
    SshRelease("Raspbian", "12", "9.2p1",
               ("2", "2+deb12u1", "2+deb12u2", "2+deb12u3")),
    SshRelease("Raspbian", "11", "8.4p1",
               ("5", "5+deb11u1", "5+deb11u3")),
    SshRelease("Raspbian", "10", "7.9p1",
               ("10", "10+deb10u2", "10+deb10u4")),
)

#: (distro, upstream) → latest patch string; the analyst's reference.
_LATEST: Dict[Tuple[str, str], str] = {
    (release.distro, release.upstream): release.latest for release in RELEASES
}


def latest_patch(distro: str, upstream: str) -> Optional[str]:
    """Latest known patch level for a (distro, upstream) pair."""
    return _LATEST.get((distro, upstream))


def is_outdated(distro: str, upstream: str, patch: str) -> Optional[bool]:
    """Whether a banner's patch level is behind the latest.

    Returns ``None`` for unknown (distro, upstream) combinations —
    the analysis then skips the host, as the paper does for servers
    whose patch level it cannot assess.
    """
    latest = latest_patch(distro, upstream)
    if latest is None:
        return None
    return patch != latest


def releases_for(distro: str) -> Tuple[SshRelease, ...]:
    """All releases of one distribution."""
    return tuple(r for r in RELEASES if r.distro == distro)
