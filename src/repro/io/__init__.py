"""Persistence: JSONL formats for datasets and scan results."""

from repro.io.jsonl import (
    FORMAT_VERSION,
    FormatError,
    load_dataset,
    load_results,
    save_dataset,
    save_results,
)

__all__ = [
    "FORMAT_VERSION",
    "FormatError",
    "load_dataset",
    "load_results",
    "save_dataset",
    "save_results",
]
