"""Persistence: JSONL formats for datasets, scan results, run reports."""

from repro.io.jsonl import (
    FORMAT_VERSION,
    FormatError,
    document_to_json,
    grab_from_json,
    grab_to_json,
    load_dataset,
    load_results,
    load_run_report,
    save_dataset,
    save_results,
    save_run_report,
    to_canonical_json,
)

__all__ = [
    "FORMAT_VERSION",
    "FormatError",
    "document_to_json",
    "grab_from_json",
    "grab_to_json",
    "load_dataset",
    "load_results",
    "load_run_report",
    "save_dataset",
    "save_results",
    "save_run_report",
    "to_canonical_json",
]
