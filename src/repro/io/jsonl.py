"""JSONL persistence for datasets and scan results.

zgrab2 emits one JSON object per grab; the paper's pipeline stores
collected addresses and grabs for offline analysis.  This module
mirrors that: line-oriented JSON with stable, versioned record shapes,
so campaigns can be saved, shipped, and re-analyzed without re-running
the simulation.

Addresses serialize in RFC 5952 text form (readable, diffable);
fingerprints as hex.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, Iterator, Optional, Union

from repro.core.collector import AddressObservation, CollectedDataset
from repro.ipv6 import address as addrmod
from repro.obs.runreport import RunReport
from repro.scan.result import (
    BrokerGrab,
    CoapGrab,
    HttpGrab,
    ScanResults,
    SshGrab,
    TlsObservation,
)

#: Format version stamped into every file's header record.
FORMAT_VERSION = 1

PathLike = Union[str, Path]


class FormatError(ValueError):
    """Raised when a file does not match the expected record shapes."""


def _header(kind: str, label: str) -> Dict:
    return {"type": "header", "kind": kind, "label": label,
            "version": FORMAT_VERSION}


def _check_header(record: Dict, kind: str) -> str:
    if record.get("type") != "header" or record.get("kind") != kind:
        raise FormatError(f"not a {kind} file: header {record!r}")
    if record.get("version") != FORMAT_VERSION:
        raise FormatError(f"unsupported format version {record.get('version')}")
    return record.get("label", "")


def to_canonical_json(record: Dict) -> str:
    """One record in this module's canonical form (sorted keys, raw
    unicode, no trailing newline).

    Every JSONL writer in the repo — including the ``repro.store`` WAL,
    whose per-record CRCs are computed over this exact string — goes
    through here, so a record has one byte representation everywhere.
    """
    return json.dumps(record, ensure_ascii=False, sort_keys=True)


def _write_lines(path: PathLike, records: Iterable[Dict]) -> int:
    # Every record — including the final one — is written as a single
    # ``line + "\n"`` string, so files always end with a newline and a
    # record is either fully present or fully absent after a torn write.
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(to_canonical_json(record) + "\n")
            count += 1
    return count


def _read_lines(path: PathLike) -> Iterator[Dict]:
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                raise FormatError(
                    f"{path}:{line_number}: malformed JSON") from exc


# -- collected datasets ----------------------------------------------------

def save_dataset(dataset: CollectedDataset, path: PathLike) -> int:
    """Write a collected dataset; returns the number of records."""

    def records() -> Iterator[Dict]:
        yield _header("dataset", dataset.label)
        for location, addresses in sorted(dataset.per_server.items()):
            yield {"type": "server", "location": location,
                   "addresses": len(addresses)}
        for value, observation in dataset.observations.items():
            record = {
                "type": "address",
                "addr": addrmod.format_address(value),
                "first_seen": observation.first_seen,
                "last_seen": observation.last_seen,
                "requests": observation.requests,
                "servers": sorted(
                    location
                    for location, members in dataset.per_server.items()
                    if value in members),
            }
            yield record

    return _write_lines(path, records())


def load_dataset(path: PathLike) -> CollectedDataset:
    """Read a dataset written by :func:`save_dataset`."""
    records = _read_lines(path)
    try:
        label = _check_header(next(records), "dataset")
    except StopIteration as exc:
        raise FormatError(f"{path}: empty file") from exc
    dataset = CollectedDataset(label=label)
    for record in records:
        if record.get("type") == "server":
            dataset.per_server.setdefault(record["location"], set())
        elif record.get("type") == "address":
            value = addrmod.parse(record["addr"])
            dataset.observations[value] = AddressObservation(
                first_seen=record["first_seen"],
                last_seen=record["last_seen"],
                requests=record["requests"],
            )
            dataset.total_requests += record["requests"]
            for location in record.get("servers", []):
                dataset.per_server.setdefault(location, set()).add(value)
        else:
            raise FormatError(f"unknown record type {record.get('type')!r}")
    return dataset


# -- scan results -------------------------------------------------------------

def _tls_to_json(tls: Optional[TlsObservation]) -> Optional[Dict]:
    if tls is None:
        return None
    return {
        "ok": tls.ok,
        "alert": tls.alert,
        "fingerprint": tls.fingerprint.hex() if tls.fingerprint else None,
        "subject": tls.subject,
        "issuer": tls.issuer,
        "self_signed": tls.self_signed,
        "expired": tls.expired,
    }


def _tls_from_json(record: Optional[Dict]) -> Optional[TlsObservation]:
    if record is None:
        return None
    fingerprint = record.get("fingerprint")
    return TlsObservation(
        ok=record["ok"],
        alert=record.get("alert"),
        fingerprint=bytes.fromhex(fingerprint) if fingerprint else None,
        subject=record.get("subject"),
        issuer=record.get("issuer"),
        self_signed=record.get("self_signed"),
        expired=record.get("expired"),
    )


def grab_to_json(grab) -> Dict:
    base = {"addr": addrmod.format_address(grab.address),
            "time": grab.time, "ok": grab.ok}
    if isinstance(grab, HttpGrab):
        base.update(type="http", port=grab.port, status=grab.status,
                    title=grab.title, server=grab.server,
                    tls=_tls_to_json(grab.tls))
    elif isinstance(grab, SshGrab):
        base.update(
            type="ssh", banner=grab.banner, software=grab.software,
            comment=grab.comment, key_algorithm=grab.key_algorithm,
            key_fingerprint=(grab.key_fingerprint.hex()
                             if grab.key_fingerprint else None))
    elif isinstance(grab, BrokerGrab):
        base.update(type="broker", protocol=grab.protocol, port=grab.port,
                    open_access=grab.open_access, detail=grab.detail,
                    tls=_tls_to_json(grab.tls))
    elif isinstance(grab, CoapGrab):
        base.update(type="coap", resources=list(grab.resources))
    else:
        raise TypeError(f"not a grab: {grab!r}")
    return base


def grab_from_json(record: Dict):
    address = addrmod.parse(record["addr"])
    kind = record.get("type")
    if kind == "http":
        return HttpGrab(
            address=address, time=record["time"], port=record["port"],
            ok=record["ok"], status=record.get("status"),
            title=record.get("title"), server=record.get("server"),
            tls=_tls_from_json(record.get("tls")))
    if kind == "ssh":
        fingerprint = record.get("key_fingerprint")
        return SshGrab(
            address=address, time=record["time"], ok=record["ok"],
            banner=record.get("banner"), software=record.get("software"),
            comment=record.get("comment"),
            key_algorithm=record.get("key_algorithm"),
            key_fingerprint=bytes.fromhex(fingerprint)
            if fingerprint else None)
    if kind == "broker":
        return BrokerGrab(
            address=address, time=record["time"], port=record["port"],
            protocol=record["protocol"], ok=record["ok"],
            open_access=record.get("open_access"),
            detail=record.get("detail"),
            tls=_tls_from_json(record.get("tls")))
    if kind == "coap":
        return CoapGrab(address=address, time=record["time"],
                        ok=record["ok"],
                        resources=tuple(record.get("resources", ())))
    raise FormatError(f"unknown grab type {kind!r}")


def save_results(results: ScanResults, path: PathLike) -> int:
    """Write scan results (zgrab2-style JSONL); returns record count."""

    def records() -> Iterator[Dict]:
        yield _header("scan-results", results.label)
        yield {"type": "meta", "targets_seen": results.targets_seen}
        for protocol in ("http", "https", "ssh", "mqtt", "mqtts",
                         "amqp", "amqps", "coap"):
            for grab in results.grabs(protocol):
                yield grab_to_json(grab)

    return _write_lines(path, records())


def document_to_json(document: Dict) -> str:
    """Serialize one JSON document with this module's conventions.

    The CLI's ``--format json`` output goes through here so command
    output and persisted files share one serializer (sorted keys,
    unescaped unicode).
    """
    return json.dumps(document, ensure_ascii=False, sort_keys=True,
                      indent=2)


# -- run reports ------------------------------------------------------------

def save_run_report(report: RunReport, path: PathLike) -> int:
    """Write a run report as line-diffable JSONL; returns record count.

    One record per metric series and per table, so ``diff`` between two
    report files shows exactly which series moved.
    """

    def records() -> Iterator[Dict]:
        yield _header("run-report", report.command)
        yield {"type": "meta", "command": report.command,
               "report_version": report.version}
        yield {"type": "config", "config": report.config}
        for kind in ("counters", "gauges", "histograms"):
            for entry in report.metrics.get(kind, ()):
                yield {"type": "metric", "kind": kind, **entry}
        for name in sorted(report.tables):
            yield {"type": "table", "name": name,
                   "data": report.tables[name]}

    return _write_lines(path, records())


def load_run_report(path: PathLike) -> RunReport:
    """Read a report written by :func:`save_run_report`."""
    records = _read_lines(path)
    try:
        _check_header(next(records), "run-report")
    except StopIteration as exc:
        raise FormatError(f"{path}: empty file") from exc
    command, version = "", None
    config: Dict = {}
    metrics: Dict[str, list] = {"counters": [], "gauges": [],
                                "histograms": []}
    tables: Dict = {}
    for record in records:
        kind = record.get("type")
        if kind == "meta":
            command = record.get("command", "")
            version = record.get("report_version")
        elif kind == "config":
            config = record.get("config", {})
        elif kind == "metric":
            series_kind = record.get("kind")
            if series_kind not in metrics:
                raise FormatError(f"unknown metric kind {series_kind!r}")
            entry = {key: value for key, value in record.items()
                     if key not in ("type", "kind")}
            metrics[series_kind].append(entry)
        elif kind == "table":
            tables[record["name"]] = record.get("data")
        else:
            raise FormatError(f"unknown record type {kind!r}")
    return RunReport.from_document({
        "command": command, "version": version, "config": config,
        "metrics": metrics, "tables": tables,
    })


def load_results(path: PathLike) -> ScanResults:
    """Read results written by :func:`save_results`."""
    records = _read_lines(path)
    try:
        label = _check_header(next(records), "scan-results")
    except StopIteration as exc:
        raise FormatError(f"{path}: empty file") from exc
    results = ScanResults(label=label)
    for record in records:
        if record.get("type") == "meta":
            results.targets_seen = record.get("targets_seen", 0)
            continue
        results.add(grab_from_json(record))
    return results
