"""IPv6 address substrate: parsing, IID structure, EUI-64, aggregation."""

from repro.ipv6.address import (
    ADDRESS_BITS,
    ADDRESS_SPACE,
    format_address,
    format_network,
    network_key,
    parse,
    parse_network,
    prefix,
)
from repro.ipv6.columnar import AddressColumn, available_backends, resolve_backend
from repro.ipv6.eui64 import extract_mac, format_mac, mac_to_iid, parse_mac
from repro.ipv6.iid import CLASSES, classify_iid, profile
from repro.ipv6.oui import OuiRegistry, default_registry
from repro.ipv6.aggregation import PrefixAggregator, overlap

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_SPACE",
    "AddressColumn",
    "CLASSES",
    "OuiRegistry",
    "PrefixAggregator",
    "available_backends",
    "resolve_backend",
    "classify_iid",
    "default_registry",
    "extract_mac",
    "format_address",
    "format_mac",
    "format_network",
    "mac_to_iid",
    "network_key",
    "overlap",
    "parse",
    "parse_mac",
    "parse_network",
    "prefix",
    "profile",
]
