"""Numpy kernels over packed address columns.

The vectorised backend of :mod:`repro.ipv6.columnar`.  Importing this
module requires numpy; :func:`repro.ipv6.columnar.resolve_backend`
catches the :class:`ImportError` and falls back to the pure-python
backend.  Every kernel must return results identical to
:mod:`repro.ipv6._columnar_python` (property-pinned in
``tests/test_ipv6_columnar.py``).

Two representation tricks carry the module:

* a 16-byte big-endian row compares lexicographically exactly like the
  128-bit integer it encodes, so dtype ``S16`` (fixed-width bytes, full
  16-byte memcmp) makes ``np.sort`` / ``np.unique`` / ``np.intersect1d``
  operate in correct numeric order without 128-bit integer support;
* the entropy class of an IID depends only on the multiset of its byte
  counts, so row-sorting the 8 IID bytes and packing the 7 "adjacent
  bytes differ" bits into a *boundary mask* reduces classification to a
  128-entry table lookup (see ``_columnar_tables``).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.ipv6._columnar_tables import (
    CODE_EUI64,
    CODE_LOW_BYTE,
    CODE_LOW_TWO_BYTES,
    CODE_ZERO,
    MASK_CODE,
    MASK_ENTROPY,
)

NAME = "numpy"

_ITEM = 16
_MASK_CODE = np.array(MASK_CODE, dtype=np.uint8)


def _rows(data: bytes, count: int) -> "np.ndarray":
    return np.frombuffer(data, dtype=np.uint8).reshape(count, _ITEM)


def _halves(data: bytes, count: int) -> "np.ndarray":
    """(count, 2) native uint64 array of big-endian (high, low) words."""
    return np.frombuffer(data, dtype=">u8").astype(np.uint64).reshape(count, 2)


def _boundary_masks(iid: "np.ndarray") -> "np.ndarray":
    ordered = np.sort(iid, axis=1)
    bounds = ordered[:, 1:] != ordered[:, :-1]
    return np.packbits(bounds, axis=1, bitorder="little")[:, 0]


def class_counts(data: bytes, count: int) -> List[int]:
    """Per-class address counts, aligned with ``iid.CLASSES``."""
    if count == 0:
        return [0] * 7
    iid = _rows(data, count)[:, 8:]
    codes = _MASK_CODE[_boundary_masks(iid)]
    head_zero = ~iid[:, :6].any(axis=1)
    byte6, byte7 = iid[:, 6], iid[:, 7]
    eui = (iid[:, 3] == 0xFF) & (iid[:, 4] == 0xFE)
    codes = np.where(eui, CODE_EUI64, codes)
    codes = np.where(head_zero & (byte6 != 0), CODE_LOW_TWO_BYTES, codes)
    codes = np.where(head_zero & (byte6 == 0) & (byte7 != 0),
                     CODE_LOW_BYTE, codes)
    codes = np.where(head_zero & (byte6 == 0) & (byte7 == 0),
                     CODE_ZERO, codes)
    return np.bincount(codes, minlength=7).tolist()[:7]


def iid_entropy_histogram(data: bytes, count: int) -> Dict[float, int]:
    """``{canonical byte entropy: n addresses}`` over every IID."""
    if count == 0:
        return {}
    masks = _boundary_masks(_rows(data, count)[:, 8:])
    histogram: Dict[float, int] = {}
    for mask, occurrences in enumerate(np.bincount(masks, minlength=128)):
        if occurrences:
            entropy = MASK_ENTROPY[mask]
            histogram[entropy] = histogram.get(entropy, 0) + int(occurrences)
    return histogram


def eui64_select(data: bytes, count: int) -> bytes:
    """The packed subset carrying the ``ff:fe`` marker, order preserved."""
    if count == 0:
        return b""
    rows = _rows(data, count)
    keep = (rows[:, 11] == 0xFF) & (rows[:, 12] == 0xFE)
    return rows[keep].tobytes()


def nybble_value_counts(data: bytes, count: int) -> List[List[int]]:
    """Value histogram per nybble position: 32 rows of 16 counts."""
    if count == 0:
        return [[0] * 16 for _ in range(32)]
    rows = _rows(data, count)
    out: List[List[int]] = []
    for position in range(_ITEM):
        column = rows[:, position]
        out.append(np.bincount(column >> 4, minlength=16).tolist())
        out.append(np.bincount(column & 0xF, minlength=16).tolist())
    return out


def _level_keys(data: bytes, count: int, level: int):
    """Per-row network keys: a uint64 vector (level <= 64) or a pair
    (count, 2) array of (high, truncated-low) words (level > 64)."""
    halves = _halves(data, count)
    if level <= 64:
        return halves[:, 0] >> np.uint64(64 - level)
    low = halves[:, 1]
    if level < 128:
        low = low >> np.uint64(128 - level)
    return np.column_stack((halves[:, 0], low))


def _pair_key(high: int, low: int, level: int) -> int:
    return (high << (level - 64)) | low


def network_key_counts(data: bytes, count: int, level: int) -> Dict[int, int]:
    """Distinct ``/level`` key -> row count (order unspecified)."""
    if count == 0:
        return {}
    if level == 0:
        return {0: count}
    keys = _level_keys(data, count, level)
    if level <= 64:
        unique, counts = np.unique(keys, return_counts=True)
        return dict(zip(unique.tolist(), counts.tolist()))
    unique, counts = np.unique(keys, axis=0, return_counts=True)
    return {
        _pair_key(int(pair[0]), int(pair[1]), level): int(occurrences)
        for pair, occurrences in zip(unique, counts)
    }


def network_key_counts_ordered(data: bytes, count: int,
                               level: int) -> List[Tuple[int, int]]:
    """Distinct keys with counts, in first-occurrence order."""
    if count == 0:
        return []
    if level == 0:
        return [(0, count)]
    keys = _level_keys(data, count, level)
    if level <= 64:
        unique, first, counts = np.unique(
            keys, return_index=True, return_counts=True)
        order = np.argsort(first, kind="stable")
        return [(int(unique[i]), int(counts[i])) for i in order]
    unique, first, counts = np.unique(
        keys, axis=0, return_index=True, return_counts=True)
    order = np.argsort(first, kind="stable")
    return [
        (_pair_key(int(unique[i][0]), int(unique[i][1]), level),
         int(counts[i]))
        for i in order
    ]


def truncate(data: bytes, count: int, level: int) -> bytes:
    """Zero every bit past the first ``level`` bits of each address."""
    if level >= 128 or count == 0:
        return bytes(data)
    out = _rows(data, count).copy()
    full, remainder = divmod(level, 8)
    if remainder:
        out[:, full] &= (0xFF << (8 - remainder)) & 0xFF
    out[:, full + (1 if remainder else 0):] = 0
    return out.tobytes()


def _cells(data: bytes) -> "np.ndarray":
    return np.frombuffer(data, dtype=f"S{_ITEM}")


def sort(data: bytes, count: int) -> bytes:
    """Ascending copy; S16 memcmp order equals numeric order."""
    return np.sort(_cells(data)).tobytes()


def sort_dedup(data: bytes, count: int) -> bytes:
    """Ascending copy with duplicate addresses collapsed."""
    return np.unique(_cells(data)).tobytes()


def intersect_sorted(left: bytes, left_count: int,
                     right: bytes, right_count: int) -> bytes:
    """Sorted intersection of two sorted-unique columns."""
    if not left_count or not right_count:
        return b""
    return np.intersect1d(_cells(left), _cells(right),
                          assume_unique=True).tobytes()


def union_sorted(left: bytes, left_count: int,
                 right: bytes, right_count: int) -> bytes:
    """Sorted-merge union (dedup'd) of two sorted-unique columns."""
    return np.union1d(_cells(left), _cells(right)).tobytes()
