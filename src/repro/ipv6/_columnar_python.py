"""Pure-python kernels over packed address columns.

The fallback backend of :mod:`repro.ipv6.columnar`: every kernel works
on one contiguous ``bytes`` buffer holding 16 big-endian bytes per
address and must produce results identical to the numpy backend (and to
the scalar functions in :mod:`repro.ipv6.iid` / :mod:`~repro.ipv6.eui64`
/ :mod:`~repro.ipv6.address`).  The hot loops lean on C-level ``bytes``
operations — slicing, ``set``, ``bytes.count``, ``struct.unpack`` — so
even without numpy the column beats the per-address scalar path by a
wide margin (gated in ``benchmarks/bench_fig1_structure.py``).
"""

from __future__ import annotations

import struct
from collections import Counter
from typing import Dict, List, Tuple

from repro.ipv6._columnar_tables import (
    CODE_EUI64,
    CODE_HIGH_ENTROPY,
    CODE_LOW_BYTE,
    CODE_LOW_ENTROPY,
    CODE_LOW_TWO_BYTES,
    CODE_MEDIUM_ENTROPY,
    CODE_ZERO,
    PARTITION_ENTROPY,
)

NAME = "python"

_ITEM = 16
_ZERO6 = b"\x00" * 6


def _chunks(data: bytes, count: int) -> List[bytes]:
    return [data[offset:offset + _ITEM]
            for offset in range(0, _ITEM * count, _ITEM)]


def _words(data: bytes, count: int) -> Tuple[int, ...]:
    """The column as alternating (high, low) 64-bit big-endian words."""
    return struct.unpack(f">{2 * count}Q", data)


def class_counts(data: bytes, count: int) -> List[int]:
    """Per-class address counts, aligned with ``iid.CLASSES``.

    The entropy classes are decided by the *distinct-byte-count rule*,
    a collapse of the partition table in ``_columnar_tables``: with
    ``d`` distinct bytes among 8, every partition with ``d <= 2`` has
    entropy <= 1.0 (low), every ``d`` in {3, 4} lands in (1.0, 2.0]
    (medium), ``d >= 6`` always exceeds 2.0 (high), and ``d == 5`` is
    medium exactly for the [4,1,1,1,1] partition (entropy 2.0).  The
    rule is proven against the table in ``tests/test_ipv6_columnar.py``.
    """
    counts = [0] * 7
    for offset in range(8, _ITEM * count, _ITEM):
        identifier = data[offset:offset + 8]
        if identifier[:6] == _ZERO6:
            if identifier[6]:
                counts[CODE_LOW_TWO_BYTES] += 1
            elif identifier[7]:
                counts[CODE_LOW_BYTE] += 1
            else:
                counts[CODE_ZERO] += 1
        elif identifier[3] == 0xFF and identifier[4] == 0xFE:
            counts[CODE_EUI64] += 1
        else:
            distinct = set(identifier)
            spread = len(distinct)
            if spread > 5:
                counts[CODE_HIGH_ENTROPY] += 1
            elif spread < 3:
                counts[CODE_LOW_ENTROPY] += 1
            elif spread == 5 and max(map(identifier.count, distinct)) != 4:
                counts[CODE_HIGH_ENTROPY] += 1
            else:
                counts[CODE_MEDIUM_ENTROPY] += 1
    return counts


def iid_entropy_histogram(data: bytes, count: int) -> Dict[float, int]:
    """``{canonical byte entropy: n addresses}`` over every IID."""
    histogram: Counter = Counter()
    for offset in range(8, _ITEM * count, _ITEM):
        identifier = data[offset:offset + 8]
        signature = tuple(sorted(
            (identifier.count(value) for value in set(identifier)),
            reverse=True))
        histogram[PARTITION_ENTROPY[signature]] += 1
    return dict(histogram)


def eui64_select(data: bytes, count: int) -> bytes:
    """The packed subset carrying the ``ff:fe`` marker, order preserved."""
    kept = [data[offset:offset + _ITEM]
            for offset in range(0, _ITEM * count, _ITEM)
            if data[offset + 11] == 0xFF and data[offset + 12] == 0xFE]
    return b"".join(kept)


def nybble_value_counts(data: bytes, count: int) -> List[List[int]]:
    """Value histogram per nybble position: 32 rows of 16 counts."""
    rows: List[List[int]] = []
    for position in range(_ITEM):
        high = [0] * 16
        low = [0] * 16
        for value, occurrences in Counter(data[position::_ITEM]).items():
            high[value >> 4] += occurrences
            low[value & 0xF] += occurrences
        rows.append(high)
        rows.append(low)
    return rows


def network_key_counts(data: bytes, count: int, level: int) -> Dict[int, int]:
    """Distinct ``/level`` key -> row count, in first-occurrence order."""
    if count == 0:
        return {}
    if level == 0:
        return {0: count}
    words = _words(data, count)
    high = words[0::2]
    if level <= 64:
        shift = 64 - level
        return dict(Counter(value >> shift for value in high))
    low = words[1::2]
    up, down = level - 64, 128 - level
    return dict(Counter(
        (h << up) | (l >> down) for h, l in zip(high, low)))


def network_key_counts_ordered(data: bytes, count: int,
                               level: int) -> List[Tuple[int, int]]:
    """Like :func:`network_key_counts` but explicitly ordered."""
    return list(network_key_counts(data, count, level).items())


def truncate(data: bytes, count: int, level: int) -> bytes:
    """Zero every bit past the first ``level`` bits of each address."""
    if level >= 128:
        return bytes(data)
    out = bytearray(data)
    full, remainder = divmod(level, 8)
    zero_from = full + (1 if remainder else 0)
    tail = b"\x00" * (_ITEM - zero_from)
    mask = (0xFF << (8 - remainder)) & 0xFF if remainder else 0
    for offset in range(0, _ITEM * count, _ITEM):
        if remainder:
            out[offset + full] &= mask
        out[offset + zero_from:offset + _ITEM] = tail
    return bytes(out)


def sort(data: bytes, count: int) -> bytes:
    """Ascending copy; byte order on 16-byte rows equals numeric order."""
    return b"".join(sorted(_chunks(data, count)))


def sort_dedup(data: bytes, count: int) -> bytes:
    """Ascending copy with duplicate addresses collapsed."""
    return b"".join(sorted(set(_chunks(data, count))))


def intersect_sorted(left: bytes, left_count: int,
                     right: bytes, right_count: int) -> bytes:
    """Sorted intersection of two sorted-unique columns."""
    common = set(_chunks(left, left_count)) & set(_chunks(right, right_count))
    return b"".join(sorted(common))


def union_sorted(left: bytes, left_count: int,
                 right: bytes, right_count: int) -> bytes:
    """Sorted-merge union (dedup'd) of two sorted-unique columns."""
    merged = set(_chunks(left, left_count)) | set(_chunks(right, right_count))
    return b"".join(sorted(merged))
