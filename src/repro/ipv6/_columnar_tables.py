"""Shared lookup tables for the columnar IID-classification kernels.

Both columnar backends (:mod:`repro.ipv6._columnar_python` and
:mod:`repro.ipv6._columnar_numpy`) classify interface identifiers by the
Shannon byte-entropy of their 8 IID bytes.  Computing the entropy per
address would be slow (and float-summation order would vary with the
byte order of each address), so the kernels reduce every IID to a
*partition signature* — the multiset of its byte counts — and look the
answer up here.

Why a lookup is exact
---------------------

An 8-byte identifier has only 22 possible byte-count partitions of 8,
and its entropy is a pure function of the partition.  The scalar path
(:func:`repro.ipv6.iid.byte_entropy`) sums the per-byte terms in
first-occurrence order, which can differ from the canonical order used
here by a final ulp — but the *class* comparison (``entropy <= 1.0`` /
``<= 2.0``) can never disagree: every partition whose entropy touches a
threshold is composed exclusively of dyadic probabilities (1/8, 1/4,
1/2), whose terms are exact IEEE doubles and sum exactly in any order,
and every other partition sits far (>= 0.05 bits) from both thresholds.
The guard at the bottom of this module enforces that margin at import
time, and ``tests/test_ipv6_columnar.py`` re-proves the table against
the scalar formula for every partition.

The tables are keyed two ways:

* ``MASK_*`` — by the 7-bit *boundary mask* of the row-sorted IID bytes
  (bit ``i`` set iff ``sorted[i] != sorted[i+1]``), which the numpy
  backend computes with ``np.packbits``;
* ``PARTITION_ENTROPY`` — by the descending byte-count tuple, which the
  pure-python backend derives from ``bytes.count``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.ipv6.iid import LOW_ENTROPY_MAX, MEDIUM_ENTROPY_MAX

#: Width of an interface identifier, in bytes.
IID_BYTES = 8

#: Class codes, aligned with the order of :data:`repro.ipv6.iid.CLASSES`.
(
    CODE_ZERO,
    CODE_LOW_BYTE,
    CODE_LOW_TWO_BYTES,
    CODE_EUI64,
    CODE_LOW_ENTROPY,
    CODE_MEDIUM_ENTROPY,
    CODE_HIGH_ENTROPY,
) = range(7)


def entropy_of_counts(counts: Tuple[int, ...]) -> float:
    """Canonical byte entropy of a byte-count partition (bits/byte)."""
    total = sum(counts)
    if not total:
        return 0.0
    return -sum(
        (count / total) * math.log2(count / total) for count in counts
    ) + 0.0


def entropy_code(entropy: float) -> int:
    """Map an entropy value onto the low/medium/high class codes."""
    if entropy <= LOW_ENTROPY_MAX:
        return CODE_LOW_ENTROPY
    if entropy <= MEDIUM_ENTROPY_MAX:
        return CODE_MEDIUM_ENTROPY
    return CODE_HIGH_ENTROPY


def runs_of_mask(mask: int) -> Tuple[int, ...]:
    """Descending run-length partition encoded by a 7-bit boundary mask."""
    runs: List[int] = []
    length = 1
    for bit in range(IID_BYTES - 1):
        if (mask >> bit) & 1:
            runs.append(length)
            length = 1
        else:
            length += 1
    runs.append(length)
    return tuple(sorted(runs, reverse=True))


#: Boundary mask -> descending byte-count partition.
MASK_RUNS: Tuple[Tuple[int, ...], ...] = tuple(
    runs_of_mask(mask) for mask in range(1 << (IID_BYTES - 1))
)

#: Boundary mask -> canonical byte entropy.
MASK_ENTROPY: Tuple[float, ...] = tuple(
    entropy_of_counts(runs) for runs in MASK_RUNS
)

#: Boundary mask -> entropy class code (CODE_LOW/MEDIUM/HIGH_ENTROPY).
MASK_CODE: Tuple[int, ...] = tuple(
    entropy_code(entropy) for entropy in MASK_ENTROPY
)

#: Every byte-count partition of 8, with its canonical entropy.
PARTITION_ENTROPY: Dict[Tuple[int, ...], float] = {
    runs: entropy for runs, entropy in zip(MASK_RUNS, MASK_ENTROPY)
}

#: Partition -> entropy class code (pure-python histogram path).
PARTITION_CODE: Dict[Tuple[int, ...], int] = {
    runs: entropy_code(entropy) for runs, entropy in PARTITION_ENTROPY.items()
}

# Import-time guard for the exactness argument above: any partition that
# is not exactly on a threshold must keep a wide margin from it, so a
# 1-ulp summation-order difference can never flip a classification.
for _runs, _entropy in PARTITION_ENTROPY.items():
    for _threshold in (LOW_ENTROPY_MAX, MEDIUM_ENTROPY_MAX):
        if _entropy != _threshold and abs(_entropy - _threshold) < 1e-9:
            raise AssertionError(
                f"partition {_runs} entropy {_entropy!r} is too close to "
                f"threshold {_threshold}; the lookup-table classification "
                "would not be order-independent"
            )
del _runs, _entropy, _threshold
