"""Integer-backed IPv6 address primitives.

Every address in this library is a plain Python ``int`` in ``[0, 2**128)``.
Integers keep set/dict operations cheap at the scale of millions of
addresses, which is what the collection pipeline has to handle.  This
module provides the conversions and prefix arithmetic layered on top.

The textual conversions are RFC 5952 compliant (they delegate to
:mod:`ipaddress` for formatting) but the hot paths — prefix extraction,
IID splitting, subnet keys — are raw integer arithmetic.
"""

from __future__ import annotations

import ipaddress
from typing import Iterable, Iterator

#: Number of bits in an IPv6 address.
ADDRESS_BITS = 128

#: Exclusive upper bound of the address space.
ADDRESS_SPACE = 1 << ADDRESS_BITS

#: Mask selecting the interface identifier (low 64 bits).
IID_MASK = (1 << 64) - 1

#: Mask selecting the network prefix (high 64 bits).
PREFIX_MASK = IID_MASK << 64


def parse(text: str) -> int:
    """Parse an IPv6 address string into its integer form.

    >>> parse("2001:db8::1")
    42540766411282592856903984951653826561
    """
    return int(ipaddress.IPv6Address(text))


def format_address(value: int) -> str:
    """Render an integer address in RFC 5952 compressed form.

    >>> format_address(parse("2001:0db8::0001"))
    '2001:db8::1'
    """
    return str(ipaddress.IPv6Address(value))


def is_valid(value: int) -> bool:
    """Return whether ``value`` lies inside the IPv6 address space."""
    return 0 <= value < ADDRESS_SPACE


def prefix(value: int, length: int) -> int:
    """Return the address truncated to its first ``length`` bits.

    The result keeps the address's bit position (it is *not* shifted
    down), so ``prefix(a, 48)`` of two addresses compare equal exactly
    when the addresses share a /48.
    """
    if not 0 <= length <= ADDRESS_BITS:
        raise ValueError(f"prefix length must be in [0, 128], got {length}")
    if length == 0:
        return 0
    mask = ((1 << length) - 1) << (ADDRESS_BITS - length)
    return value & mask


def network_key(value: int, length: int) -> int:
    """Return a compact key identifying the ``/length`` network of ``value``.

    Unlike :func:`prefix` the result is shifted down so that consecutive
    networks map to consecutive integers; useful as a dict key.
    """
    if not 0 <= length <= ADDRESS_BITS:
        raise ValueError(f"prefix length must be in [0, 128], got {length}")
    return value >> (ADDRESS_BITS - length) if length else 0


def from_network_key(key: int, length: int) -> int:
    """Inverse of :func:`network_key`: the first address of the network."""
    return key << (ADDRESS_BITS - length) if length else 0


def iid(value: int) -> int:
    """Return the 64-bit interface identifier (low half) of an address."""
    return value & IID_MASK


def with_iid(prefix_value: int, iid_value: int) -> int:
    """Combine a /64 prefix and a 64-bit IID into a full address."""
    return (prefix_value & PREFIX_MASK) | (iid_value & IID_MASK)


def format_network(value: int, length: int) -> str:
    """Render ``value``'s ``/length`` network in CIDR notation.

    >>> format_network(parse("2001:db8:1:2::5"), 48)
    '2001:db8:1::/48'
    """
    return f"{format_address(prefix(value, length))}/{length}"


def parse_network(text: str) -> tuple[int, int]:
    """Parse CIDR notation into ``(base_address, prefix_length)``."""
    net = ipaddress.IPv6Network(text, strict=False)
    return int(net.network_address), net.prefixlen


def contains(base: int, length: int, value: int) -> bool:
    """Return whether ``value`` falls inside the network ``base/length``."""
    return prefix(base, length) == prefix(value, length)


def iter_subnets(base: int, length: int, sub_length: int) -> Iterator[int]:
    """Yield the base addresses of every ``/sub_length`` inside ``base/length``.

    Intended for small fan-outs (e.g. enumerating /48s of a /40); the
    iterator is lazy so callers can slice it.
    """
    if sub_length < length:
        raise ValueError("sub_length must be >= length")
    step = 1 << (ADDRESS_BITS - sub_length)
    start = prefix(base, length)
    count = 1 << (sub_length - length)
    for index in range(count):
        yield start + index * step


def distinct_networks(addresses: Iterable[int], length: int) -> set[int]:
    """Return the set of ``/length`` network keys covering ``addresses``.

    A packed :class:`~repro.ipv6.columnar.AddressColumn` is bucketed by
    its columnar kernel (duck-typed to keep this base module free of
    columnar imports); plain iterables take the scalar path.
    """
    bucketer = getattr(addresses, "distinct_network_keys", None)
    if bucketer is not None:
        return bucketer(length)
    shift = ADDRESS_BITS - length
    return {value >> shift for value in addresses}
