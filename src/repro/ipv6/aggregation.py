"""Network aggregation counters for address sets.

The paper repeatedly counts address sets at multiple aggregation levels
(/32, /48, /56, /64 networks, plus ASes and countries — Tables 1 and 5)
and reports densities such as *median IPs per /48*.  This module
provides an efficient multi-level counter over integer addresses.

Since the columnar refactor the aggregator holds its addresses as a
packed :class:`~repro.ipv6.columnar.AddressColumn` (one sorted-unique
main run plus a small pending set, LSM-style) instead of a Python
``set``, so memory stays at 16 bytes per address and the per-level
network counts come from the columnar bucketing kernel.  Counts are
cached per level and invalidated on insert — ``median_density``,
``mean_density`` and ``summary`` no longer rescan the whole set on
every call.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Sequence, Set

from repro.ipv6 import address as addr
from repro.ipv6.columnar import AddressColumn

#: Aggregation levels used throughout the paper's tables.
STANDARD_LEVELS: tuple[int, ...] = (32, 48, 56, 64)

#: Pending inserts buffered before a sorted-merge into the main column.
FLUSH_THRESHOLD = 1 << 16


class PrefixAggregator:
    """Counts distinct addresses per network at several prefix lengths.

    Feed addresses with :meth:`add` / :meth:`update`; duplicate
    addresses are collapsed.  Counts per level are exposed as
    ``{network_key: n_addresses}``.
    """

    def __init__(self, levels: Sequence[int] = STANDARD_LEVELS, *,
                 backend: Optional[str] = None,
                 flush_threshold: int = FLUSH_THRESHOLD) -> None:
        if flush_threshold <= 0:
            raise ValueError(
                f"flush_threshold must be positive, got {flush_threshold}")
        self.levels = tuple(levels)
        self._column = AddressColumn(backend=backend, _sorted_unique=True)
        self._pending: Set[int] = set()
        self._flush_threshold = flush_threshold
        self._counts_cache: Dict[int, Counter] = {}

    def add(self, value: int) -> bool:
        """Record one address; returns True if it was new."""
        if value in self._pending or self._column.contains(value):
            return False
        self._pending.add(value)
        self._counts_cache.clear()
        if len(self._pending) >= self._flush_threshold:
            self._flush()
        return True

    def update(self, values: Iterable[int]) -> int:
        """Record many addresses; returns how many were new.

        The count feeds collector dedup metrics — bulk feeds go through
        the same new-address accounting as :meth:`add`.
        """
        added = 0
        for value in values:
            if self.add(value):
                added += 1
        return added

    def _flush(self) -> None:
        """Sorted-merge the pending set into the main column."""
        if not self._pending:
            return
        batch = AddressColumn.from_ints(
            sorted(self._pending), backend=self._column.backend_name)
        self._column = self._column.union(batch)
        self._pending.clear()

    @property
    def address_count(self) -> int:
        """Number of distinct addresses recorded."""
        return len(self._column) + len(self._pending)

    @property
    def addresses(self) -> frozenset:
        return frozenset(self._column).union(self._pending)

    @property
    def column(self) -> AddressColumn:
        """The distinct addresses as a sorted-unique packed column."""
        self._flush()
        return self._column

    def _counts(self, level: int) -> Counter:
        """Cached distinct-address count per ``/level`` network."""
        cached = self._counts_cache.get(level)
        if cached is None:
            self._flush()
            cached = self._column.network_counts(level)
            self._counts_cache[level] = cached
        return cached

    def network_counts(self, level: int) -> Counter:
        """Distinct-address count per ``/level`` network."""
        # Copy so callers can mutate the result without corrupting the
        # cache (invalidation only happens on insert).
        return Counter(self._counts(level))

    def network_count(self, level: int) -> int:
        """Number of distinct ``/level`` networks covered."""
        return len(self._counts(level))

    def summary(self) -> Dict[int, int]:
        """``{level: distinct network count}`` for all configured levels."""
        return {level: self.network_count(level) for level in self.levels}

    def median_density(self, level: int) -> float:
        """Median number of addresses per ``/level`` network.

        The paper uses this (Table 1, bottom rows) to show that
        NTP-sourced /48s are denser than hitlist /48s, indicating
        client-side networks.  Returns 0.0 for an empty set.
        """
        counts = self._counts(level)
        if not counts:
            return 0.0
        return float(statistics.median(counts.values()))

    def mean_density(self, level: int) -> float:
        """Mean number of addresses per ``/level`` network."""
        counts = self._counts(level)
        if not counts:
            return 0.0
        return self.address_count / len(counts)


def overlap(left: Iterable[int], right: Iterable[int], level: int) -> int:
    """Number of ``/level`` networks present in both address sets."""
    left_nets = addr.distinct_networks(left, level)
    right_nets = addr.distinct_networks(right, level)
    return len(left_nets & right_nets)


def address_overlap(left: Iterable[int], right: Iterable[int]) -> int:
    """Number of exact addresses shared between two sets.

    Columns intersect via the sorted-merge kernel; any other iterable
    falls back to Python set intersection.
    """
    if isinstance(left, AddressColumn) and isinstance(right, AddressColumn):
        return left.intersection_count(right)
    return len(set(left) & set(right))


@dataclass(frozen=True)
class GroupedDensity:
    """Median/mean address density for an arbitrary grouping.

    Used for the *median IPs in ASes* row of Table 1, where the group is
    the origin AS rather than a prefix.
    """

    median: float
    mean: float
    groups: int

    @classmethod
    def from_assignment(cls, assignment: Mapping[int, object]) -> "GroupedDensity":
        """Build from ``{address: group_label}``."""
        counts: Counter[object] = Counter(assignment.values())
        if not counts:
            return cls(median=0.0, mean=0.0, groups=0)
        values = list(counts.values())
        return cls(
            median=float(statistics.median(values)),
            mean=sum(values) / len(values),
            groups=len(values),
        )
