"""Network aggregation counters for address sets.

The paper repeatedly counts address sets at multiple aggregation levels
(/32, /48, /56, /64 networks, plus ASes and countries — Tables 1 and 5)
and reports densities such as *median IPs per /48*.  This module
provides an efficient multi-level counter over integer addresses.
"""

from __future__ import annotations

import statistics
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Sequence

from repro.ipv6 import address as addr

#: Aggregation levels used throughout the paper's tables.
STANDARD_LEVELS: tuple[int, ...] = (32, 48, 56, 64)


@dataclass
class PrefixAggregator:
    """Counts distinct addresses per network at several prefix lengths.

    Feed addresses with :meth:`add`; duplicate addresses are collapsed.
    Counts per level are exposed as ``{network_key: n_addresses}``.
    """

    levels: Sequence[int] = STANDARD_LEVELS
    _addresses: set = field(default_factory=set)

    def add(self, value: int) -> bool:
        """Record one address; returns True if it was new."""
        if value in self._addresses:
            return False
        self._addresses.add(value)
        return True

    def update(self, values: Iterable[int]) -> None:
        """Record many addresses."""
        self._addresses.update(values)

    @property
    def address_count(self) -> int:
        """Number of distinct addresses recorded."""
        return len(self._addresses)

    @property
    def addresses(self) -> frozenset:
        return frozenset(self._addresses)

    def network_counts(self, level: int) -> Counter:
        """Distinct-address count per ``/level`` network."""
        shift = addr.ADDRESS_BITS - level
        counts: Counter[int] = Counter()
        for value in self._addresses:
            counts[value >> shift] += 1
        return counts

    def network_count(self, level: int) -> int:
        """Number of distinct ``/level`` networks covered."""
        shift = addr.ADDRESS_BITS - level
        return len({value >> shift for value in self._addresses})

    def summary(self) -> Dict[int, int]:
        """``{level: distinct network count}`` for all configured levels."""
        return {level: self.network_count(level) for level in self.levels}

    def median_density(self, level: int) -> float:
        """Median number of addresses per ``/level`` network.

        The paper uses this (Table 1, bottom rows) to show that
        NTP-sourced /48s are denser than hitlist /48s, indicating
        client-side networks.  Returns 0.0 for an empty set.
        """
        counts = self.network_counts(level)
        if not counts:
            return 0.0
        return float(statistics.median(counts.values()))

    def mean_density(self, level: int) -> float:
        """Mean number of addresses per ``/level`` network."""
        counts = self.network_counts(level)
        if not counts:
            return 0.0
        return self.address_count / len(counts)


def overlap(left: Iterable[int], right: Iterable[int], level: int) -> int:
    """Number of ``/level`` networks present in both address sets."""
    left_nets = addr.distinct_networks(left, level)
    right_nets = addr.distinct_networks(right, level)
    return len(left_nets & right_nets)


def address_overlap(left: Iterable[int], right: Iterable[int]) -> int:
    """Number of exact addresses shared between two sets."""
    return len(set(left) & set(right))


@dataclass(frozen=True)
class GroupedDensity:
    """Median/mean address density for an arbitrary grouping.

    Used for the *median IPs in ASes* row of Table 1, where the group is
    the origin AS rather than a prefix.
    """

    median: float
    mean: float
    groups: int

    @classmethod
    def from_assignment(cls, assignment: Mapping[int, object]) -> "GroupedDensity":
        """Build from ``{address: group_label}``."""
        counts: Counter[object] = Counter(assignment.values())
        if not counts:
            return cls(median=0.0, mean=0.0, groups=0)
        values = list(counts.values())
        return cls(
            median=float(statistics.median(values)),
            mean=sum(values) / len(values),
            groups=len(values),
        )
