"""Columnar address engine: packed address sets with vectorised kernels.

The paper's corpus is 3.04 B NTP-observed addresses; walking Python
integers one ``classify_iid`` call at a time does not survive that
scale.  An :class:`AddressColumn` stores an address *sequence* as one
contiguous buffer of 16 big-endian bytes per address and runs every
structure analysis the repo needs — IID-class counts (Figure 1),
byte-entropy and per-nybble histograms, EUI-64 extraction, prefix
bucketing at arbitrary levels (Table 1/5), sorted-merge dedup and set
intersection (hitlist overlap) — as whole-column kernels.

Each kernel is implemented twice behind one interface:

* ``numpy`` (:mod:`repro.ipv6._columnar_numpy`) — vectorised, selected
  automatically when numpy is importable;
* ``python`` (:mod:`repro.ipv6._columnar_python`) — ``bytes``/``struct``
  based fallback with identical results, still several times faster
  than the scalar path (gated in ``benchmarks/bench_fig1_structure.py``).

Backend choice is per-column: the ``backend=`` argument wins, then the
``REPRO_COLUMNAR_BACKEND`` environment variable (``python``, ``numpy``
or ``auto``), then auto-detection.  The scalar functions in
:mod:`repro.ipv6.iid`, :mod:`~repro.ipv6.eui64` and
:mod:`~repro.ipv6.address` remain the semantic reference; the
equivalence contract (identical counts, histograms, overlaps under both
backends and the scalar path) is property-tested in
``tests/test_ipv6_columnar.py`` and re-run without numpy by the
``columnar-parity`` CI job.  See DESIGN.md §10.
"""

from __future__ import annotations

import ipaddress
import math
import os
from collections import Counter
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Set, Tuple, Union

from repro.ipv6 import iid as iidmod

#: Bytes per packed address.
ITEM_BYTES = 16

#: Environment variable forcing a backend (``python``/``numpy``/``auto``).
BACKEND_ENV = "REPRO_COLUMNAR_BACKEND"

#: Recognised backend names.
BACKEND_NAMES = ("python", "numpy")


class BackendUnavailable(RuntimeError):
    """A requested columnar backend cannot be imported."""


def _load_backend(name: str):
    if name == "python":
        from repro.ipv6 import _columnar_python
        return _columnar_python
    if name == "numpy":
        try:
            from repro.ipv6 import _columnar_numpy
        except ImportError as error:
            raise BackendUnavailable(
                "columnar backend 'numpy' requested but numpy is not "
                "importable; install numpy or set "
                f"{BACKEND_ENV}=python") from error
        return _columnar_numpy
    raise ValueError(
        f"unknown columnar backend {name!r}; expected one of "
        f"{BACKEND_NAMES + ('auto',)}")


def available_backends() -> Tuple[str, ...]:
    """Backend names importable in this interpreter."""
    names: List[str] = ["python"]
    try:
        _load_backend("numpy")
    except BackendUnavailable:
        pass
    else:
        names.append("numpy")
    return tuple(names)


def resolve_backend(name: Optional[str] = None):
    """Resolve a backend module from an explicit name or the environment."""
    requested = name or os.environ.get(BACKEND_ENV) or "auto"
    if requested == "auto":
        try:
            return _load_backend("numpy")
        except BackendUnavailable:
            return _load_backend("python")
    return _load_backend(requested)


def _pack(value: int) -> bytes:
    try:
        return value.to_bytes(ITEM_BYTES, "big")
    except (OverflowError, AttributeError) as error:
        raise ValueError(
            f"not a 128-bit unsigned address value: {value!r}") from error


class AddressColumn:
    """An address sequence packed 16 bytes per address.

    The column preserves input order and duplicates (it is a sequence,
    not a set) so that analyses which weight by occurrence — Figure 1
    shares, density denominators — match the scalar path exactly.
    Set-like views (:meth:`dedup`, :meth:`intersect`, :meth:`union`)
    return new sorted-unique columns.
    """

    __slots__ = ("_data", "_backend", "_sorted_unique")

    def __init__(self, data: bytes = b"", *, backend: Optional[str] = None,
                 _sorted_unique: bool = False) -> None:
        if len(data) % ITEM_BYTES:
            raise ValueError(
                f"packed column length {len(data)} is not a multiple "
                f"of {ITEM_BYTES}")
        self._data = bytes(data)
        self._backend = resolve_backend(backend)
        self._sorted_unique = _sorted_unique

    # -- construction ------------------------------------------------------

    @classmethod
    def from_ints(cls, values: Iterable[int], *,
                  backend: Optional[str] = None) -> "AddressColumn":
        """Build from an iterable of integer addresses (streaming)."""
        buffer = bytearray()
        for value in values:
            buffer += _pack(value)
        return cls(bytes(buffer), backend=backend)

    @classmethod
    def from_strings(cls, texts: Iterable[str], *,
                     backend: Optional[str] = None) -> "AddressColumn":
        """Build from an iterable of textual IPv6 addresses (streaming)."""
        buffer = bytearray()
        for text in texts:
            buffer += ipaddress.IPv6Address(text).packed
        return cls(bytes(buffer), backend=backend)

    @classmethod
    def from_packed(cls, data: bytes, *,
                    backend: Optional[str] = None) -> "AddressColumn":
        """Wrap an existing packed buffer (no copy beyond ``bytes()``)."""
        return cls(data, backend=backend)

    @classmethod
    def from_records(cls, records: Iterable[Mapping], *,
                     field: str = "addr",
                     backend: Optional[str] = None) -> "AddressColumn":
        """Build from a store/WAL record stream without materializing a
        list per address.

        ``records`` is any iterable of mappings (e.g. WAL ``sighting``
        payloads); entries lacking ``field`` are skipped, values may be
        integers or RFC 5952 strings.
        """
        buffer = bytearray()
        for record in records:
            value = record.get(field)
            if value is None:
                continue
            if isinstance(value, str):
                buffer += ipaddress.IPv6Address(value).packed
            else:
                buffer += _pack(value)
        return cls(bytes(buffer), backend=backend)

    @classmethod
    def coerce(cls, addresses: Union["AddressColumn", Iterable[int]], *,
               backend: Optional[str] = None) -> "AddressColumn":
        """Return ``addresses`` itself if already a column, else pack it."""
        if isinstance(addresses, AddressColumn):
            return addresses
        return cls.from_ints(addresses, backend=backend)

    # -- sequence protocol -------------------------------------------------

    def __len__(self) -> int:
        return len(self._data) // ITEM_BYTES

    def __bool__(self) -> bool:
        return bool(self._data)

    def __getitem__(self, index: int) -> int:
        count = len(self)
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(index)
        offset = index * ITEM_BYTES
        return int.from_bytes(self._data[offset:offset + ITEM_BYTES], "big")

    def __iter__(self) -> Iterator[int]:
        data = self._data
        for offset in range(0, len(data), ITEM_BYTES):
            yield int.from_bytes(data[offset:offset + ITEM_BYTES], "big")

    def values(self) -> Iterator[int]:
        """Iterate the addresses as integers (alias of ``iter``)."""
        return iter(self)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, AddressColumn):
            return self._data == other._data
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._data)

    def __repr__(self) -> str:
        return (f"AddressColumn(n={len(self)}, "
                f"backend={self._backend.NAME!r})")

    # -- representation ----------------------------------------------------

    @property
    def backend_name(self) -> str:
        """Which kernel implementation this column dispatches to."""
        return self._backend.NAME

    @property
    def is_sorted_unique(self) -> bool:
        return self._sorted_unique

    def tobytes(self) -> bytes:
        """The packed big-endian buffer (16 bytes per address)."""
        return self._data

    def with_backend(self, backend: Optional[str]) -> "AddressColumn":
        """The same column dispatching to a different backend."""
        column = AddressColumn(self._data, backend=backend,
                               _sorted_unique=self._sorted_unique)
        return column

    def contains(self, value: int) -> bool:
        """Exact membership test (binary search when sorted-unique)."""
        packed = _pack(value)
        data = self._data
        if self._sorted_unique:
            lo, hi = 0, len(self)
            while lo < hi:
                mid = (lo + hi) // 2
                row = data[mid * ITEM_BYTES:(mid + 1) * ITEM_BYTES]
                if row < packed:
                    lo = mid + 1
                elif row > packed:
                    hi = mid
                else:
                    return True
            return False
        index = data.find(packed)
        while index != -1 and index % ITEM_BYTES:
            index = data.find(packed, index + 1)
        return index != -1

    __contains__ = contains

    # -- structure kernels -------------------------------------------------

    def class_counts(self) -> Dict[str, int]:
        """Addresses per IID class, keyed in ``iid.CLASSES`` order."""
        counts = self._backend.class_counts(self._data, len(self))
        return dict(zip(iidmod.CLASSES, counts))

    def iid_entropy_histogram(self) -> Dict[float, int]:
        """Histogram of IID byte-entropy values (canonical floats)."""
        return self._backend.iid_entropy_histogram(self._data, len(self))

    def nybble_value_counts(self) -> List[List[int]]:
        """Value histogram per nybble position: 32 rows of 16 counts."""
        return self._backend.nybble_value_counts(self._data, len(self))

    def nybble_entropy(self) -> List[float]:
        """Shannon entropy (bits) of the value distribution at each of
        the 32 nybble positions — the hitlist-style structure profile."""
        total = len(self)
        entropies: List[float] = []
        for counts in self.nybble_value_counts():
            entropy = 0.0
            for count in counts:
                if count:
                    probability = count / total
                    entropy -= probability * math.log2(probability)
            entropies.append(entropy + 0.0)
        return entropies

    def eui64(self) -> "AddressColumn":
        """The sub-column of addresses with EUI-64-formed IIDs."""
        return AddressColumn(
            self._backend.eui64_select(self._data, len(self)),
            backend=self._backend.NAME)

    def eui64_count(self) -> int:
        return len(self.eui64())

    # -- prefix bucketing --------------------------------------------------

    def network_key_counts(self, level: int) -> Dict[int, int]:
        """Distinct ``/level`` network key -> number of rows in it.

        Keys are shifted down (``value >> (128 - level)``), matching
        :func:`repro.ipv6.address.network_key`.  Iteration order is
        backend-dependent; use :meth:`network_key_counts_ordered` when
        first-occurrence order matters.
        """
        self._check_level(level)
        return self._backend.network_key_counts(self._data, len(self), level)

    def network_key_counts_ordered(self, level: int) -> List[Tuple[int, int]]:
        """``(key, count)`` pairs in first-occurrence order."""
        self._check_level(level)
        return self._backend.network_key_counts_ordered(
            self._data, len(self), level)

    def network_counts(self, level: int) -> Counter:
        """:meth:`network_key_counts` as a :class:`Counter`."""
        return Counter(self.network_key_counts(level))

    def distinct_network_keys(self, level: int) -> Set[int]:
        """The set of ``/level`` keys covering the column."""
        return set(self.network_key_counts(level))

    def distinct_network_count(self, level: int) -> int:
        """Number of distinct ``/level`` networks covered."""
        return len(self.network_key_counts(level))

    def truncate(self, level: int) -> "AddressColumn":
        """Every address truncated to its ``/level`` prefix (in place
        value-wise, order and duplicates preserved)."""
        self._check_level(level)
        return AddressColumn(
            self._backend.truncate(self._data, len(self), level),
            backend=self._backend.NAME)

    # -- set algebra -------------------------------------------------------

    def sort(self) -> "AddressColumn":
        """Ascending copy (duplicates preserved)."""
        return AddressColumn(self._backend.sort(self._data, len(self)),
                             backend=self._backend.NAME)

    def dedup(self) -> "AddressColumn":
        """Sorted copy with duplicates collapsed (sorted-merge dedup)."""
        if self._sorted_unique:
            return self
        return AddressColumn(self._backend.sort_dedup(self._data, len(self)),
                             backend=self._backend.NAME, _sorted_unique=True)

    def intersect(self, other: "AddressColumn") -> "AddressColumn":
        """Sorted-unique column of addresses present in both columns."""
        left, right = self.dedup(), other.dedup()
        return AddressColumn(
            self._backend.intersect_sorted(left._data, len(left),
                                           right._data, len(right)),
            backend=self._backend.NAME, _sorted_unique=True)

    def intersection_count(self, other: "AddressColumn") -> int:
        """Number of exact addresses shared with ``other``."""
        return len(self.intersect(other))

    def union(self, other: "AddressColumn") -> "AddressColumn":
        """Sorted-unique column of addresses present in either column."""
        left, right = self.dedup(), other.dedup()
        return AddressColumn(
            self._backend.union_sorted(left._data, len(left),
                                       right._data, len(right)),
            backend=self._backend.NAME, _sorted_unique=True)

    # -- helpers -----------------------------------------------------------

    @staticmethod
    def _check_level(level: int) -> None:
        if not 0 <= level <= 128:
            raise ValueError(
                f"prefix length must be in [0, 128], got {level}")
