"""EUI-64 interface identifiers and embedded MAC addresses.

SLAAC hosts that do not use privacy extensions derive their IID from the
interface's 48-bit MAC address using the modified EUI-64 scheme
(RFC 4291 App. A): the MAC is split in half, ``ff:fe`` is inserted in
the middle, and the universal/local ("U/L") bit — bit 1 of the first
octet — is *flipped* (so a globally unique MAC yields an IID whose
seventh bit is **set**).

The paper's Appendix B extracts these MACs from collected addresses,
filters for the "unique" (universally administered) bit, and maps the
OUI (top 24 bits of the MAC) to the device vendor via the IEEE registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ipv6 import address as addr

#: The two marker bytes inserted into the middle of an EUI-64 IID.
EUI64_MARKER = 0xFFFE

#: U/L bit position within the IID's most significant byte.
UL_BIT = 0x02

#: I/G (multicast) bit within a MAC's most significant byte.
IG_BIT = 0x01


def looks_like_eui64(iid_value: int) -> bool:
    """Return whether a 64-bit IID carries the ``ff:fe`` EUI-64 marker."""
    return (iid_value >> 24) & 0xFFFF == EUI64_MARKER


def mac_to_iid(mac: int) -> int:
    """Convert a 48-bit MAC address into a modified EUI-64 IID.

    >>> hex(mac_to_iid(0x0024FE123456))
    '0x224fefffe123456'
    """
    if not 0 <= mac < (1 << 48):
        raise ValueError(f"MAC must be a 48-bit integer, got {mac:#x}")
    high = (mac >> 24) & 0xFFFFFF
    low = mac & 0xFFFFFF
    iid_value = (high << 40) | (EUI64_MARKER << 24) | low
    # Flip the universal/local bit of the first octet.
    return iid_value ^ (UL_BIT << 56)


def iid_to_mac(iid_value: int) -> int:
    """Recover the embedded MAC from a modified EUI-64 IID.

    Raises :class:`ValueError` when the IID does not carry the marker;
    callers should first gate on :func:`looks_like_eui64`.
    """
    if not looks_like_eui64(iid_value):
        raise ValueError(f"IID {iid_value:#x} is not EUI-64 formed")
    unflipped = iid_value ^ (UL_BIT << 56)
    high = (unflipped >> 40) & 0xFFFFFF
    low = unflipped & 0xFFFFFF
    return (high << 24) | low


def extract_mac(address_value: int) -> int | None:
    """Extract the embedded MAC from a full address, or ``None``."""
    identifier = address_value & addr.IID_MASK
    if not looks_like_eui64(identifier):
        return None
    return iid_to_mac(identifier)


def is_universal(mac: int) -> bool:
    """Whether the MAC claims to be globally unique (U/L bit clear)."""
    return not (mac >> 40) & UL_BIT


def is_multicast(mac: int) -> bool:
    """Whether the MAC is a group (multicast) address (I/G bit set)."""
    return bool((mac >> 40) & IG_BIT)


def oui_of(mac: int) -> int:
    """Return the 24-bit Organizationally Unique Identifier of a MAC."""
    return (mac >> 24) & 0xFFFFFF


def format_mac(mac: int) -> str:
    """Render a MAC in colon-separated lowercase hex.

    >>> format_mac(0x0024FE123456)
    '00:24:fe:12:34:56'
    """
    raw = mac.to_bytes(6, "big")
    return ":".join(f"{octet:02x}" for octet in raw)


def parse_mac(text: str) -> int:
    """Parse ``aa:bb:cc:dd:ee:ff`` (or ``-``-separated) MAC notation."""
    cleaned = text.replace("-", ":").split(":")
    if len(cleaned) != 6:
        raise ValueError(f"malformed MAC address: {text!r}")
    return int.from_bytes(bytes(int(part, 16) for part in cleaned), "big")


@dataclass(frozen=True)
class EmbeddedMac:
    """A MAC recovered from an address, with its classification bits."""

    address: int
    mac: int

    @property
    def oui(self) -> int:
        return oui_of(self.mac)

    @property
    def universal(self) -> bool:
        return is_universal(self.mac)

    @property
    def multicast(self) -> bool:
        return is_multicast(self.mac)


def scan_addresses(addresses) -> list[EmbeddedMac]:
    """Extract every embedded MAC from an iterable of addresses.

    An :class:`~repro.ipv6.columnar.AddressColumn` input is filtered by
    the columnar EUI-64 kernel first, so only marker-carrying addresses
    are materialized as Python objects; any other iterable takes the
    scalar path.  Output order follows input order in both cases.
    """
    from repro.ipv6.columnar import AddressColumn

    if isinstance(addresses, AddressColumn):
        return [EmbeddedMac(address=value, mac=iid_to_mac(value & addr.IID_MASK))
                for value in addresses.eui64()]
    found = []
    for value in addresses:
        mac = extract_mac(value)
        if mac is not None:
            found.append(EmbeddedMac(address=value, mac=mac))
    return found
