"""Interface-identifier (IID) classification and entropy measurement.

The paper (Section 3.2.1, Figure 1) groups collected addresses by the
structure of their 64-bit interface identifier, following Rye & Levin:

* ``zero``            — the IID is all zeroes (``prefix::``);
* ``low-byte``        — only the last byte is set (``::x``);
* ``low-two-bytes``   — only the last two bytes are set (``::xxyy``);
* otherwise the IID is bucketed by its *byte entropy* into ``low``,
  ``medium``, and ``high`` entropy classes.  EUI-64-derived IIDs are
  reported separately because they carry an embedded MAC address.

High-entropy IIDs indicate SLAAC privacy extensions (RFC 8981), i.e.
end-user devices; structured IIDs indicate manually configured servers
and routers.  The share of each class is the paper's primary structural
fingerprint of an address set.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.ipv6 import address as addr
from repro.ipv6 import eui64

#: Classification labels, in the order Figure 1 stacks them.
CLASSES = (
    "zero",
    "low-byte",
    "low-two-bytes",
    "eui64",
    "low-entropy",
    "medium-entropy",
    "high-entropy",
)

#: Classes the paper calls "structured" (manually configured hosts).
STRUCTURED_CLASSES = frozenset({"zero", "low-byte", "low-two-bytes"})

#: Entropy thresholds in bits-per-byte over the 8 IID bytes.
LOW_ENTROPY_MAX = 1.0
MEDIUM_ENTROPY_MAX = 2.0


def iid_bytes(value: int) -> bytes:
    """Return the 8 IID bytes of an address (or bare 64-bit IID)."""
    return (value & addr.IID_MASK).to_bytes(8, "big")


def byte_entropy(data: bytes) -> float:
    """Shannon entropy of a byte string, in bits per byte.

    An 8-byte IID has at most 3 bits of byte-entropy (8 distinct bytes).
    Structured identifiers score near zero; SLAAC privacy identifiers
    score near the maximum.

    >>> byte_entropy(bytes(8))
    0.0
    """
    if not data:
        return 0.0
    counts = Counter(data)
    total = len(data)
    # +0.0 normalizes the IEEE negative zero a single-value
    # distribution would otherwise produce.
    return -sum(
        (count / total) * math.log2(count / total) for count in counts.values()
    ) + 0.0


def classify_iid(value: int) -> str:
    """Classify a single address (or bare IID) into one of :data:`CLASSES`."""
    identifier = value & addr.IID_MASK
    if identifier == 0:
        return "zero"
    if identifier <= 0xFF:
        return "low-byte"
    if identifier <= 0xFFFF:
        return "low-two-bytes"
    if eui64.looks_like_eui64(identifier):
        return "eui64"
    entropy = byte_entropy(iid_bytes(identifier))
    if entropy <= LOW_ENTROPY_MAX:
        return "low-entropy"
    if entropy <= MEDIUM_ENTROPY_MAX:
        return "medium-entropy"
    return "high-entropy"


@dataclass(frozen=True)
class StructureProfile:
    """Share of each IID class within an address set (Figure 1 input)."""

    counts: Mapping[str, int]
    total: int

    def share(self, label: str) -> float:
        """Fraction of addresses in ``label`` (0 when the set is empty)."""
        if self.total == 0:
            return 0.0
        return self.counts.get(label, 0) / self.total

    @property
    def structured_share(self) -> float:
        """Combined share of the structured classes."""
        return sum(self.share(label) for label in STRUCTURED_CLASSES)

    @property
    def high_entropy_share(self) -> float:
        """Share of privacy-extension-like identifiers."""
        return self.share("high-entropy")

    def as_dict(self) -> dict[str, float]:
        """Shares per class, keyed in :data:`CLASSES` order."""
        return {label: self.share(label) for label in CLASSES}


def profile(addresses: Iterable[int]) -> StructureProfile:
    """Classify every address and return the aggregate profile.

    Dispatches to the columnar engine (:mod:`repro.ipv6.columnar`):
    an :class:`~repro.ipv6.columnar.AddressColumn` argument is consumed
    as-is, any other iterable is packed first.  Results are identical
    to :func:`profile_scalar` (the seed-era reference loop), which the
    columnar equivalence suite pins property-by-property.
    """
    from repro.ipv6.columnar import AddressColumn

    column = AddressColumn.coerce(addresses)
    counts = {label: count
              for label, count in column.class_counts().items() if count}
    return StructureProfile(counts=counts, total=len(column))


def profile_scalar(addresses: Iterable[int]) -> StructureProfile:
    """Reference implementation of :func:`profile`: one
    :func:`classify_iid` call per address.  Kept as the semantic anchor
    for the columnar equivalence tests and the scaling benchmark."""
    counts: Counter[str] = Counter()
    total = 0
    for value in addresses:
        counts[classify_iid(value)] += 1
        total += 1
    return StructureProfile(counts=dict(counts), total=total)
