"""A vendor registry mapping OUIs to manufacturers.

The paper resolves OUIs against the IEEE MA-L registry.  Offline, we
ship a registry covering the vendors the paper reports (Table 4) plus a
tail of generic vendors; the world generator assigns MACs from exactly
these blocks so that the Appendix-B analysis exercises a realistic mix
of listed, unlisted, and locally administered MACs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.ipv6 import eui64


@dataclass(frozen=True)
class Vendor:
    """One manufacturer with the OUI blocks assigned to it."""

    name: str
    ouis: tuple[int, ...]


# OUI blocks are synthetic but stable: each vendor owns a contiguous set
# of 24-bit identifiers with the U/L and I/G bits clear in the top byte.
# (Real OUIs for these vendors exist, but exact values are irrelevant to
# every analysis, which only needs a consistent OUI -> name mapping.)
_VENDOR_TABLE: tuple[tuple[str, tuple[int, ...]], ...] = (
    ("AVM Audiovisuelles Marketing und Computersysteme GmbH",
     (0x3C3786, 0x2C3AFD, 0x44112A, 0x5C4979)),
    ("AVM GmbH", (0xE8DF70, 0x989BCB)),
    ("Amazon Technologies Inc.", (0x0C47C9, 0x74C246, 0xF0272D)),
    ("Samsung Electronics Co.,Ltd", (0x8C7712, 0xA01081, 0xD0176A)),
    ("Sonos, Inc.", (0x000E58, 0x5CAAFD)),
    ("vivo Mobile Communication Co., Ltd.", (0x504B5B, 0xA89675)),
    ("Shenzhen Ogemray Technology Co.,Ltd", (0x90F052,)),
    ("China Dragon Technology Limited", (0xB04A39,)),
    ("GUANGDONG OPPO MOBILE TELECOMMUNICATIONS CORP.,LTD",
     (0x1C77F6, 0x94652D)),
    ("Shenzhen iComm Semiconductor CO.,LTD", (0x60FB00,)),
    ("Qingdao Haier Multimedia Limited.", (0x80DA13,)),
    ("QING DAO HAIER TELECOM CO.,LTD.", (0x28FAA0,)),
    ("Hui Zhou Gaoshengda Technology Co.,LTD", (0x88D50C,)),
    ("Fiberhome Telecommunication Technologies Co.,LTD", (0x48F97C,)),
    ("Tenda Technology Co.,Ltd.Dongguan branch", (0xC83A35,)),
    ("Beijing Xiaomi Electronics Co.,Ltd", (0x786A89,)),
    ("Earda Technologies co Ltd", (0x585FF6,)),
    ("Guangzhou Shiyuan Electronics Co., Ltd.", (0x14F5F9,)),
    ("Shenzhen Cultraview Digital Technology Co., Ltd", (0x1091D1,)),
    ("Raspberry Pi Foundation", (0xB827EB, 0xDCA632)),
    ("Cisco Systems, Inc", (0x00562B, 0x58971E)),
    ("D-Link International", (0x340804, 0xC4E90A)),
    ("Intel Corporate", (0x3C5282, 0xA0510B)),
    ("TP-LINK TECHNOLOGIES CO.,LTD.", (0x50C7BF, 0x98DAC4)),
    ("Espressif Inc.", (0x2462AB, 0x8CAAB5)),
    ("Nanoleaf", (0x00557B,)),
)


class OuiRegistry:
    """OUI -> vendor lookups over a fixed table.

    ``lookup`` returns ``None`` for unlisted OUIs, mirroring how the
    paper distinguishes "(Unlisted)" MAC blocks from registered ones.
    """

    def __init__(self, vendors: Iterable[Vendor]) -> None:
        self._vendors = tuple(vendors)
        self._by_oui: dict[int, Vendor] = {}
        for vendor in self._vendors:
            for oui in vendor.ouis:
                if oui in self._by_oui:
                    raise ValueError(
                        f"OUI {oui:#08x} assigned to both "
                        f"{self._by_oui[oui].name!r} and {vendor.name!r}"
                    )
                self._by_oui[oui] = vendor

    @property
    def vendors(self) -> tuple[Vendor, ...]:
        return self._vendors

    def lookup(self, oui: int) -> Optional[Vendor]:
        """Resolve an OUI; ``None`` if not registered."""
        return self._by_oui.get(oui)

    def lookup_mac(self, mac: int) -> Optional[Vendor]:
        """Resolve a full MAC address via its OUI."""
        return self.lookup(eui64.oui_of(mac))

    def vendor_named(self, name: str) -> Vendor:
        """Find a vendor by exact name (raises ``KeyError`` if absent)."""
        for vendor in self._vendors:
            if vendor.name == name:
                return vendor
        raise KeyError(name)

    def is_listed(self, oui: int) -> bool:
        return oui in self._by_oui

    def __len__(self) -> int:
        return len(self._by_oui)


def default_registry() -> OuiRegistry:
    """The registry used throughout the reproduction."""
    return OuiRegistry(Vendor(name, ouis) for name, ouis in _VENDOR_TABLE)


#: An OUI deliberately absent from the registry, used by the world
#: generator for devices whose vendor the IEEE database does not list.
#: The top byte keeps the U/L and I/G bits clear: the MAC *claims*
#: global uniqueness, its vendor just is not registered.
UNLISTED_OUI = 0xE47001

#: A locally administered OUI (U/L bit set in the top byte).
LOCAL_OUI = 0x0255AA
