"""Simulated-internet substrate: virtual time, datagrams, streams, taps."""

from repro.net.clock import DAY, HOUR, MINUTE, SECOND, WEEK, EventScheduler, VirtualClock
from repro.net.dns import DnsRecord, DnsZone
from repro.net.packet import Datagram, PacketRecord, Transport
from repro.net.rdns import ReverseDns
from repro.net.simnet import Host, Network, SimpleSession, Stream

__all__ = [
    "DAY",
    "Datagram",
    "DnsRecord",
    "DnsZone",
    "EventScheduler",
    "HOUR",
    "Host",
    "MINUTE",
    "Network",
    "PacketRecord",
    "ReverseDns",
    "SECOND",
    "SimpleSession",
    "Stream",
    "Transport",
    "VirtualClock",
    "WEEK",
]
