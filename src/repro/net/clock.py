"""A virtual clock driving every time-dependent component.

Nothing in the reproduction reads wall-clock time: the collection
window, scan cool-downs, protocol inter-scan delays, and the telescope's
actor-timing analysis all consume this clock, which makes every
experiment deterministic and instantaneous to run.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, List


class VirtualClock:
    """Monotonic simulated time, in seconds since the experiment epoch."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; negative steps are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot move time backwards by {seconds}")
        self._now += seconds
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Jump to an absolute time at or after the current time."""
        if timestamp < self._now:
            raise ValueError(
                f"cannot move time backwards to {timestamp} (now {self._now})"
            )
        self._now = timestamp
        return self._now


@dataclass(order=True)
class _Event:
    when: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventScheduler:
    """A tiny discrete-event loop on top of :class:`VirtualClock`.

    Components schedule callbacks at absolute or relative simulated
    times; :meth:`run_until` executes them in order while advancing the
    clock.  This is what lets the NTP pool emit client request streams,
    the scanner honour its inter-protocol delays, and third-party actors
    scan "days" after sourcing an address — all inside one process.
    """

    def __init__(self, clock: VirtualClock) -> None:
        self.clock = clock
        self._heap: List[_Event] = []
        self._counter = itertools.count()

    def call_at(self, when: float, action: Callable[[], None]) -> _Event:
        """Schedule ``action`` at absolute simulated time ``when``."""
        if when < self.clock.now():
            raise ValueError(
                f"cannot schedule at {when}, clock already at {self.clock.now()}"
            )
        event = _Event(when=when, sequence=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return event

    def call_later(self, delay: float, action: Callable[[], None]) -> _Event:
        """Schedule ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.call_at(self.clock.now() + delay, action)

    def cancel(self, event: _Event) -> None:
        """Cancel a pending event (lazy removal)."""
        event.cancelled = True

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled scheduled events."""
        return sum(1 for event in self._heap if not event.cancelled)

    def run_until(self, deadline: float) -> int:
        """Run all events scheduled up to and including ``deadline``.

        The clock ends at ``deadline`` even if the queue drains earlier.
        Returns the number of events executed.
        """
        executed = 0
        while self._heap and self._heap[0].when <= deadline:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.clock.advance_to(max(event.when, self.clock.now()))
            event.action()
            executed += 1
        self.clock.advance_to(max(deadline, self.clock.now()))
        return executed

    def run_all(self, limit: int = 10_000_000) -> int:
        """Drain the queue completely (with a runaway guard)."""
        executed = 0
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            if executed >= limit:
                raise RuntimeError("event limit exceeded; runaway schedule?")
            self.clock.advance_to(max(event.when, self.clock.now()))
            event.action()
            executed += 1
        return executed


#: Convenience constants for expressing simulated durations.
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86_400.0
WEEK = 7 * DAY
