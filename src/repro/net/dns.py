"""A minimal forward-DNS zone with dynamic-DNS semantics.

The TUM-style hitlist is DNS-fed: certificate-transparency logs, zone
files and reverse lookups yield *names*, which resolve to addresses at
list-build time.  For end-user devices those names are dynamic-DNS
records — and DDNS clients lag, so a fraction of resolutions return the
*previous* address of a churned host.  The zone keeps one level of
history to model exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Tuple


@dataclass
class DnsRecord:
    """One AAAA record with its previous value (DDNS history)."""

    name: str
    address: int
    updated_at: float
    previous: Optional[int] = None


class DnsZone:
    """name → address registry with one-deep update history."""

    def __init__(self) -> None:
        self._records: Dict[str, DnsRecord] = {}

    def register(self, name: str, address: int, now: float = 0.0) -> None:
        """Create a record; re-registering behaves like an update."""
        if not name:
            raise ValueError("DNS name must be non-empty")
        existing = self._records.get(name)
        if existing is not None:
            self.update(name, address, now)
            return
        self._records[name] = DnsRecord(name=name, address=address,
                                        updated_at=now)

    def update(self, name: str, address: int, now: float = 0.0) -> None:
        """Dynamic-DNS update: the old address becomes history."""
        record = self._records.get(name)
        if record is None:
            raise KeyError(f"no record named {name!r}")
        if address == record.address:
            return
        record.previous = record.address
        record.address = address
        record.updated_at = now

    def resolve(self, name: str) -> Optional[int]:
        """Current address of a name, or None (NXDOMAIN)."""
        record = self._records.get(name)
        return record.address if record else None

    def resolve_stale(self, name: str) -> Optional[int]:
        """The *previous* address (what a lagging cache would return)."""
        record = self._records.get(name)
        if record is None:
            return None
        return record.previous if record.previous is not None \
            else record.address

    def record(self, name: str) -> DnsRecord:
        return self._records[name]

    def names(self) -> Tuple[str, ...]:
        return tuple(self._records)

    def __iter__(self) -> Iterator[DnsRecord]:
        return iter(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, name: str) -> bool:
        return name in self._records
