"""Wire-level records exchanged over the simulated network.

The simulator delivers whole datagrams and whole stream writes; there is
no fragmentation.  Every delivery is also offered to registered *taps*
as a :class:`PacketRecord`, which is how the telescope observes inbound
scan traffic without the scanned service having to cooperate.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Transport(enum.Enum):
    """Transport protocol of a delivery."""

    UDP = "udp"
    TCP = "tcp"


@dataclass(frozen=True)
class Datagram:
    """A single UDP datagram in flight."""

    src: int
    src_port: int
    dst: int
    dst_port: int
    payload: bytes

    def reply(self, payload: bytes) -> "Datagram":
        """Build the response datagram with endpoints swapped."""
        return Datagram(
            src=self.dst,
            src_port=self.dst_port,
            dst=self.src,
            dst_port=self.src_port,
            payload=payload,
        )


@dataclass(frozen=True)
class PacketRecord:
    """What a network tap sees for one delivery.

    ``syn`` marks the connection-opening event of a TCP exchange so that
    taps can count connection attempts (the telescope's unit of
    observation) separately from in-connection writes.
    """

    time: float
    transport: Transport
    src: int
    src_port: int
    dst: int
    dst_port: int
    size: int
    syn: bool = False
    delivered: bool = True
