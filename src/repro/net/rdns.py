"""A minimal reverse-DNS registry.

Good Internet citizenship (paper Appendix A.2.2) means scanners
identify themselves: research scanners publish PTR records like
``research-scanner-1.university.example`` and host an explanation page.
Section 5 uses exactly this signal to tell the overt research actor
from the covert one (which publishes nothing).

The registry is deliberately simple — name lookups by exact address —
because that is all both the ethics setup and the detector consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

#: Substrings that mark a PTR name as self-identifying research.
RESEARCH_MARKERS = ("research", "scan", "survey", "measurement")


class ReverseDns:
    """address → PTR name mappings."""

    def __init__(self) -> None:
        self._records: Dict[int, str] = {}

    def register(self, address: int, name: str) -> None:
        """Publish a PTR record (overwrites an existing one)."""
        if not name:
            raise ValueError("PTR name must be non-empty")
        self._records[address] = name

    def register_range(self, addresses: Iterable[int], pattern: str) -> None:
        """Publish records for many addresses; ``{index}`` interpolates."""
        for index, address in enumerate(addresses):
            self.register(address, pattern.format(index=index))

    def lookup(self, address: int) -> Optional[str]:
        """The PTR name of an address, or None (NXDOMAIN)."""
        return self._records.get(address)

    def entries(self) -> List[tuple]:
        """Every ``(address, name)`` record, address-ascending.

        The zone-walk view: rDNS-walking scanners enumerate a zone the
        way AXFR/NSEC walking does in the wild, and deterministic order
        keeps their probe plans reproducible.
        """
        return sorted(self._records.items())

    def addresses_of(self, name: str) -> List[int]:
        """Every address publishing ``name`` (duplicate-identity check).

        Real PTR records are address-keyed, so the same name *can* be
        registered on many addresses; callers that require a unique
        identity (the study scanner) use this to assert it.
        """
        return [address for address, ptr in self._records.items()
                if ptr == name]

    def identifies_research(self, address: int) -> bool:
        """Whether the address self-identifies as a research scanner."""
        name = self.lookup(address)
        if name is None:
            return False
        lowered = name.lower()
        return any(marker in lowered for marker in RESEARCH_MARKERS)

    def __len__(self) -> int:
        return len(self._records)
