"""An event-driven simulated IPv6 internet.

Hosts register under integer IPv6 addresses and bind UDP handlers or TCP
services on ports.  The network delivers whole messages synchronously —
a deliberate simplification that keeps million-address experiments fast
while preserving the observable behaviour every scan module depends on:

* a UDP request either yields a response datagram, silence (no handler
  or handler declined), or loss;
* a TCP connect either succeeds (yielding a duplex, request/response
  :class:`Stream`) or is refused/unanswered;
* every delivery attempt is offered to registered taps, so passive
  observers (the telescope, packet counters) see traffic they do not
  terminate.

Unreachability is first-class: a host can be registered with
``reachable=False`` (e.g. behind a CPE firewall), which models the
paper's observation that NTP-sourced end-user addresses have a very low
scan hit rate (~0.4 permille) — clients *send* NTP packets but rarely
*accept* inbound connections.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Protocol

from repro.net.clock import VirtualClock
from repro.net.packet import Datagram, PacketRecord, Transport

#: A UDP handler consumes a datagram and optionally returns the response
#: payload (which the network sends back to the source).  A handler may
#: also return a *sequence* of payloads — one response datagram each, in
#: order — which is how fragmented protocols (NTP mode-6 windows, mode-7
#: monlist trains) amplify a single request into a packet burst.
UdpHandler = Callable[[Datagram], "UdpResponse"]

UdpResponse = Optional[object]  # bytes | Sequence[bytes] | None

#: A tap observes every delivery attempt.
Tap = Callable[[PacketRecord], None]


class TcpSession(Protocol):
    """Server side of one TCP connection.

    The engine drives the session synchronously: ``greeting`` is what
    the server emits immediately after accept (SSH banners, AMQP needs
    none), ``on_data`` consumes one client write and returns the
    server's response bytes (or ``None`` for silence).  Setting
    ``closed`` ends the connection.
    """

    closed: bool

    def greeting(self) -> bytes: ...

    def on_data(self, data: bytes) -> Optional[bytes]: ...


class TcpService(Protocol):
    """Factory producing one :class:`TcpSession` per accepted connection."""

    def accept(self, peer: int, peer_port: int) -> TcpSession: ...


@dataclass
class SimpleSession:
    """A canned session: fixed greeting, function-driven responses."""

    respond: Callable[[bytes], Optional[bytes]]
    banner: bytes = b""
    closed: bool = False

    def greeting(self) -> bytes:
        return self.banner

    def on_data(self, data: bytes) -> Optional[bytes]:
        return self.respond(data)


class Stream:
    """Client handle on an established simulated TCP connection."""

    def __init__(self, network: "Network", session: TcpSession,
                 local: int, local_port: int, remote: int, remote_port: int) -> None:
        self._network = network
        self._session = session
        self.local = local
        self.local_port = local_port
        self.remote = remote
        self.remote_port = remote_port
        self._greeting_read = False

    @property
    def closed(self) -> bool:
        return self._session.closed

    def read_greeting(self) -> bytes:
        """Bytes the server sent on accept (empty for most protocols)."""
        if self._greeting_read:
            return b""
        self._greeting_read = True
        return self._session.greeting()

    def write(self, data: bytes) -> Optional[bytes]:
        """Send bytes; returns the server's synchronous response."""
        if self._session.closed:
            raise ConnectionResetError("stream is closed")
        self._network._record(
            Transport.TCP, self.local, self.local_port,
            self.remote, self.remote_port, len(data),
        )
        response = self._session.on_data(data)
        if response is not None:
            self._network._record(
                Transport.TCP, self.remote, self.remote_port,
                self.local, self.local_port, len(response),
            )
        return response

    def close(self) -> None:
        self._session.closed = True


@dataclass
class Host:
    """One addressable node: its services and reachability."""

    address: int
    reachable: bool = True
    udp_handlers: Dict[int, UdpHandler] = field(default_factory=dict)
    tcp_services: Dict[int, TcpService] = field(default_factory=dict)

    def bind_udp(self, port: int, handler: UdpHandler) -> None:
        if port in self.udp_handlers:
            raise ValueError(f"UDP port {port} already bound on {self.address:#x}")
        self.udp_handlers[port] = handler

    def bind_tcp(self, port: int, service: TcpService) -> None:
        if port in self.tcp_services:
            raise ValueError(f"TCP port {port} already bound on {self.address:#x}")
        self.tcp_services[port] = service


class Network:
    """The simulated internet fabric.

    Parameters
    ----------
    clock:
        Simulated time source stamped onto every tap record.
    loss_rate:
        Probability that any single delivery silently vanishes, drawn
        from ``rng``.  Zero by default so unit tests are exact.
    """

    def __init__(self, clock: Optional[VirtualClock] = None,
                 loss_rate: float = 0.0,
                 rng: Optional[random.Random] = None) -> None:
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError(f"loss_rate must be in [0, 1), got {loss_rate}")
        self.clock = clock or VirtualClock()
        self.loss_rate = loss_rate
        self._rng = rng or random.Random(0)
        self._hosts: Dict[int, Host] = {}
        self._wildcards: Dict[int, Host] = {}
        self._taps: List[Tap] = []
        self._ephemeral = 49152
        #: Topology mutation counter.  Snapshot caches (the persistent
        #: worker pool's pickle-once layer) key on ``(network, version,
        #: clock)`` to decide whether a shipped world view is still
        #: valid, so every host add/remove/move bumps it.  Re-binding a
        #: service on an *existing* host does not — world builders bind
        #: at materialize time, right after ``add_host``.
        self.version = 0

    # -- topology -----------------------------------------------------

    def add_host(self, address: int, reachable: bool = True) -> Host:
        """Register a host; re-adding an address returns the existing host."""
        host = self._hosts.get(address)
        if host is None:
            host = Host(address=address, reachable=reachable)
            self._hosts[address] = host
            self.version += 1
        return host

    def remove_host(self, address: int) -> None:
        """Drop a host (e.g. its dynamic prefix rotated away)."""
        if self._hosts.pop(address, None) is not None:
            self.version += 1

    def host(self, address: int) -> Optional[Host]:
        host = self._hosts.get(address)
        if host is not None:
            return host
        return self._wildcards.get(address >> 64)

    def add_wildcard_host(self, prefix64: int, reachable: bool = True) -> Host:
        """Register a host answering for *every* address of a /64.

        This models aliased prefixes: load balancers and CDN edges that
        accept connections on any address of their subnet — the regions
        that inflate hitlists and give target generators their easy
        hits (Gasser et al., "Clusters in the expanse").
        """
        key = prefix64 >> 64
        host = self._wildcards.get(key)
        if host is None:
            host = Host(address=prefix64, reachable=reachable)
            self._wildcards[key] = host
            self.version += 1
        return host

    def is_wildcard(self, address: int) -> bool:
        """Whether an address is served by an aliased /64."""
        return address not in self._hosts and \
            (address >> 64) in self._wildcards

    def move_host(self, old_address: int, new_address: int) -> Host:
        """Re-home a host under a new address, keeping its services.

        This models dynamic-prefix churn: the same physical device keeps
        its services and identity but becomes reachable at a different
        IPv6 address.
        """
        host = self._hosts.pop(old_address, None)
        if host is None:
            raise KeyError(f"no host at {old_address:#x}")
        host.address = new_address
        self._hosts[new_address] = host
        self.version += 1
        return host

    @property
    def host_count(self) -> int:
        return len(self._hosts)

    @property
    def tap_count(self) -> int:
        """Attached passive observers (the parallel scan backend refuses
        to run when taps would miss the workers' traffic)."""
        return len(self._taps)

    def add_tap(self, tap: Tap) -> None:
        """Attach a passive observer to every delivery attempt."""
        self._taps.append(tap)

    def remove_tap(self, tap: Tap) -> None:
        self._taps.remove(tap)

    def ephemeral_port(self) -> int:
        """Allocate a client-side port (wraps within the dynamic range)."""
        port = self._ephemeral
        self._ephemeral += 1
        if self._ephemeral > 65535:
            self._ephemeral = 49152
        return port

    # -- delivery -----------------------------------------------------

    def _lost(self) -> bool:
        return self.loss_rate > 0 and self._rng.random() < self.loss_rate

    def _record(self, transport: Transport, src: int, src_port: int,
                dst: int, dst_port: int, size: int,
                syn: bool = False, delivered: bool = True) -> None:
        if not self._taps:
            return
        record = PacketRecord(
            time=self.clock.now(), transport=transport,
            src=src, src_port=src_port, dst=dst, dst_port=dst_port,
            size=size, syn=syn, delivered=delivered,
        )
        for tap in self._taps:
            tap(record)

    def _deliver_datagram(self, datagram: Datagram) -> List[Datagram]:
        """Deliver one UDP datagram; returns every response datagram.

        Handlers returning a single ``bytes`` payload produce at most
        one response (the seed contract); handlers returning a sequence
        produce one response datagram per payload, each with its own
        loss draw and tap record — a passive observer sees the whole
        amplified train, not just the first fragment.
        """
        lost = self._lost()
        self._record(
            Transport.UDP, datagram.src, datagram.src_port,
            datagram.dst, datagram.dst_port, len(datagram.payload),
            delivered=not lost,
        )
        if lost:
            return []
        host = self.host(datagram.dst)
        if host is None or not host.reachable:
            return []
        handler = host.udp_handlers.get(datagram.dst_port)
        if handler is None:
            return []
        payload = handler(datagram)
        if payload is None:
            return []
        payloads = ([payload] if isinstance(payload, (bytes, bytearray))
                    else list(payload))
        responses: List[Datagram] = []
        for part in payloads:
            response = datagram.reply(bytes(part))
            if self._lost():
                self._record(
                    Transport.UDP, response.src, response.src_port,
                    response.dst, response.dst_port, len(response.payload),
                    delivered=False,
                )
                continue
            self._record(
                Transport.UDP, response.src, response.src_port,
                response.dst, response.dst_port, len(response.payload),
            )
            responses.append(response)
        return responses

    def send_datagram(self, datagram: Datagram) -> Optional[Datagram]:
        """Deliver a UDP datagram; returns the first response datagram.

        The single-response face of :meth:`_deliver_datagram` — the
        contract every mode-3/4 exchange uses.  Multi-packet consumers
        (the NTP control-plane scan) use :meth:`udp_request_multi`.
        """
        responses = self._deliver_datagram(datagram)
        return responses[0] if responses else None

    def udp_request(self, src: int, dst: int, dst_port: int,
                    payload: bytes, src_port: Optional[int] = None) -> Optional[bytes]:
        """Convenience: one UDP round trip, returning the response payload."""
        datagram = Datagram(
            src=src, src_port=src_port or self.ephemeral_port(),
            dst=dst, dst_port=dst_port, payload=payload,
        )
        response = self.send_datagram(datagram)
        return response.payload if response else None

    def udp_request_multi(self, src: int, dst: int, dst_port: int,
                          payload: bytes,
                          src_port: Optional[int] = None) -> List[bytes]:
        """One request, every response payload (fragmented protocols).

        Returns the full response train in send order — empty on
        silence, loss, or an unreachable host.  Lost fragments are
        dropped individually (each has its own loss draw), exactly the
        failure mode a real monlist train exhibits.
        """
        datagram = Datagram(
            src=src, src_port=src_port or self.ephemeral_port(),
            dst=dst, dst_port=dst_port, payload=payload,
        )
        return [response.payload
                for response in self._deliver_datagram(datagram)]

    def tcp_connect(self, src: int, dst: int, dst_port: int,
                    src_port: Optional[int] = None) -> Optional[Stream]:
        """Attempt a TCP connection; ``None`` models refusal/timeout."""
        port = src_port or self.ephemeral_port()
        lost = self._lost()
        self._record(Transport.TCP, src, port, dst, dst_port, 0,
                     syn=True, delivered=not lost)
        if lost:
            return None
        host = self.host(dst)
        if host is None or not host.reachable:
            return None
        service = host.tcp_services.get(dst_port)
        if service is None:
            return None
        session = service.accept(src, port)
        return Stream(self, session, src, port, dst, dst_port)
