"""NTP substrate: RFC 5905 codec, SNTP server/client, pool simulator."""

from repro.ntp.client import NtpClient, SyncResult
from repro.ntp.packet import (
    KISS_DENY,
    KISS_RATE,
    LeapIndicator,
    Mode,
    NtpDecodeError,
    NtpPacket,
    client_request,
    from_ntp_time,
    kiss_code,
    kiss_of_death,
    server_response,
    to_ntp_time,
)
from repro.ntp.pool import NtpPool, PoolServer, weighted_request_rates
from repro.ntp.server import NTP_PORT, NtpServer, ServerStats

__all__ = [
    "KISS_DENY",
    "KISS_RATE",
    "LeapIndicator",
    "Mode",
    "NTP_PORT",
    "NtpClient",
    "NtpDecodeError",
    "NtpPacket",
    "NtpPool",
    "NtpServer",
    "PoolServer",
    "ServerStats",
    "SyncResult",
    "client_request",
    "from_ntp_time",
    "kiss_code",
    "kiss_of_death",
    "server_response",
    "to_ntp_time",
    "weighted_request_rates",
]
