"""An SNTP client for the simulated network.

Used in two roles: (i) the world's device population synchronizing
against the pool (their requests are what the collector captures), and
(ii) the telescope, which sends one query per bait address and later
watches that address for inbound scans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.net.clock import VirtualClock
from repro.net.simnet import Network
from repro.ntp.packet import (
    Mode,
    NtpDecodeError,
    NtpPacket,
    client_request,
    from_ntp_time,
    kiss_code,
)
from repro.ntp.server import NTP_PORT


@dataclass(frozen=True)
class SyncResult:
    """Outcome of one successful SNTP exchange."""

    server: int
    stratum: int
    offset: float
    round_trip: float
    response: NtpPacket


class NtpClient:
    """Fire-and-collect SNTP client bound to one source address."""

    def __init__(self, network: Network, address: int,
                 clock: Optional[VirtualClock] = None) -> None:
        self.network = network
        self.address = address
        self.clock = clock or network.clock
        #: Kiss codes received (RFC 5905: the client MUST back off).
        self.kisses: list = []
        network.add_host(address, reachable=True)

    def query(self, server: int, version: int = 4) -> Optional[SyncResult]:
        """Send one mode-3 request; returns ``None`` on timeout/garbage."""
        t1 = self.clock.now()
        request = client_request(t1, version=version)
        payload = self.network.udp_request(
            self.address, server, NTP_PORT, request.encode()
        )
        if payload is None:
            return None
        try:
            response = NtpPacket.decode(payload)
        except NtpDecodeError:
            return None
        if response.mode is not Mode.SERVER:
            return None
        code = kiss_code(response)
        if code is not None:
            # Kiss-o'-death: record it and abandon the exchange.
            self.kisses.append(code)
            return None
        if response.origin_timestamp != request.transmit_timestamp:
            # Bogus/unsolicited reply (RFC 5905 TEST2).
            return None
        t4 = self.clock.now()
        t2 = from_ntp_time(response.receive_timestamp)
        t3 = from_ntp_time(response.transmit_timestamp)
        offset = ((t2 - t1) + (t3 - t4)) / 2
        round_trip = (t4 - t1) - (t3 - t2)
        return SyncResult(
            server=server,
            stratum=response.stratum,
            offset=offset,
            round_trip=round_trip,
            response=response,
        )
