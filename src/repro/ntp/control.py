"""NTP mode-6 (control) and mode-7 (private/monlist) codecs.

RFC 5905 describes the clean time-sync exchange; the messy operational
surface of a real pool server lives in two side protocols:

* **mode 6** — the control protocol of RFC 1305 appendix B, still the
  wire format ``ntpq`` speaks: a 12-byte header (response/error/more
  flags plus a 5-bit opcode, sequence, status, association ID) framing
  an opaque data area windowed by *offset/count* fields.  Responses
  larger than one fragment are split into several packets sharing one
  sequence number, each carrying its window of the payload and the
  *more* bit on all but the last.
* **mode 7** — the pre-RFC private protocol of classic ``ntpd``
  (``ntpdc``), whose ``MON_GETLIST_1`` request ("monlist") asks for the
  server's recent-client table.  The request is a fixed 72-byte packet;
  the response is a train of packets carrying up to
  :data:`MONLIST_ENTRIES_PER_PACKET` 72-byte entries each (440 bytes a
  packet) — the classic UDP amplification vector this module exists to
  measure.

Both codecs raise :class:`~repro.ntp.packet.NtpDecodeError` subclasses
on malformed input, never a bare ``struct.error``.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.ntp.packet import NtpDecodeError

#: Mode bits of the two side protocols (low 3 bits of byte 0).
MODE_CONTROL = 6
MODE_PRIVATE = 7

#: Version number both side protocols conventionally carry (``ntpq``
#: and ``ntpdc`` stamp VN=2 regardless of the daemon's NTP version).
CONTROL_VERSION = 2


def peek_mode(data: bytes) -> Optional[int]:
    """The mode bits of a packet's first byte (None for empty input).

    Lets a server dispatch mode-6/7 traffic *before* attempting the
    48-byte RFC 5905 decode — control packets are shorter than a time
    packet and would otherwise count as malformed.
    """
    if not data:
        return None
    return data[0] & 0x7


# -- mode 6: the control protocol (RFC 1305 appendix B) ----------------------

#: LI/VN/mode, R|E|M+opcode, sequence, status, association, offset, count.
_CONTROL_HEADER = struct.Struct("!BBHHHHH")

CONTROL_HEADER_SIZE = _CONTROL_HEADER.size  # 12

#: Control opcodes (the two ``ntpq`` uses for reconnaissance).
OP_READSTAT = 1
OP_READVAR = 2

#: Largest data window one control fragment carries (RFC 1305: the data
#: area holds at most 468 octets).
MAX_CONTROL_DATA = 468


class ControlDecodeError(NtpDecodeError):
    """Raised when bytes do not form a valid mode-6 control packet."""


@dataclass(frozen=True)
class ControlPacket:
    """One mode-6 control packet (request or response fragment)."""

    opcode: int = OP_READVAR
    sequence: int = 0
    status: int = 0
    association_id: int = 0
    offset: int = 0
    data: bytes = b""
    response: bool = False
    error: bool = False
    more: bool = False
    version: int = CONTROL_VERSION

    @property
    def count(self) -> int:
        """The data window's length (the wire's *count* field)."""
        return len(self.data)

    def encode(self) -> bytes:
        """Serialize to wire format (data zero-padded to 32 bits)."""
        if not 1 <= self.version <= 7:
            raise ValueError(
                f"control version out of range: {self.version}")
        if not 0 <= self.opcode <= 0x1F:
            raise ValueError(f"control opcode out of range: {self.opcode}")
        for name in ("sequence", "status", "association_id", "offset"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"control {name} out of range: {value}")
        if len(self.data) > MAX_CONTROL_DATA:
            raise ValueError(
                f"control data too long: {len(self.data)} > "
                f"{MAX_CONTROL_DATA}")
        first = ((self.version & 0x7) << 3) | MODE_CONTROL
        flags = ((0x80 if self.response else 0)
                 | (0x40 if self.error else 0)
                 | (0x20 if self.more else 0)
                 | (self.opcode & 0x1F))
        header = _CONTROL_HEADER.pack(
            first, flags, self.sequence, self.status,
            self.association_id, self.offset, len(self.data))
        padding = b"\0" * (-len(self.data) % 4)
        return header + self.data + padding

    @classmethod
    def decode(cls, data: bytes) -> "ControlPacket":
        """Parse wire bytes; raises :class:`ControlDecodeError`."""
        if len(data) < CONTROL_HEADER_SIZE:
            raise ControlDecodeError(
                f"control packet too short: {len(data)} < "
                f"{CONTROL_HEADER_SIZE} bytes")
        (first, flags, sequence, status, association_id, offset,
         count) = _CONTROL_HEADER.unpack(data[:CONTROL_HEADER_SIZE])
        if first & 0x7 != MODE_CONTROL:
            raise ControlDecodeError(
                f"mode {first & 0x7} is not a control packet")
        version = (first >> 3) & 0x7
        if version == 0:
            raise ControlDecodeError("control version 0 is invalid")
        payload = data[CONTROL_HEADER_SIZE:]
        if count > len(payload):
            raise ControlDecodeError(
                f"control count {count} exceeds the {len(payload)} data "
                "bytes present")
        return cls(
            opcode=flags & 0x1F,
            sequence=sequence,
            status=status,
            association_id=association_id,
            offset=offset,
            data=payload[:count],
            response=bool(flags & 0x80),
            error=bool(flags & 0x40),
            more=bool(flags & 0x20),
            version=version,
        )


def readvar_request(sequence: int = 0,
                    association_id: int = 0) -> ControlPacket:
    """The ``ntpq -c rv`` request: read the peer/system variables."""
    return ControlPacket(opcode=OP_READVAR, sequence=sequence,
                         association_id=association_id)


def readstat_request(sequence: int = 0) -> ControlPacket:
    """The ``ntpq -c as`` request: read association status words."""
    return ControlPacket(opcode=OP_READSTAT, sequence=sequence)


def fragment_response(request: ControlPacket, data: bytes, *,
                      status: int = 0,
                      mtu: int = MAX_CONTROL_DATA) -> List[ControlPacket]:
    """Window ``data`` into the request's response fragments.

    Every fragment mirrors the request's opcode/sequence/association,
    carries its offset/count window, and sets the *more* bit on all but
    the last — exactly the reassembly contract ``ntpq`` implements.  An
    empty payload still produces one (empty) response packet.
    """
    if not 1 <= mtu <= MAX_CONTROL_DATA:
        raise ValueError(f"mtu={mtu}: must be in [1, {MAX_CONTROL_DATA}]")
    windows = [data[start:start + mtu]
               for start in range(0, len(data), mtu)] or [b""]
    return [
        ControlPacket(
            opcode=request.opcode, sequence=request.sequence,
            status=status, association_id=request.association_id,
            offset=index * mtu, data=window, response=True,
            more=index < len(windows) - 1, version=request.version)
        for index, window in enumerate(windows)
    ]


def reassemble(fragments: Iterable[ControlPacket]) -> bytes:
    """Stitch response fragments back into the full data payload.

    Fragments may arrive in any order; offsets must tile the payload
    contiguously and exactly one fragment (the window ending last) may
    clear the *more* bit.  Raises :class:`ControlDecodeError` on gaps,
    overlaps, or a missing/extra final fragment.
    """
    ordered = sorted(fragments, key=lambda fragment: fragment.offset)
    if not ordered:
        raise ControlDecodeError("no control fragments to reassemble")
    data = b""
    for index, fragment in enumerate(ordered):
        if not fragment.response:
            raise ControlDecodeError(
                f"fragment at offset {fragment.offset} is not a response")
        if fragment.offset != len(data):
            raise ControlDecodeError(
                f"fragment offset {fragment.offset} does not continue "
                f"the {len(data)} bytes reassembled so far")
        data += fragment.data
        last = index == len(ordered) - 1
        if fragment.more == last:
            raise ControlDecodeError(
                f"fragment at offset {fragment.offset} has more="
                f"{fragment.more} but is{'' if last else ' not'} final")
    return data


# -- mode 7: the private protocol (monlist) ----------------------------------

#: R|M|VN|mode, A|sequence, implementation, reqcode, err|nitems, mbz|size.
_PRIVATE_HEADER = struct.Struct("!BBBBHH")

PRIVATE_HEADER_SIZE = _PRIVATE_HEADER.size  # 8

#: The classic ``ntpd`` implementation number ``ntpdc`` speaks to.
IMPL_XNTPD = 3

#: The monlist request code (MON_GETLIST_1).
REQ_MON_GETLIST_1 = 42

#: Mode-7 error codes (the subset the simulation emits).
ERR_NONE = 0
ERR_REQ_DENIED = 3

#: A monlist request is a fixed-size packet: 8-byte header plus a
#: zeroed data area (the auth/padding region legacy ntpdc always sent).
MONLIST_REQUEST_SIZE = 72

#: One recent-client record on the wire.
MONLIST_ENTRY_SIZE = 72

#: Entries per response packet: 6 × 72 + 8 = 440-byte responses, the
#: amplification payload the DRDoS literature measures.
MONLIST_ENTRIES_PER_PACKET = 6

MONLIST_PACKET_SIZE = (PRIVATE_HEADER_SIZE
                       + MONLIST_ENTRIES_PER_PACKET * MONLIST_ENTRY_SIZE)


class PrivateDecodeError(NtpDecodeError):
    """Raised when bytes do not form a valid mode-7 private packet."""


@dataclass(frozen=True)
class PrivatePacket:
    """One mode-7 private packet (request or response fragment)."""

    request_code: int = REQ_MON_GETLIST_1
    implementation: int = IMPL_XNTPD
    sequence: int = 0
    err: int = ERR_NONE
    nitems: int = 0
    size: int = 0
    data: bytes = b""
    response: bool = False
    more: bool = False
    auth: bool = False
    version: int = CONTROL_VERSION

    def encode(self) -> bytes:
        """Serialize to wire format."""
        if not 1 <= self.version <= 7:
            raise ValueError(
                f"private version out of range: {self.version}")
        if not 0 <= self.sequence <= 0x7F:
            raise ValueError(
                f"private sequence out of range: {self.sequence}")
        if not 0 <= self.err <= 0xF:
            raise ValueError(f"private err out of range: {self.err}")
        if not 0 <= self.nitems <= 0xFFF:
            raise ValueError(
                f"private nitems out of range: {self.nitems}")
        if not 0 <= self.size <= 0xFFF:
            raise ValueError(f"private size out of range: {self.size}")
        for name in ("request_code", "implementation"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFF:
                raise ValueError(f"private {name} out of range: {value}")
        if self.nitems * self.size > len(self.data):
            raise ValueError(
                f"private data holds {len(self.data)} bytes but "
                f"nitems*size claims {self.nitems * self.size}")
        first = ((0x80 if self.response else 0)
                 | (0x40 if self.more else 0)
                 | ((self.version & 0x7) << 3) | MODE_PRIVATE)
        second = (0x80 if self.auth else 0) | (self.sequence & 0x7F)
        header = _PRIVATE_HEADER.pack(
            first, second, self.implementation, self.request_code,
            ((self.err & 0xF) << 12) | (self.nitems & 0xFFF),
            self.size & 0xFFF)
        return header + self.data

    @classmethod
    def decode(cls, data: bytes) -> "PrivatePacket":
        """Parse wire bytes; raises :class:`PrivateDecodeError`."""
        if len(data) < PRIVATE_HEADER_SIZE:
            raise PrivateDecodeError(
                f"private packet too short: {len(data)} < "
                f"{PRIVATE_HEADER_SIZE} bytes")
        (first, second, implementation, request_code, err_nitems,
         mbz_size) = _PRIVATE_HEADER.unpack(data[:PRIVATE_HEADER_SIZE])
        if first & 0x7 != MODE_PRIVATE:
            raise PrivateDecodeError(
                f"mode {first & 0x7} is not a private packet")
        version = (first >> 3) & 0x7
        if version == 0:
            raise PrivateDecodeError("private version 0 is invalid")
        nitems = err_nitems & 0xFFF
        size = mbz_size & 0xFFF
        payload = data[PRIVATE_HEADER_SIZE:]
        if nitems * size > len(payload):
            raise PrivateDecodeError(
                f"private nitems*size {nitems * size} exceeds the "
                f"{len(payload)} data bytes present")
        return cls(
            request_code=request_code,
            implementation=implementation,
            sequence=second & 0x7F,
            err=(err_nitems >> 12) & 0xF,
            nitems=nitems,
            size=size,
            data=payload,
            response=bool(first & 0x80),
            more=bool(first & 0x40),
            auth=bool(second & 0x80),
            version=version,
        )


#: Wire layout of one monlist entry's meaningful fields; the remainder
#: of the 72-byte record is zero padding (the v4/v6 dual-stack fields
#: legacy ntpd carried).
_MONLIST_ENTRY = struct.Struct("!IIQQHBB")

_ENTRY_PAD = MONLIST_ENTRY_SIZE - _MONLIST_ENTRY.size - 16


@dataclass(frozen=True)
class MonlistEntry:
    """One recent client as a monlist response reports it."""

    #: The client's IPv6 address (16 bytes on the wire).
    address: int
    #: The client's source port.
    port: int = 0
    #: Packets received from the client.
    count: int = 1
    #: NTP mode of the client's last packet.
    mode: int = 3
    #: NTP version of the client's last packet.
    version: int = 4
    #: Seconds since the client's last packet.
    last_seen: int = 0
    #: Seconds since the client's first packet.
    first_seen: int = 0

    def encode(self) -> bytes:
        """Serialize one 72-byte record."""
        if not 0 <= self.address < (1 << 128):
            raise ValueError(f"address out of range: {self.address:#x}")
        for name, bound in (("port", 0xFFFF), ("mode", 0xFF),
                            ("version", 0xFF)):
            value = getattr(self, name)
            if not 0 <= value <= bound:
                raise ValueError(f"monlist {name} out of range: {value}")
        for name in ("count", "last_seen", "first_seen"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFFFFFF:
                raise ValueError(f"monlist {name} out of range: {value}")
        packed = _MONLIST_ENTRY.pack(
            self.last_seen, self.first_seen, self.count, 0,
            self.port, self.mode, self.version)
        return (packed + self.address.to_bytes(16, "big")
                + b"\0" * _ENTRY_PAD)

    @classmethod
    def decode(cls, data: bytes) -> "MonlistEntry":
        """Parse one 72-byte record."""
        if len(data) != MONLIST_ENTRY_SIZE:
            raise PrivateDecodeError(
                f"monlist entry must be {MONLIST_ENTRY_SIZE} bytes, "
                f"got {len(data)}")
        (last_seen, first_seen, count, _, port, mode,
         version) = _MONLIST_ENTRY.unpack(data[:_MONLIST_ENTRY.size])
        start = _MONLIST_ENTRY.size
        address = int.from_bytes(data[start:start + 16], "big")
        return cls(address=address, port=port, count=count, mode=mode,
                   version=version, last_seen=last_seen,
                   first_seen=first_seen)


def monlist_request(sequence: int = 0) -> PrivatePacket:
    """The classic 72-byte MON_GETLIST_1 request."""
    return PrivatePacket(
        request_code=REQ_MON_GETLIST_1, sequence=sequence,
        data=b"\0" * (MONLIST_REQUEST_SIZE - PRIVATE_HEADER_SIZE))


def is_monlist_request(packet: PrivatePacket) -> bool:
    """Whether a decoded mode-7 packet asks for the monitor list."""
    return (not packet.response
            and packet.implementation == IMPL_XNTPD
            and packet.request_code == REQ_MON_GETLIST_1)


def monlist_response(entries: Sequence[MonlistEntry], *,
                     sequence: int = 0) -> List[PrivatePacket]:
    """Fragment a recent-client table into the response train.

    Up to :data:`MONLIST_ENTRIES_PER_PACKET` entries per packet, the
    *more* bit set on every packet but the last.  An empty table yields
    one empty response (err 0, nitems 0) — the "nothing monitored yet"
    answer, still distinct from the silence of a patched server.
    """
    encoded = [entry.encode() for entry in entries]
    groups = [encoded[start:start + MONLIST_ENTRIES_PER_PACKET]
              for start in range(0, len(encoded),
                                 MONLIST_ENTRIES_PER_PACKET)] or [[]]
    return [
        PrivatePacket(
            request_code=REQ_MON_GETLIST_1, sequence=sequence,
            nitems=len(group), size=MONLIST_ENTRY_SIZE if group else 0,
            data=b"".join(group), response=True,
            more=index < len(groups) - 1)
        for index, group in enumerate(groups)
    ]


def monlist_deny(sequence: int = 0) -> PrivatePacket:
    """An explicit mode-7 denial (err REQ_DENIED, no data)."""
    return PrivatePacket(
        request_code=REQ_MON_GETLIST_1, sequence=sequence,
        err=ERR_REQ_DENIED, response=True)


def decode_monlist(payloads: Iterable[bytes]
                   ) -> Tuple[List[MonlistEntry], int]:
    """Decode a monlist response train into ``(entries, err)``.

    Accepts the raw response payloads in arrival order; validates the
    more-bit chain (every packet but the last must announce more) and
    each packet's nitems/size framing.  A non-zero ``err`` short-
    circuits with no entries.
    """
    packets = [PrivatePacket.decode(payload) for payload in payloads]
    if not packets:
        raise PrivateDecodeError("no monlist packets to decode")
    entries: List[MonlistEntry] = []
    for index, packet in enumerate(packets):
        if not packet.response:
            raise PrivateDecodeError(
                f"monlist packet {index} is not a response")
        if packet.request_code != REQ_MON_GETLIST_1:
            raise PrivateDecodeError(
                f"monlist packet {index} answers request code "
                f"{packet.request_code}, not {REQ_MON_GETLIST_1}")
        if packet.err:
            return [], packet.err
        last = index == len(packets) - 1
        if packet.more == last:
            raise PrivateDecodeError(
                f"monlist packet {index} has more={packet.more} but "
                f"is{'' if last else ' not'} final")
        if packet.size not in (0, MONLIST_ENTRY_SIZE):
            raise PrivateDecodeError(
                f"monlist packet {index} reports entry size "
                f"{packet.size}, not {MONLIST_ENTRY_SIZE}")
        for item in range(packet.nitems):
            start = item * MONLIST_ENTRY_SIZE
            entries.append(MonlistEntry.decode(
                packet.data[start:start + MONLIST_ENTRY_SIZE]))
    return entries, ERR_NONE


def amplification_factor(request_bytes: int, response_bytes: int) -> float:
    """Bytes returned per byte sent — the DRDoS amplification metric."""
    if request_bytes <= 0:
        return 0.0
    return response_bytes / request_bytes
