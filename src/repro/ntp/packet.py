"""RFC 5905 NTPv4 packet codec.

The collection pipeline captures client addresses at real NTP servers,
so the reproduction speaks real NTP on the wire: 48-byte mode-3/mode-4
packets with the full header — leap indicator, version, mode, stratum,
poll, precision, root delay/dispersion, reference ID, and the four
64-bit timestamps in NTP's 32.32 fixed-point format (seconds since the
1900 era).
"""

from __future__ import annotations

import enum
import struct
from typing import Optional
from dataclasses import dataclass, field

#: Size of a headers-only NTP packet.
PACKET_SIZE = 48

#: Offset between the NTP era (1900) and the Unix epoch (1970), seconds.
NTP_UNIX_OFFSET = 2_208_988_800

_HEADER = struct.Struct("!BBbbIIIQQQQ")


class Mode(enum.IntEnum):
    """NTP association modes (RFC 5905 §7.3)."""

    RESERVED = 0
    SYMMETRIC_ACTIVE = 1
    SYMMETRIC_PASSIVE = 2
    CLIENT = 3
    SERVER = 4
    BROADCAST = 5
    CONTROL = 6
    PRIVATE = 7


class LeapIndicator(enum.IntEnum):
    """Leap second warning field."""

    NO_WARNING = 0
    LAST_MINUTE_61 = 1
    LAST_MINUTE_59 = 2
    UNSYNCHRONIZED = 3


def to_ntp_time(unix_seconds: float) -> int:
    """Convert Unix-epoch seconds to a 64-bit NTP timestamp."""
    total = unix_seconds + NTP_UNIX_OFFSET
    seconds = int(total)
    fraction = int((total - seconds) * (1 << 32))
    return ((seconds & 0xFFFFFFFF) << 32) | (fraction & 0xFFFFFFFF)


def from_ntp_time(timestamp: int) -> float:
    """Convert a 64-bit NTP timestamp to Unix-epoch seconds."""
    seconds = (timestamp >> 32) & 0xFFFFFFFF
    fraction = timestamp & 0xFFFFFFFF
    return seconds - NTP_UNIX_OFFSET + fraction / (1 << 32)


class NtpDecodeError(ValueError):
    """Raised when bytes do not form a valid NTP packet."""


@dataclass
class NtpPacket:
    """One NTPv4 packet, fields mirroring RFC 5905 §7.3."""

    leap: LeapIndicator = LeapIndicator.NO_WARNING
    version: int = 4
    mode: Mode = Mode.CLIENT
    stratum: int = 0
    poll: int = 6
    precision: int = -20
    root_delay: int = 0
    root_dispersion: int = 0
    reference_id: int = 0
    reference_timestamp: int = 0
    origin_timestamp: int = 0
    receive_timestamp: int = 0
    transmit_timestamp: int = 0
    extensions: bytes = field(default=b"", repr=False)

    def encode(self) -> bytes:
        """Serialize to wire format."""
        if not 1 <= self.version <= 7:
            raise ValueError(f"NTP version out of range: {self.version}")
        # RFC 5905 defines poll and precision as signed 8-bit exponents:
        # a negative poll means a sub-second interval and must survive
        # the wire (the seed codec packed poll unsigned via `& 0xFF`,
        # so -6 decoded as 250).
        if not -128 <= self.poll <= 127:
            raise ValueError(f"NTP poll out of int8 range: {self.poll}")
        if not -128 <= self.precision <= 127:
            raise ValueError(
                f"NTP precision out of int8 range: {self.precision}")
        first = ((int(self.leap) & 0x3) << 6) | ((self.version & 0x7) << 3) | (
            int(self.mode) & 0x7
        )
        header = _HEADER.pack(
            first,
            self.stratum & 0xFF,
            self.poll,
            self.precision,
            self.root_delay & 0xFFFFFFFF,
            self.root_dispersion & 0xFFFFFFFF,
            self.reference_id & 0xFFFFFFFF,
            self.reference_timestamp & 0xFFFFFFFFFFFFFFFF,
            self.origin_timestamp & 0xFFFFFFFFFFFFFFFF,
            self.receive_timestamp & 0xFFFFFFFFFFFFFFFF,
            self.transmit_timestamp & 0xFFFFFFFFFFFFFFFF,
        )
        return header + self.extensions

    @classmethod
    def decode(cls, data: bytes) -> "NtpPacket":
        """Parse wire bytes; raises :class:`NtpDecodeError` when malformed."""
        if len(data) < PACKET_SIZE:
            raise NtpDecodeError(
                f"NTP packet too short: {len(data)} < {PACKET_SIZE} bytes"
            )
        (first, stratum, poll, precision, root_delay, root_dispersion,
         reference_id, ref_ts, origin_ts, recv_ts, tx_ts) = _HEADER.unpack(
            data[:PACKET_SIZE]
        )
        version = (first >> 3) & 0x7
        if version == 0:
            raise NtpDecodeError("NTP version 0 is not a valid packet")
        return cls(
            leap=LeapIndicator((first >> 6) & 0x3),
            version=version,
            mode=Mode(first & 0x7),
            stratum=stratum,
            poll=poll,
            precision=precision,
            root_delay=root_delay,
            root_dispersion=root_dispersion,
            reference_id=reference_id,
            reference_timestamp=ref_ts,
            origin_timestamp=origin_ts,
            receive_timestamp=recv_ts,
            transmit_timestamp=tx_ts,
            extensions=data[PACKET_SIZE:],
        )


def client_request(transmit_time: float, version: int = 4,
                   poll: int = 6) -> NtpPacket:
    """Build the mode-3 request an SNTP client sends."""
    return NtpPacket(
        mode=Mode.CLIENT,
        version=version,
        poll=poll,
        transmit_timestamp=to_ntp_time(transmit_time),
    )


#: Kiss codes (RFC 5905 §7.4), packed as 4 ASCII bytes in the refid.
KISS_RATE = int.from_bytes(b"RATE", "big")
KISS_DENY = int.from_bytes(b"DENY", "big")


def kiss_of_death(request: NtpPacket, code: int = KISS_RATE) -> NtpPacket:
    """Build a kiss-o'-death packet: stratum 0, the kiss code in the
    reference ID, telling the client to back off (RATE) or go away
    (DENY)."""
    return NtpPacket(
        leap=LeapIndicator.UNSYNCHRONIZED,
        version=min(request.version, 4),
        mode=Mode.SERVER,
        stratum=0,
        poll=request.poll,
        reference_id=code,
        origin_timestamp=request.transmit_timestamp,
    )


def kiss_code(packet: NtpPacket) -> Optional[str]:
    """Decode the kiss code of a stratum-0 server packet (else None)."""
    if packet.stratum != 0 or packet.mode is not Mode.SERVER:
        return None
    raw = packet.reference_id.to_bytes(4, "big")
    try:
        return raw.decode("ascii")
    except UnicodeDecodeError:
        return None


def server_response(request: NtpPacket, receive_time: float,
                    transmit_time: float, stratum: int = 2,
                    reference_id: int = 0x47505300) -> NtpPacket:
    """Build the mode-4 response mirroring a client request.

    Copies the request's transmit timestamp into the origin field, as
    required for the client's round-trip computation.
    """
    return NtpPacket(
        leap=LeapIndicator.NO_WARNING,
        version=min(request.version, 4),
        mode=Mode.SERVER,
        stratum=stratum,
        poll=request.poll,
        precision=-23,
        root_delay=0x100,
        root_dispersion=0x80,
        reference_id=reference_id,
        reference_timestamp=to_ntp_time(receive_time - 16.0),
        origin_timestamp=request.transmit_timestamp,
        receive_timestamp=to_ntp_time(receive_time),
        transmit_timestamp=to_ntp_time(transmit_time),
    )
