"""A simulator of the NTP Pool (pool.ntp.org).

The pool groups volunteer servers into country *zones* and hands each
resolving client a server from its own country zone when one exists,
falling back to the continent/global zone otherwise — the behaviour
documented by Moura et al. (2024) that the paper's server-placement
strategy exploits.  Within a zone, selection probability is proportional
to the operator-configured ``netspeed`` weight.

The simulator also runs the pool's *monitoring*: servers are probed with
real SNTP queries and are only eligible for DNS rotation while their
score is above the acceptance threshold, matching how real pool members
gain/lose traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.net.simnet import Network
from repro.ntp.client import NtpClient

#: Zone name used for clients whose country has no populated zone.
GLOBAL_ZONE = "@"

#: Monitor score below which a server is dropped from rotation.
SCORE_THRESHOLD = 10.0

#: Score bounds (the real pool caps at 20).
SCORE_MAX = 20.0
SCORE_MIN = -100.0


@dataclass
class PoolServer:
    """One pool member: address, zone, weight, and monitor state."""

    address: int
    zone: str
    netspeed: int = 1000
    score: float = SCORE_MAX
    advertised: bool = True
    operator: str = ""

    @property
    def in_rotation(self) -> bool:
        """Eligible for DNS responses right now."""
        return self.advertised and self.score >= SCORE_THRESHOLD


class NtpPool:
    """Zone registry + GeoDNS-style resolution + monitoring."""

    def __init__(self, network: Network, rng: Optional[random.Random] = None,
                 monitor_address: Optional[int] = None) -> None:
        self.network = network
        self._rng = rng or random.Random(0x9001)
        self._servers: Dict[int, PoolServer] = {}
        self._zones: Dict[str, List[PoolServer]] = {}
        self._monitor_client: Optional[NtpClient] = None
        if monitor_address is not None:
            self._monitor_client = NtpClient(network, monitor_address)

    # -- registration --------------------------------------------------

    def register(self, address: int, zone: str, netspeed: int = 1000,
                 operator: str = "") -> PoolServer:
        """Add a server to a country zone (and implicitly the global zone)."""
        if address in self._servers:
            raise ValueError(f"server {address:#x} already registered")
        if netspeed <= 0:
            raise ValueError(f"netspeed must be positive, got {netspeed}")
        server = PoolServer(address=address, zone=zone, netspeed=netspeed,
                            operator=operator)
        self._servers[address] = server
        self._zones.setdefault(zone, []).append(server)
        return server

    def deregister(self, address: int) -> None:
        """Stop advertising a server (it stays monitored but unresolvable).

        Mirrors the paper's ethics procedure of de-advertising servers
        weeks before shutdown rather than removing them abruptly.
        """
        server = self._servers.get(address)
        if server is None:
            raise KeyError(f"server {address:#x} not registered")
        server.advertised = False

    def set_netspeed(self, address: int, netspeed: int) -> None:
        """Operator weight adjustment (the paper tunes this upward until
        the request rate approaches the scanning budget)."""
        if netspeed <= 0:
            raise ValueError(f"netspeed must be positive, got {netspeed}")
        self._servers[address].netspeed = netspeed

    def server(self, address: int) -> PoolServer:
        return self._servers[address]

    @property
    def servers(self) -> tuple:
        return tuple(self._servers.values())

    def zone_servers(self, zone: str, rotation_only: bool = True) -> List[PoolServer]:
        servers = self._zones.get(zone, [])
        if rotation_only:
            return [server for server in servers if server.in_rotation]
        return list(servers)

    def populated_zones(self) -> List[str]:
        """Zones with at least one in-rotation server."""
        return [zone for zone in self._zones if self.zone_servers(zone)]

    # -- resolution -----------------------------------------------------

    def resolve(self, country: str, rng: Optional[random.Random] = None) -> Optional[int]:
        """GeoDNS lookup: one server address for a client in ``country``.

        Selection is netspeed-weighted within the client's country zone;
        clients in empty zones fall back to the global rotation across
        all advertised servers.
        """
        chooser = rng or self._rng
        candidates = self.zone_servers(country)
        if not candidates:
            candidates = [s for s in self._servers.values() if s.in_rotation]
        if not candidates:
            return None
        weights = [server.netspeed for server in candidates]
        return chooser.choices(candidates, weights=weights, k=1)[0].address

    # -- monitoring -----------------------------------------------------

    def run_monitor(self) -> None:
        """Probe every registered server once and update scores.

        Healthy responses move the score toward :data:`SCORE_MAX`;
        failures subtract 5 points, dropping a dead server out of
        rotation after a couple of rounds — the real pool's dynamic.
        """
        if self._monitor_client is None:
            raise RuntimeError("pool constructed without a monitor address")
        for server in self._servers.values():
            result = self._monitor_client.query(server.address)
            if result is not None and result.stratum > 0:
                server.score = min(SCORE_MAX, server.score + 1.0)
            else:
                server.score = max(SCORE_MIN, server.score - 5.0)


def weighted_request_rates(pool: NtpPool, zone_demand: Dict[str, float]) -> Dict[int, float]:
    """Expected request share per server given per-zone client demand.

    A closed-form companion to the event-driven simulation: demand of a
    populated zone is split across its rotation by netspeed; demand of
    empty zones is split across the global rotation.  Used by tests to
    cross-check the emergent collection volumes.
    """
    rates: Dict[int, float] = {server.address: 0.0 for server in pool.servers}
    all_rotation = [s for s in pool.servers if s.in_rotation]
    global_weight = sum(s.netspeed for s in all_rotation)
    for zone, demand in zone_demand.items():
        members = pool.zone_servers(zone)
        if members:
            total = sum(s.netspeed for s in members)
            for server in members:
                rates[server.address] += demand * server.netspeed / total
        elif global_weight:
            for server in all_rotation:
                rates[server.address] += demand * server.netspeed / global_weight
    return rates
