"""An SNTP server with a client-address capture hook.

This is the reproduction's analogue of the paper's "NTP servers
modified to capture client addresses": a standards-conforming mode-3 →
mode-4 responder whose every valid request is also reported to an
observer callback carrying the client's source address and the request
timestamp.  The :mod:`repro.core.collector` subscribes to that hook.

Beyond clean RFC 5905, the server speaks the operational side
protocols real pool members expose (see :mod:`repro.ntp.control`):

* **mode 6** readvar/readstat control queries are answered with the
  daemon's system-variable string, windowed into offset/count
  fragments — the surface ``ntpq`` reconnaissance reads version and
  patch level from;
* **mode 7** monlist is answered *only* when ``monlist_enabled`` (the
  pre-4.2.7p26 behaviour a server's
  :class:`~repro.world.ntpprofiles.NtpServerProfile` decides) — from
  the server's bounded recent-client monitor table, up to 6 entries a
  packet, the classic amplification train.  Patched servers drop
  mode 7 silently, exactly like ``restrict noquery``.

Per-client state is bounded: the rate limiter's last-request map and
the monitor table are TTL-pruned on a fixed request cadence (the same
behaviour-neutral sweep :class:`repro.scan.engine.ScanScheduler` uses
for its cool-down map), and the monitor table additionally evicts its
least-recently-seen record at capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.net.clock import VirtualClock
from repro.net.packet import Datagram
from repro.net.simnet import Network
from repro.ntp.control import (
    MAX_CONTROL_DATA,
    MODE_CONTROL,
    MODE_PRIVATE,
    OP_READSTAT,
    OP_READVAR,
    ControlPacket,
    MonlistEntry,
    PrivatePacket,
    fragment_response,
    is_monlist_request,
    monlist_deny,
    monlist_response,
    peek_mode,
)
from repro.ntp.packet import (
    KISS_RATE,
    Mode,
    NtpDecodeError,
    NtpPacket,
    kiss_of_death,
    server_response,
)

#: UDP port NTP listens on.
NTP_PORT = 123

#: Observer signature: (client_address, client_port, request, sim_time).
CaptureHook = Callable[[int, int, NtpPacket, float], None]

#: Requests between TTL sweeps of the per-client maps.
PRUNE_EVERY = 1024

#: Monitor-table capacity (ntpd's MRU list is likewise bounded).
MONLIST_CAPACITY = 48

#: Monitor records idle longer than this age out at sweeps (seconds).
MONITOR_TTL = 86_400.0

#: Version string patched (monlist-refusing) servers advertise.
DEFAULT_SOFTWARE = "ntpd 4.2.8p17"


@dataclass
class ServerStats:
    """Operational counters of one NTP server."""

    requests: int = 0
    responses: int = 0
    malformed: int = 0
    wrong_mode: int = 0
    rate_limited: int = 0
    #: Mode-6 control queries answered.
    control_queries: int = 0
    #: Mode-7 monlist queries received (answered or dropped).
    monlist_queries: int = 0
    #: Monlist queries dropped because the server is patched.
    monlist_denied: int = 0
    #: Expired per-client entries evicted by TTL sweeps.
    clients_pruned: int = 0


@dataclass
class MonitorRecord:
    """One client's row in the server's recent-client (MRU) table."""

    port: int
    count: int
    first_seen: float
    last_seen: float
    version: int
    mode: int


class NtpServer:
    """A pool-member SNTP server bound to one simulated address.

    Parameters
    ----------
    network, clock:
        The simulated fabric and its clock.
    address:
        The server's IPv6 address (registered as a host if needed).
    stratum:
        Advertised stratum (pool servers are typically 2).
    min_interval:
        ``> 0`` enables per-client rate limiting: a client querying
        faster receives a RATE kiss-o'-death instead of time (RFC 5905
        §7.4) — real pool members defend themselves this way against
        abusive clients.  The limiter only refreshes a client's
        timestamp on *served* requests, so a too-fast client recovers
        after one compliant interval instead of being locked out
        forever.
    software_version, monlist_enabled:
        The control-plane exposure profile: the version string mode-6
        readvar advertises, and whether mode-7 monlist is answered
        (pre-4.2.7p26 / v3 behaviour) or silently dropped (patched).
    monlist_capacity, monitor_ttl, prune_every:
        Bounds on the per-client maps (see module docstring).
    control_mtu:
        Data window per mode-6 response fragment; lower values force
        multi-packet readvar responses.
    """

    def __init__(self, network: Network, address: int, *,
                 stratum: int = 2,
                 clock: Optional[VirtualClock] = None,
                 location: str = "",
                 min_interval: float = 0.0,
                 software_version: str = DEFAULT_SOFTWARE,
                 monlist_enabled: bool = False,
                 monlist_capacity: int = MONLIST_CAPACITY,
                 monitor_ttl: float = MONITOR_TTL,
                 prune_every: int = PRUNE_EVERY,
                 control_mtu: int = MAX_CONTROL_DATA) -> None:
        if monlist_capacity < 1:
            raise ValueError(
                f"monlist_capacity={monlist_capacity}: must be >= 1")
        if prune_every < 1:
            raise ValueError(f"prune_every={prune_every}: must be >= 1")
        self.network = network
        self.address = address
        self.stratum = stratum
        self.clock = clock or network.clock
        self.location = location
        self.min_interval = min_interval
        self.software_version = software_version
        self.monlist_enabled = monlist_enabled
        self.monlist_capacity = monlist_capacity
        self.monitor_ttl = monitor_ttl
        self.prune_every = prune_every
        self.control_mtu = control_mtu
        self.stats = ServerStats()
        self._capture_hooks: List[CaptureHook] = []
        self._last_request: Dict[int, float] = {}
        #: Recent clients in least-recently-seen-first insertion order
        #: (records are re-inserted on every served request, so the
        #: front of the dict is always the eviction candidate).
        self._monitor: Dict[int, MonitorRecord] = {}
        self._serving = True
        host = network.add_host(address)
        host.bind_udp(NTP_PORT, self._handle)

    def add_capture_hook(self, hook: CaptureHook) -> None:
        """Register an address-capture observer."""
        self._capture_hooks.append(hook)

    @property
    def serving(self) -> bool:
        """Whether the server answers requests (pool de-registration
        leaves the server up but eventually idle)."""
        return self._serving

    @property
    def tracked_clients(self) -> int:
        """Size of the rate limiter's last-request map
        (bounded-memory regression hook)."""
        return len(self._last_request)

    @property
    def monitored_clients(self) -> int:
        """Size of the recent-client monitor table."""
        return len(self._monitor)

    def stop(self) -> None:
        """Stop answering (models shutdown after the de-advertising grace)."""
        self._serving = False

    # -- per-client state bounds ------------------------------------------

    def prune(self, now: Optional[float] = None) -> int:
        """Evict expired per-client entries; returns the count.

        Rate-limiter entries older than ``min_interval`` would admit
        anyway, so dropping them is behaviour-neutral (the same
        argument :meth:`repro.scan.engine.ScanScheduler.prune` makes
        for its cool-down map); monitor records idle past the TTL age
        out of monlist responses like ntpd's MRU list recycles slots.
        """
        if now is None:
            now = self.clock.now()
        expired = [src for src, last in self._last_request.items()
                   if now - last >= self.min_interval]
        for src in expired:
            del self._last_request[src]
        stale = [src for src, record in self._monitor.items()
                 if now - record.last_seen >= self.monitor_ttl]
        for src in stale:
            del self._monitor[src]
        evicted = len(expired) + len(stale)
        self.stats.clients_pruned += evicted
        return evicted

    def _observe_client(self, datagram: Datagram, request: NtpPacket,
                        now: float) -> None:
        """Fold one served request into the monitor (MRU) table."""
        record = self._monitor.pop(datagram.src, None)
        if record is None:
            if len(self._monitor) >= self.monlist_capacity:
                del self._monitor[next(iter(self._monitor))]
            record = MonitorRecord(
                port=datagram.src_port, count=0, first_seen=now,
                last_seen=now, version=request.version,
                mode=int(request.mode))
        record.port = datagram.src_port
        record.count += 1
        record.last_seen = now
        record.version = request.version
        record.mode = int(request.mode)
        self._monitor[datagram.src] = record

    def monlist_entries(self, now: Optional[float] = None
                        ) -> List[MonlistEntry]:
        """The monitor table as monlist wire entries, most recent first."""
        if now is None:
            now = self.clock.now()
        return [
            MonlistEntry(
                address=src, port=record.port, count=record.count,
                mode=record.mode, version=record.version,
                last_seen=max(0, int(now - record.last_seen)),
                first_seen=max(0, int(now - record.first_seen)))
            for src, record in reversed(list(self._monitor.items()))
        ]

    # -- request handling --------------------------------------------------

    def _handle(self, datagram: Datagram):
        if not self._serving:
            return None
        self.stats.requests += 1
        if self.stats.requests % self.prune_every == 0:
            self.prune()
        mode = peek_mode(datagram.payload)
        if mode == MODE_CONTROL:
            return self._handle_control(datagram)
        if mode == MODE_PRIVATE:
            return self._handle_private(datagram)
        try:
            request = NtpPacket.decode(datagram.payload)
        except NtpDecodeError:
            self.stats.malformed += 1
            return None
        if request.mode is not Mode.CLIENT:
            self.stats.wrong_mode += 1
            return None
        now = self.clock.now()
        if self.min_interval > 0:
            last = self._last_request.get(datagram.src)
            if last is not None and now - last < self.min_interval:
                # Rejected requests must NOT refresh the timestamp: the
                # seed server did, so a client polling steadily below
                # min_interval was kissed forever and could never
                # recover by backing off.
                self.stats.rate_limited += 1
                return kiss_of_death(request, KISS_RATE).encode()
            self._last_request[datagram.src] = now
        self._observe_client(datagram, request, now)
        for hook in self._capture_hooks:
            hook(datagram.src, datagram.src_port, request, now)
        response = server_response(
            request,
            receive_time=now,
            transmit_time=now,
            stratum=self.stratum,
            reference_id=_reference_id(self.location),
        )
        self.stats.responses += 1
        return response.encode()

    def system_variables(self) -> str:
        """The readvar payload: the daemon's advertised variables."""
        return (f'version="{self.software_version}", processor="simnet", '
                f'system="repro/6", stratum={self.stratum}, '
                f'refid={(self.location or "SIM").upper()}, leap=00')

    def _handle_control(self, datagram: Datagram) -> Optional[List[bytes]]:
        try:
            request = ControlPacket.decode(datagram.payload)
        except NtpDecodeError:
            self.stats.malformed += 1
            return None
        if request.response:
            return None
        self.stats.control_queries += 1
        if request.opcode == OP_READVAR:
            data = self.system_variables().encode("ascii")
            fragments = fragment_response(request, data,
                                          mtu=self.control_mtu)
        elif request.opcode == OP_READSTAT:
            fragments = fragment_response(request, b"")
        else:
            fragments = [ControlPacket(
                opcode=request.opcode, sequence=request.sequence,
                response=True, error=True, version=request.version)]
        return [fragment.encode() for fragment in fragments]

    def _handle_private(self, datagram: Datagram) -> Optional[List[bytes]]:
        try:
            request = PrivatePacket.decode(datagram.payload)
        except NtpDecodeError:
            self.stats.malformed += 1
            return None
        if request.response:
            return None
        if not is_monlist_request(request):
            return [monlist_deny(request.sequence).encode()]
        self.stats.monlist_queries += 1
        if not self.monlist_enabled:
            # Patched daemons (and `restrict noquery`) drop mode 7
            # silently — the scan reads the silence as "not exposed".
            self.stats.monlist_denied += 1
            return None
        packets = monlist_response(self.monlist_entries(),
                                   sequence=request.sequence)
        return [packet.encode() for packet in packets]


def _reference_id(location: str) -> int:
    """Derive a stable 32-bit reference ID from the server's location tag."""
    tag = (location or "SIM").upper().encode("ascii", "replace")[:4].ljust(4, b"\0")
    return int.from_bytes(tag, "big")
