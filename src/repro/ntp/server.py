"""An SNTP server with a client-address capture hook.

This is the reproduction's analogue of the paper's "NTP servers
modified to capture client addresses": a standards-conforming mode-3 →
mode-4 responder whose every valid request is also reported to an
observer callback carrying the client's source address and the request
timestamp.  The :mod:`repro.core.collector` subscribes to that hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.net.clock import VirtualClock
from repro.net.packet import Datagram
from repro.net.simnet import Network
from repro.ntp.packet import (
    KISS_RATE,
    Mode,
    NtpDecodeError,
    NtpPacket,
    kiss_of_death,
    server_response,
)

#: UDP port NTP listens on.
NTP_PORT = 123

#: Observer signature: (client_address, client_port, request, sim_time).
CaptureHook = Callable[[int, int, NtpPacket, float], None]


@dataclass
class ServerStats:
    """Operational counters of one NTP server."""

    requests: int = 0
    responses: int = 0
    malformed: int = 0
    wrong_mode: int = 0
    rate_limited: int = 0


class NtpServer:
    """A pool-member SNTP server bound to one simulated address.

    Parameters
    ----------
    network, clock:
        The simulated fabric and its clock.
    address:
        The server's IPv6 address (registered as a host if needed).
    stratum:
        Advertised stratum (pool servers are typically 2).
    capture:
        Optional hooks invoked for every valid client request — the
        paper's address-collection modification.
    """

    def __init__(self, network: Network, address: int, *,
                 stratum: int = 2,
                 clock: Optional[VirtualClock] = None,
                 location: str = "",
                 min_interval: float = 0.0) -> None:
        """``min_interval`` > 0 enables per-client rate limiting: a
        client querying faster receives a RATE kiss-o'-death instead of
        time (RFC 5905 §7.4) — real pool members defend themselves this
        way against abusive clients."""
        self.network = network
        self.address = address
        self.stratum = stratum
        self.clock = clock or network.clock
        self.location = location
        self.min_interval = min_interval
        self.stats = ServerStats()
        self._capture_hooks: List[CaptureHook] = []
        self._last_request: dict = {}
        self._serving = True
        host = network.add_host(address)
        host.bind_udp(NTP_PORT, self._handle)

    def add_capture_hook(self, hook: CaptureHook) -> None:
        """Register an address-capture observer."""
        self._capture_hooks.append(hook)

    @property
    def serving(self) -> bool:
        """Whether the server answers requests (pool de-registration
        leaves the server up but eventually idle)."""
        return self._serving

    def stop(self) -> None:
        """Stop answering (models shutdown after the de-advertising grace)."""
        self._serving = False

    def _handle(self, datagram: Datagram) -> Optional[bytes]:
        if not self._serving:
            return None
        self.stats.requests += 1
        try:
            request = NtpPacket.decode(datagram.payload)
        except NtpDecodeError:
            self.stats.malformed += 1
            return None
        if request.mode is not Mode.CLIENT:
            self.stats.wrong_mode += 1
            return None
        now = self.clock.now()
        if self.min_interval > 0:
            last = self._last_request.get(datagram.src)
            self._last_request[datagram.src] = now
            if last is not None and now - last < self.min_interval:
                self.stats.rate_limited += 1
                return kiss_of_death(request, KISS_RATE).encode()
        for hook in self._capture_hooks:
            hook(datagram.src, datagram.src_port, request, now)
        response = server_response(
            request,
            receive_time=now,
            transmit_time=now,
            stratum=self.stratum,
            reference_id=_reference_id(self.location),
        )
        self.stats.responses += 1
        return response.encode()


def _reference_id(location: str) -> int:
    """Derive a stable 32-bit reference ID from the server's location tag."""
    tag = (location or "SIM").upper().encode("ascii", "replace")[:4].ljust(4, b"\0")
    return int.from_bytes(tag, "big")
