"""Picklable NTP control-plane responder for scan-facing worlds.

The amplification study scans a dedicated lean world with the sharded
engines, and the parallel backend ships that world to workers by
pickling it once (:mod:`repro.runtime.parallel`).  The full
:class:`~repro.ntp.server.NtpServer` is a live object wired to clocks
and capture hooks; this module provides the scan-facing alternative — a
frozen, picklable handler object whose responses are a pure function of
its constructor state, so a probe answered in a worker process is
byte-identical to one answered in-process.

Monitor tables are *pre-seeded* rather than accumulated: a server's
recent-client table is derived deterministically from ``(seed,
address)`` on the same private RNG stream discipline
:func:`repro.world.ntpprofiles.profile_for` uses, which keeps the
monlist response train — and therefore the amplification-factor
distribution — independent of scan order and worker count.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.net.packet import Datagram
from repro.ntp.control import (
    MAX_CONTROL_DATA,
    MODE_CONTROL,
    MODE_PRIVATE,
    OP_READSTAT,
    OP_READVAR,
    ControlPacket,
    MonlistEntry,
    NtpDecodeError,
    PrivatePacket,
    fragment_response,
    is_monlist_request,
    monlist_deny,
    monlist_response,
    peek_mode,
)
from repro.world.ntpprofiles import NtpServerProfile, profile_for

#: Stream label for monitor-table derivation (disjoint from the
#: profile stream's salt so the two never share a draw).
_TABLE_SALT = 0x4D4F_4E4C  # "MONL"

_MIX = 0x9E3779B97F4A7C15

#: Largest pre-seeded recent-client table (ntpd's default MRU depth
#: is far larger; 48 keeps response trains to a handful of packets).
DEFAULT_MAX_ENTRIES = 48


def seeded_entries(seed: int, address: int, *,
                   max_entries: int = DEFAULT_MAX_ENTRIES
                   ) -> List[MonlistEntry]:
    """The deterministic recent-client table of the server at ``address``.

    A pure function of ``(seed, address)``: entry count, client
    addresses, ports and ages all come from a private per-address RNG
    stream, so two runs (or two worker processes) always serve the
    same monlist train.
    """
    if max_entries < 0:
        raise ValueError(f"max_entries={max_entries}: must be >= 0")
    mixed = (address ^ (address >> 64)) & (1 << 64) - 1
    rng = random.Random(((seed ^ _TABLE_SALT) * _MIX + mixed * _MIX)
                        & (1 << 64) - 1)
    count = rng.randint(0, max_entries)
    return [
        MonlistEntry(
            address=rng.getrandbits(128),
            port=rng.randint(1024, 65535),
            count=rng.randint(1, 4096),
            mode=3,
            version=rng.choice((3, 4)),
            last_seen=rng.randint(0, 3600),
            first_seen=rng.randint(3600, 86_400),
        )
        for _ in range(count)
    ]


class NtpControlService:
    """A mode-6/7-only UDP handler bound to one scan-world address.

    Answers ``readvar``/``readstat`` with the profile's version string
    and monlist from the pre-seeded table (when the profile exposes
    it).  Mode-3 time requests are out of scope — the amplification
    study probes the control plane only.
    """

    def __init__(self, profile: NtpServerProfile,
                 entries: List[MonlistEntry], *,
                 stratum: int = 2,
                 control_mtu: int = MAX_CONTROL_DATA) -> None:
        self.profile = profile
        self.entries = list(entries)
        self.stratum = stratum
        self.control_mtu = control_mtu

    def system_variables(self) -> str:
        """The readvar payload (same shape :class:`NtpServer` serves)."""
        return (f'version="{self.profile.software_version}", '
                f'processor="simnet", system="repro/6", '
                f'stratum={self.stratum}, refid=POOL, leap=00')

    def __call__(self, datagram: Datagram) -> Optional[List[bytes]]:
        mode = peek_mode(datagram.payload)
        if mode == MODE_CONTROL:
            return self._handle_control(datagram.payload)
        if mode == MODE_PRIVATE:
            return self._handle_private(datagram.payload)
        return None

    def _handle_control(self, payload: bytes) -> Optional[List[bytes]]:
        try:
            request = ControlPacket.decode(payload)
        except NtpDecodeError:
            return None
        if request.response:
            return None
        if request.opcode == OP_READVAR:
            data = self.system_variables().encode("ascii")
            fragments = fragment_response(request, data,
                                          mtu=self.control_mtu)
        elif request.opcode == OP_READSTAT:
            fragments = fragment_response(request, b"")
        else:
            fragments = [ControlPacket(
                opcode=request.opcode, sequence=request.sequence,
                response=True, error=True, version=request.version)]
        return [fragment.encode() for fragment in fragments]

    def _handle_private(self, payload: bytes) -> Optional[List[bytes]]:
        try:
            request = PrivatePacket.decode(payload)
        except NtpDecodeError:
            return None
        if request.response:
            return None
        if not is_monlist_request(request):
            return [monlist_deny(request.sequence).encode()]
        if not self.profile.monlist_enabled:
            return None
        packets = monlist_response(self.entries,
                                   sequence=request.sequence)
        return [packet.encode() for packet in packets]


def control_service_for(seed: int, address: int, *,
                        max_entries: int = DEFAULT_MAX_ENTRIES,
                        control_mtu: int = MAX_CONTROL_DATA
                        ) -> NtpControlService:
    """Build the deterministic service of the server at ``address``."""
    return NtpControlService(
        profile_for(seed, address),
        seeded_entries(seed, address, max_entries=max_entries),
        control_mtu=control_mtu,
    )
