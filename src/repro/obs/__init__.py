"""Observability: deterministic metrics, spans, and run reports.

``repro.obs`` is the layer that makes the staged runtime *visible*:
counters, gauges and fixed-bucket histograms in a process-scoped
:class:`MetricsRegistry`, a :class:`Span` timer driven by the simulated
clock (never wall time), and the versioned :class:`RunReport` snapshot
every run ends with.  See DESIGN.md §6 for what is instrumented where.
"""

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS,
    MetricsRegistry,
    Span,
    current_registry,
    use_registry,
)
from repro.obs.runreport import RUN_REPORT_VERSION, RunReport, jsonify

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "MetricsRegistry",
    "RUN_REPORT_VERSION",
    "RunReport",
    "Span",
    "current_registry",
    "jsonify",
    "use_registry",
]
