"""Deterministic metrics primitives for the staged runtime.

The pipeline is a long-running measurement system; longitudinal studies
live or die on being able to see what it is doing while it runs — queue
depths, drop rates, per-protocol scan latencies.  This module provides
the three classic instrument kinds (:class:`Counter`, :class:`Gauge`,
:class:`Histogram` with *fixed* bucket boundaries) behind a
:class:`MetricsRegistry` of labeled series, plus a :class:`Span` timer.

Two properties distinguish this from a wall-clock metrics stack:

* **Simulated time only.**  Spans and latency histograms are fed from
  :mod:`repro.net.clock` — never ``time.time()`` — so every recorded
  timing is a property of the experiment, not of the host machine, and
  two runs with the same seed produce byte-identical snapshots.
* **Registry scoping.**  A process-wide default registry serves ad-hoc
  use, while :func:`use_registry` pushes a fresh registry for the
  duration of one run, which is how ``run_experiment`` isolates the
  metrics of concurrent or repeated experiments.
"""

from __future__ import annotations

import bisect
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default latency boundaries (simulated seconds): spans the engine's
#: politeness delays (10 s – 10 min) down to sub-millisecond queue hops.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0,
    60.0, 120.0, 300.0, 600.0,
)

#: Default boundaries for count-valued observations (e.g. addresses
#: collected per server per simulated day).
COUNT_BUCKETS: Tuple[float, ...] = (
    0, 1, 5, 10, 50, 100, 500, 1_000, 5_000, 10_000, 50_000, 100_000,
)


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, high-water marks)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def set_max(self, value: float) -> None:
        """Raise the gauge to ``value`` if it is a new high-water mark."""
        if value > self.value:
            self.value = value


class Histogram:
    """A fixed-boundary histogram with ``le`` (≤ boundary) semantics.

    An observation lands in the first bucket whose boundary is >= the
    value; values above the last boundary land in the overflow bucket,
    so ``len(counts) == len(bounds) + 1`` and no observation is lost.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "_max")

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        bounds = tuple(float(bound) for bound in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one boundary")
        if any(b >= a for b, a in zip(bounds, bounds[1:])):
            raise ValueError(f"boundaries must strictly increase: {bounds}")
        self.bounds = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self._max: float = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1
        if value > self._max:
            self._max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper bucket boundary at quantile ``q`` (0 for an empty series).

        Bucketed quantiles are estimates: the answer is the boundary of
        the bucket containing the q-th observation (the observed maximum
        for the overflow bucket), which is exact enough for the p50/p99
        reporting the benches do.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        target = max(1, int(q * self.count + 0.5))
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.bounds):
                    return self.bounds[index]
                return self._max
        return self._max

    @classmethod
    def merged(cls, histograms: Sequence["Histogram"]) -> "Histogram":
        """Sum several same-boundary histograms into one (for benches)."""
        if not histograms:
            raise ValueError("nothing to merge")
        first = histograms[0]
        merged = cls(first.bounds)
        for histogram in histograms:
            if histogram.bounds != first.bounds:
                raise ValueError("cannot merge histograms with different "
                                 f"bounds: {histogram.bounds} vs {first.bounds}")
            for index, bucket_count in enumerate(histogram.counts):
                merged.counts[index] += bucket_count
            merged.sum += histogram.sum
            merged.count += histogram.count
            merged._max = max(merged._max, histogram._max)
        return merged


#: A series key: metric name plus its sorted label items.
_SeriesKey = Tuple[str, Tuple[Tuple[str, str], ...]]


class MetricsRegistry:
    """Labeled series of instruments, get-or-create by (name, labels).

    ``registry.counter("probe_attempts_total", protocol="ssh")`` returns
    the same :class:`Counter` on every call with the same name and
    labels; requesting an existing series under a different instrument
    kind (or different histogram boundaries) is an error, so a metric
    name means one thing for the lifetime of the registry.
    """

    def __init__(self) -> None:
        self._series: Dict[_SeriesKey, object] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> _SeriesKey:
        return name, tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get_or_create(self, cls, name: str, labels: Dict[str, object],
                       factory):
        key = self._key(name, labels)
        existing = self._series.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise TypeError(
                    f"metric {name!r}{dict(key[1])!r} already registered as "
                    f"{type(existing).__name__}, not {cls.__name__}")
            return existing
        instrument = factory()
        self._series[key] = instrument
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels, Counter)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels, Gauge)

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  **labels) -> Histogram:
        bounds = tuple(float(b) for b in buckets) if buckets else LATENCY_BUCKETS
        histogram = self._get_or_create(Histogram, name, labels,
                                        lambda: Histogram(bounds))
        if histogram.bounds != bounds:
            raise ValueError(
                f"metric {name!r} already registered with boundaries "
                f"{histogram.bounds}, not {bounds}")
        return histogram

    def span(self, name: str, clock, **labels) -> "Span":
        """A :class:`Span` feeding the named latency histogram."""
        return Span(clock, self.histogram(name, **labels))

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry's series into this one, additively.

        Counters and gauges add; histograms sum bucket counts, sums and
        observation counts (boundaries must match).  Series missing here
        are created.  This is how the parallel backend folds worker
        registries back into the run registry: a worker records into a
        fresh registry, and merging in deterministic shard order
        reproduces the exact values a sequential run would have
        recorded (addition is the only operation either path uses).
        """
        for name, labels, instrument in other.series():
            if isinstance(instrument, Counter):
                self.counter(name, **labels).inc(instrument.value)
            elif isinstance(instrument, Gauge):
                self.gauge(name, **labels).inc(instrument.value)
            else:
                mine = self.histogram(name, buckets=instrument.bounds,
                                      **labels)
                for index, bucket_count in enumerate(instrument.counts):
                    mine.counts[index] += bucket_count
                mine.sum += instrument.sum
                mine.count += instrument.count
                if instrument._max > mine._max:
                    mine._max = instrument._max

    # -- introspection ----------------------------------------------------

    def series(self) -> Iterator[Tuple[str, Dict[str, str], object]]:
        """Every (name, labels, instrument), in deterministic order."""
        for (name, label_items), instrument in sorted(self._series.items()):
            yield name, dict(label_items), instrument

    def find(self, name: str, **labels) -> List[Tuple[Dict[str, str], object]]:
        """Series under ``name`` whose labels are a superset of ``labels``."""
        wanted = {(k, str(v)) for k, v in labels.items()}
        return [(series_labels, instrument)
                for series_name, series_labels, instrument in self.series()
                if series_name == name
                and wanted <= set(series_labels.items())]

    def value(self, name: str, **labels) -> Optional[float]:
        """Counter/gauge value of one exact series (None when absent)."""
        instrument = self._series.get(self._key(name, labels))
        return getattr(instrument, "value", None)

    def snapshot(self) -> Dict[str, list]:
        """A JSON-ready, deterministically ordered dump of every series."""
        counters, gauges, histograms = [], [], []
        for name, labels, instrument in self.series():
            entry = {"name": name, "labels": labels}
            if isinstance(instrument, Counter):
                entry["value"] = instrument.value
                counters.append(entry)
            elif isinstance(instrument, Gauge):
                entry["value"] = instrument.value
                gauges.append(entry)
            else:
                entry.update(
                    bounds=list(instrument.bounds),
                    counts=list(instrument.counts),
                    sum=instrument.sum,
                    count=instrument.count,
                )
                histograms.append(entry)
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


#: The registry stack; the bottom entry is the process-wide default.
_REGISTRY_STACK: List[MetricsRegistry] = [MetricsRegistry()]


def current_registry() -> MetricsRegistry:
    """The innermost active registry (instrumented code records here)."""
    return _REGISTRY_STACK[-1]


@contextmanager
def use_registry(registry: Optional[MetricsRegistry] = None):
    """Scope instrumentation to ``registry`` (a fresh one by default).

    ``run_experiment`` and every ``repro.api`` entry point wrap their
    work in this, so each run snapshots its own metrics instead of
    bleeding into the process-wide series.
    """
    registry = registry if registry is not None else MetricsRegistry()
    _REGISTRY_STACK.append(registry)
    try:
        yield registry
    finally:
        _REGISTRY_STACK.pop()


class Span:
    """Times a ``with`` block on a virtual clock, feeding a histogram.

    The clock is any object with a ``now()`` method — in this codebase
    always :class:`repro.net.clock.VirtualClock`, never wall time, so
    span durations are deterministic simulated seconds.
    """

    __slots__ = ("clock", "histogram", "elapsed", "_start")

    def __init__(self, clock, histogram: Optional[Histogram] = None) -> None:
        self.clock = clock
        self.histogram = histogram
        self.elapsed: Optional[float] = None
        self._start: float = 0.0

    def __enter__(self) -> "Span":
        self._start = self.clock.now()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = self.clock.now() - self._start
        if self.histogram is not None:
            self.histogram.observe(self.elapsed)
