"""Versioned run reports: config + metrics + headline results.

Every run of the pipeline ends by snapshotting its metrics registry
into a :class:`RunReport` — one JSON-shaped document carrying the exact
configuration that produced the run, the full metrics snapshot, and the
headline result tables.  The shape is stable
(``{"command", "version", "config", "metrics", "tables"}``) so the CLI's
``--format json`` output, the ``repro.api`` result objects, and the
JSONL files written by :func:`repro.io.save_run_report` all agree, and
two runs can be diffed series by series.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

from repro.obs.metrics import MetricsRegistry

#: Bump when the report document shape changes incompatibly.
RUN_REPORT_VERSION = 1


def jsonify(value: Any) -> Any:
    """Normalize a value to plain JSON types (tuples → lists, keys → str).

    Applied to every report field so a report built in-process compares
    equal to the same report after a JSON round trip — the property the
    api-vs-CLI tests pin.
    """
    if isinstance(value, dict):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [jsonify(item) for item in items]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


@dataclass
class RunReport:
    """The uniform result document every command and api call produces."""

    command: str
    config: Dict[str, Any] = field(default_factory=dict)
    metrics: Dict[str, Any] = field(default_factory=dict)
    tables: Dict[str, Any] = field(default_factory=dict)
    version: int = RUN_REPORT_VERSION

    @classmethod
    def build(cls, command: str, config: Any,
              registry: MetricsRegistry,
              tables: Dict[str, Any]) -> "RunReport":
        """Snapshot ``registry`` into a normalized report."""
        return cls(
            command=command,
            config=jsonify(config),
            metrics=jsonify(registry.snapshot()),
            tables=jsonify(tables),
        )

    def as_document(self) -> Dict[str, Any]:
        """The stable top-level JSON schema."""
        return {
            "command": self.command,
            "version": self.version,
            "config": self.config,
            "metrics": self.metrics,
            "tables": self.tables,
        }

    @classmethod
    def from_document(cls, document: Dict[str, Any]) -> "RunReport":
        version = document.get("version")
        if version != RUN_REPORT_VERSION:
            raise ValueError(f"unsupported run-report version {version!r}")
        return cls(
            command=document["command"],
            config=document.get("config", {}),
            metrics=document.get("metrics", {}),
            tables=document.get("tables", {}),
            version=version,
        )

    # -- comparison -------------------------------------------------------

    def counter_values(self) -> Dict[str, float]:
        """Flat ``name{labels}`` → value map over counters and gauges."""
        values: Dict[str, float] = {}
        for kind in ("counters", "gauges"):
            for entry in self.metrics.get(kind, ()):
                labels = ",".join(f"{k}={v}"
                                  for k, v in sorted(entry["labels"].items()))
                values[f"{entry['name']}{{{labels}}}"] = entry["value"]
        return values

    def diff_metrics(self, other: "RunReport") -> Dict[str, float]:
        """Per-series value deltas (self − other); zero deltas omitted.

        The reason reports are versioned and deterministic: comparing
        two campaigns (or a sharded vs single-engine run) is a dict of
        numbers, not a scroll through two logs.
        """
        ours, theirs = self.counter_values(), other.counter_values()
        deltas: Dict[str, float] = {}
        for series in sorted(set(ours) | set(theirs)):
            delta = ours.get(series, 0) - theirs.get(series, 0)
            if delta:
                deltas[series] = delta
        return deltas
