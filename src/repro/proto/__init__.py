"""Application-protocol codecs shared by device services and scan modules."""

from repro.proto import amqp, coap, http, mqtt, ssh

__all__ = ["amqp", "coap", "http", "mqtt", "ssh"]
