"""AMQP 0-9-1 connection establishment, as far as a scan needs it.

An AMQP session opens with the 8-byte protocol header
``AMQP\\x00\\x00\\x09\\x01``; the broker replies with a
``Connection.Start`` method frame advertising its SASL mechanisms.  The
scan then attempts an ``ANONYMOUS``/guest ``Start-Ok``; brokers with
access control reply with an access-refused ``Connection.Close``, open
brokers proceed to ``Connection.Tune`` — the paper's Figure 3 signal.

Frames follow the real grammar (type, channel, size, payload, 0xCE
end octet) with method payloads carrying class/method IDs; the method
arguments are condensed to the fields the scan reads (mechanism list,
server product, reply code/text).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional, Tuple

#: The protocol header initiating every AMQP 0-9-1 connection.
PROTOCOL_HEADER = b"AMQP\x00\x00\x09\x01"

#: Frame end octet (RabbitMQ calls this the frame-end marker).
FRAME_END = 0xCE

FRAME_METHOD = 1

CLASS_CONNECTION = 10
METHOD_START = 10
METHOD_START_OK = 11
METHOD_TUNE = 30
METHOD_CLOSE = 50

#: AMQP soft-error code for refused access.
ACCESS_REFUSED = 403


class AmqpDecodeError(ValueError):
    """Raised on malformed AMQP frames."""


def _short_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    if len(raw) > 255:
        raise ValueError("short string too long")
    return bytes((len(raw),)) + raw


def _read_short_str(data: bytes, offset: int) -> Tuple[str, int]:
    if offset >= len(data):
        raise AmqpDecodeError("truncated short string")
    length = data[offset]
    start = offset + 1
    raw = data[start:start + length]
    if len(raw) != length:
        raise AmqpDecodeError("truncated short string body")
    return raw.decode("utf-8"), start + length


def encode_frame(channel: int, payload: bytes, frame_type: int = FRAME_METHOD) -> bytes:
    """Wrap a payload in the AMQP frame envelope."""
    return (
        struct.pack("!BHI", frame_type, channel, len(payload))
        + payload
        + bytes((FRAME_END,))
    )


def decode_frame(data: bytes) -> Tuple[int, int, bytes]:
    """Unwrap one frame; returns (frame_type, channel, payload)."""
    if len(data) < 8:
        raise AmqpDecodeError("frame too short")
    frame_type, channel, size = struct.unpack_from("!BHI", data, 0)
    payload = data[7:7 + size]
    if len(payload) != size:
        raise AmqpDecodeError("truncated frame payload")
    if len(data) < 8 + size or data[7 + size] != FRAME_END:
        raise AmqpDecodeError("missing frame-end octet")
    return frame_type, channel, payload


@dataclass(frozen=True)
class ConnectionStart:
    """Connection.Start: what the broker advertises before auth."""

    product: str
    mechanisms: Tuple[str, ...]

    def encode(self) -> bytes:
        payload = struct.pack("!HH", CLASS_CONNECTION, METHOD_START)
        payload += _short_str(self.product)
        payload += _short_str(" ".join(self.mechanisms))
        return encode_frame(0, payload)

    @classmethod
    def from_payload(cls, payload: bytes) -> "ConnectionStart":
        class_id, method_id = struct.unpack_from("!HH", payload, 0)
        if (class_id, method_id) != (CLASS_CONNECTION, METHOD_START):
            raise AmqpDecodeError("not Connection.Start")
        product, offset = _read_short_str(payload, 4)
        mechanisms, _ = _read_short_str(payload, offset)
        return cls(product=product, mechanisms=tuple(mechanisms.split()))


@dataclass(frozen=True)
class ConnectionStartOk:
    """Connection.Start-Ok: the client's chosen mechanism + response."""

    mechanism: str
    response: str = ""

    def encode(self) -> bytes:
        payload = struct.pack("!HH", CLASS_CONNECTION, METHOD_START_OK)
        payload += _short_str(self.mechanism)
        payload += _short_str(self.response)
        return encode_frame(0, payload)

    @classmethod
    def from_payload(cls, payload: bytes) -> "ConnectionStartOk":
        class_id, method_id = struct.unpack_from("!HH", payload, 0)
        if (class_id, method_id) != (CLASS_CONNECTION, METHOD_START_OK):
            raise AmqpDecodeError("not Connection.Start-Ok")
        mechanism, offset = _read_short_str(payload, 4)
        response, _ = _read_short_str(payload, offset)
        return cls(mechanism=mechanism, response=response)


@dataclass(frozen=True)
class ConnectionTune:
    """Connection.Tune: authentication succeeded, negotiate limits."""

    channel_max: int = 2047
    frame_max: int = 131072

    def encode(self) -> bytes:
        payload = struct.pack(
            "!HHHI", CLASS_CONNECTION, METHOD_TUNE,
            self.channel_max, self.frame_max,
        )
        return encode_frame(0, payload)

    @classmethod
    def from_payload(cls, payload: bytes) -> "ConnectionTune":
        class_id, method_id, channel_max, frame_max = struct.unpack_from(
            "!HHHI", payload, 0
        )
        if (class_id, method_id) != (CLASS_CONNECTION, METHOD_TUNE):
            raise AmqpDecodeError("not Connection.Tune")
        return cls(channel_max=channel_max, frame_max=frame_max)


@dataclass(frozen=True)
class ConnectionClose:
    """Connection.Close carrying a reply code (403 = access refused)."""

    reply_code: int
    reply_text: str = ""

    def encode(self) -> bytes:
        payload = struct.pack("!HHH", CLASS_CONNECTION, METHOD_CLOSE,
                              self.reply_code)
        payload += _short_str(self.reply_text)
        return encode_frame(0, payload)

    @classmethod
    def from_payload(cls, payload: bytes) -> "ConnectionClose":
        class_id, method_id, reply_code = struct.unpack_from("!HHH", payload, 0)
        if (class_id, method_id) != (CLASS_CONNECTION, METHOD_CLOSE):
            raise AmqpDecodeError("not Connection.Close")
        reply_text, _ = _read_short_str(payload, 6)
        return cls(reply_code=reply_code, reply_text=reply_text)


def parse_method(data: bytes):
    """Decode one method frame into its dataclass."""
    frame_type, _, payload = decode_frame(data)
    if frame_type != FRAME_METHOD or len(payload) < 4:
        raise AmqpDecodeError("not a method frame")
    class_id, method_id = struct.unpack_from("!HH", payload, 0)
    decoders = {
        (CLASS_CONNECTION, METHOD_START): ConnectionStart.from_payload,
        (CLASS_CONNECTION, METHOD_START_OK): ConnectionStartOk.from_payload,
        (CLASS_CONNECTION, METHOD_TUNE): ConnectionTune.from_payload,
        (CLASS_CONNECTION, METHOD_CLOSE): ConnectionClose.from_payload,
    }
    decoder = decoders.get((class_id, method_id))
    if decoder is None:
        raise AmqpDecodeError(f"unknown method {class_id}.{method_id}")
    return decoder(payload)


class AmqpBrokerSession:
    """Server side of broker connection establishment.

    ``require_auth`` distinguishes professionally run brokers (PLAIN
    only, anonymous refused) from open ones (ANONYMOUS accepted).
    """

    def __init__(self, *, require_auth: bool,
                 product: str = "SimRabbit 3.12") -> None:
        self.require_auth = require_auth
        self.product = product
        self.closed = False
        self._started = False

    def greeting(self) -> bytes:
        return b""

    def on_data(self, data: bytes) -> Optional[bytes]:
        if not self._started:
            if data != PROTOCOL_HEADER:
                # Not AMQP: a conforming broker replies with its header
                # and closes (RabbitMQ behaviour).
                self.closed = True
                return PROTOCOL_HEADER
            self._started = True
            mechanisms = ("PLAIN",) if self.require_auth else ("PLAIN", "ANONYMOUS")
            return ConnectionStart(
                product=self.product, mechanisms=mechanisms
            ).encode()
        try:
            method = parse_method(data)
        except AmqpDecodeError:
            self.closed = True
            return None
        if isinstance(method, ConnectionStartOk):
            if method.mechanism == "ANONYMOUS" and not self.require_auth:
                return ConnectionTune().encode()
            self.closed = True
            return ConnectionClose(
                reply_code=ACCESS_REFUSED, reply_text="ACCESS_REFUSED"
            ).encode()
        return None


@dataclass(frozen=True)
class AmqpSessionFactory:
    """Picklable factory producing :class:`AmqpBrokerSession` instances
    (see :class:`repro.proto.http.HttpSessionFactory` for why services
    are bound as factory objects, not closures)."""

    require_auth: bool

    def __call__(self) -> AmqpBrokerSession:
        return AmqpBrokerSession(require_auth=self.require_auth)
