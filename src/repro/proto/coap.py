"""RFC 7252 CoAP over UDP: message codec and resource-directory sessions.

The CoAP scan sends a confirmable ``GET /.well-known/core`` and parses
the RFC 6690 link-format payload to learn the device's advertised
resources — the basis of the paper's CoAP device grouping (castdevice,
qlink, efento, nanoleaf, …).

The codec implements the real header (version/type/TKL, code,
message-ID, token), option delta/length encoding for the options scans
need (Uri-Path 11, Content-Format 12), and piggybacked 2.05 responses.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: Message types.
CON, NON, ACK, RST = 0, 1, 2, 3

#: Method and response codes (class.detail packed as class<<5 | detail).
GET = 0x01
CONTENT_205 = (2 << 5) | 5
NOT_FOUND_404 = (4 << 5) | 4

#: Option numbers.
OPT_URI_PATH = 11
OPT_CONTENT_FORMAT = 12

#: Content-Format: application/link-format.
FORMAT_LINK = 40

#: Default CoAP port.
COAP_PORT = 5683

#: The discovery path every scan asks for first.
WELL_KNOWN_CORE = ("/.well-known/core")


class CoapDecodeError(ValueError):
    """Raised on malformed CoAP messages."""


def _encode_option_parts(value: int) -> Tuple[int, bytes]:
    """Encode a delta/length nibble with its extended bytes."""
    if value < 13:
        return value, b""
    if value < 269:
        return 13, bytes((value - 13,))
    return 14, struct.pack("!H", value - 269)


def _decode_option_part(nibble: int, data: bytes, offset: int) -> Tuple[int, int]:
    """Decode a delta/length nibble; returns (value, new_offset)."""
    if nibble < 13:
        return nibble, offset
    if nibble == 13:
        if offset >= len(data):
            raise CoapDecodeError("truncated extended option byte")
        return data[offset] + 13, offset + 1
    if nibble == 14:
        if offset + 2 > len(data):
            raise CoapDecodeError("truncated extended option word")
        return struct.unpack_from("!H", data, offset)[0] + 269, offset + 2
    raise CoapDecodeError("reserved option nibble 15")


@dataclass
class CoapMessage:
    """One CoAP message with its options."""

    mtype: int = CON
    code: int = GET
    message_id: int = 0
    token: bytes = b""
    options: List[Tuple[int, bytes]] = field(default_factory=list)
    payload: bytes = b""

    def encode(self) -> bytes:
        if len(self.token) > 8:
            raise ValueError("token longer than 8 bytes")
        header = struct.pack(
            "!BBH",
            (1 << 6) | ((self.mtype & 0x3) << 4) | len(self.token),
            self.code,
            self.message_id,
        )
        out = bytearray(header)
        out += self.token
        last_number = 0
        for number, value in sorted(self.options, key=lambda item: item[0]):
            delta_nibble, delta_ext = _encode_option_parts(number - last_number)
            length_nibble, length_ext = _encode_option_parts(len(value))
            out.append((delta_nibble << 4) | length_nibble)
            out += delta_ext + length_ext + value
            last_number = number
        if self.payload:
            out.append(0xFF)
            out += self.payload
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "CoapMessage":
        if len(data) < 4:
            raise CoapDecodeError("message shorter than base header")
        first, code, message_id = struct.unpack_from("!BBH", data, 0)
        version = first >> 6
        if version != 1:
            raise CoapDecodeError(f"unsupported CoAP version {version}")
        token_length = first & 0x0F
        if token_length > 8:
            raise CoapDecodeError("token length > 8 is reserved")
        offset = 4
        token = data[offset:offset + token_length]
        if len(token) != token_length:
            raise CoapDecodeError("truncated token")
        offset += token_length
        options: List[Tuple[int, bytes]] = []
        number = 0
        while offset < len(data):
            byte = data[offset]
            if byte == 0xFF:
                offset += 1
                break
            offset += 1
            delta, offset = _decode_option_part(byte >> 4, data, offset)
            length, offset = _decode_option_part(byte & 0x0F, data, offset)
            value = data[offset:offset + length]
            if len(value) != length:
                raise CoapDecodeError("truncated option value")
            offset += length
            number += delta
            options.append((number, value))
        return cls(
            mtype=(first >> 4) & 0x3,
            code=code,
            message_id=message_id,
            token=token,
            options=options,
            payload=data[offset:],
        )

    @property
    def uri_path(self) -> str:
        """Reassemble the Uri-Path options into a path string."""
        segments = [value.decode("utf-8", "replace")
                    for number, value in self.options if number == OPT_URI_PATH]
        return "/" + "/".join(segments)


def get_request(path: str, message_id: int, token: bytes = b"\x01") -> CoapMessage:
    """Build a confirmable GET for ``path``."""
    options = [
        (OPT_URI_PATH, segment.encode("utf-8"))
        for segment in path.strip("/").split("/") if segment
    ]
    return CoapMessage(mtype=CON, code=GET, message_id=message_id,
                       token=token, options=options)


def content_response(request: CoapMessage, payload: bytes,
                     content_format: int = FORMAT_LINK) -> CoapMessage:
    """Piggybacked 2.05 Content response mirroring MID and token."""
    return CoapMessage(
        mtype=ACK, code=CONTENT_205, message_id=request.message_id,
        token=request.token,
        options=[(OPT_CONTENT_FORMAT, bytes((content_format,)))],
        payload=payload,
    )


def encode_link_format(resources: Sequence[str]) -> bytes:
    """RFC 6690 link-format: ``</a>,</b/c>``."""
    return ",".join(f"<{resource}>" for resource in resources).encode("utf-8")


def parse_link_format(payload: bytes) -> List[str]:
    """Parse link-format, tolerating attributes (``</a>;rt=\"x\"``)."""
    resources = []
    for part in payload.decode("utf-8", "replace").split(","):
        part = part.strip()
        if not part:
            continue
        link = part.split(";", 1)[0].strip()
        if link.startswith("<") and link.endswith(">"):
            resources.append(link[1:-1])
    return resources


class CoapResourceServer:
    """UDP handler advertising a fixed resource set.

    Answers ``GET /.well-known/core`` with the link-format directory and
    direct GETs on known resources with a small canned payload.
    """

    def __init__(self, resources: Sequence[str],
                 payloads: Optional[Dict[str, bytes]] = None) -> None:
        self.resources = list(resources)
        self.payloads = dict(payloads or {})

    def __call__(self, datagram) -> Optional[bytes]:
        try:
            request = CoapMessage.decode(datagram.payload)
        except CoapDecodeError:
            return None
        if request.code != GET:
            return None
        path = request.uri_path
        if path == WELL_KNOWN_CORE:
            payload = encode_link_format(self.resources)
            return content_response(request, payload).encode()
        if path in self.resources:
            body = self.payloads.get(path, b"{}")
            return content_response(request, body, content_format=0).encode()
        response = CoapMessage(
            mtype=ACK, code=NOT_FOUND_404,
            message_id=request.message_id, token=request.token,
        )
        return response.encode()
