"""Minimal HTTP/1.1: request/response codec and a page-serving session.

The scanner issues ``GET /`` requests and the analyses consume exactly
three things from the response: the status code, the HTML ``<title>``,
and (for HTTPS) the certificate obtained beforehand.  The codec is
nevertheless a real parser — request line, headers, body — so malformed
traffic is rejected the way a real server would.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Optional

_REQUEST_LINE = re.compile(rb"^([A-Z]+) (\S+) HTTP/1\.[01]$")
_TITLE = re.compile(r"<title>(.*?)</title>", re.IGNORECASE | re.DOTALL)

#: Reason phrases for the status codes the simulation emits.
REASONS = {
    200: "OK", 301: "Moved Permanently", 302: "Found", 400: "Bad Request",
    401: "Unauthorized", 403: "Forbidden", 404: "Not Found",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class HttpDecodeError(ValueError):
    """Raised when bytes are not a valid HTTP message."""


@dataclass(frozen=True)
class HttpRequest:
    """A parsed client request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)

    def encode(self) -> bytes:
        lines = [f"{self.method} {self.path} HTTP/1.1"]
        lines += [f"{name}: {value}" for name, value in self.headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    @classmethod
    def decode(cls, data: bytes) -> "HttpRequest":
        head, _, _ = data.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        match = _REQUEST_LINE.match(lines[0])
        if not match:
            raise HttpDecodeError(f"bad request line: {lines[0]!r}")
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(b": ")
            if not sep:
                raise HttpDecodeError(f"bad header line: {line!r}")
            headers[name.decode("latin-1").title()] = value.decode("latin-1")
        return cls(
            method=match.group(1).decode("ascii"),
            path=match.group(2).decode("latin-1"),
            headers=headers,
        )


@dataclass(frozen=True)
class HttpResponse:
    """A parsed (or to-be-sent) server response."""

    status: int
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def encode(self) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        headers = dict(self.headers)
        headers.setdefault("Content-Length", str(len(self.body)))
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        lines += [f"{name}: {value}" for name, value in headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + self.body

    @classmethod
    def decode(cls, data: bytes) -> "HttpResponse":
        head, _, body = data.partition(b"\r\n\r\n")
        lines = head.split(b"\r\n")
        parts = lines[0].split(b" ", 2)
        if len(parts) < 2 or not parts[0].startswith(b"HTTP/1."):
            raise HttpDecodeError(f"bad status line: {lines[0]!r}")
        try:
            status = int(parts[1])
        except ValueError as exc:
            raise HttpDecodeError(f"bad status code: {parts[1]!r}") from exc
        headers = {}
        for line in lines[1:]:
            if not line:
                continue
            name, sep, value = line.partition(b": ")
            if sep:
                headers[name.decode("latin-1").title()] = value.decode("latin-1")
        return cls(status=status, headers=headers, body=body)

    @property
    def title(self) -> Optional[str]:
        """The HTML ``<title>`` of the body, if any."""
        match = _TITLE.search(self.body.decode("utf-8", "replace"))
        if not match:
            return None
        return " ".join(match.group(1).split())


def html_page(title: str, body: str = "") -> bytes:
    """Render a tiny HTML document with the given title."""
    return (
        f"<!DOCTYPE html><html><head><title>{title}</title></head>"
        f"<body>{body}</body></html>"
    ).encode("utf-8")


class HttpServerSession:
    """A TCP session serving a fixed page (device web interfaces).

    Parameters mirror what the device models need: a page title, a
    status code (CDN error fronts answer 200-with-empty-title or
    404-style pages), optional server header, and optional host-based
    virtual hosting (unknown ``Host`` yields ``not_found_page``).
    """

    def __init__(self, title: Optional[str], *, status: int = 200,
                 server: str = "sim-httpd/1.0",
                 body_extra: str = "",
                 requires_host: bool = False,
                 not_found_title: str = "Unknown Domain") -> None:
        self.title = title
        self.status = status
        self.server = server
        self.body_extra = body_extra
        self.requires_host = requires_host
        self.not_found_title = not_found_title
        self.closed = False

    def greeting(self) -> bytes:
        return b""

    def on_data(self, data: bytes) -> Optional[bytes]:
        try:
            request = HttpRequest.decode(data)
        except HttpDecodeError:
            self.closed = True
            return HttpResponse(status=400, body=b"").encode()
        if request.method not in ("GET", "HEAD"):
            return HttpResponse(status=405 if False else 400).encode()
        status, title = self.status, self.title
        if self.requires_host and "Host" not in request.headers:
            status, title = 404, self.not_found_title
        body = b"" if title is None else html_page(title, self.body_extra)
        if request.method == "HEAD":
            body = b""
        response = HttpResponse(
            status=status,
            headers={"Server": self.server, "Content-Type": "text/html"},
            body=body,
        )
        self.closed = True  # connection: close semantics
        return response.encode()


@dataclass(frozen=True)
class HttpSessionFactory:
    """Picklable factory producing :class:`HttpServerSession` instances.

    Device models and the parallel scan backend bind TCP services as
    *factory objects* rather than closures: a factory captures only the
    session's configuration, so a host's service surface survives a
    pickle round trip into a worker process.
    """

    title: Optional[str]
    status: int = 200
    server: str = "sim-httpd/1.0"
    body_extra: str = ""
    requires_host: bool = False

    def __call__(self) -> HttpServerSession:
        return HttpServerSession(self.title, status=self.status,
                                 server=self.server,
                                 body_extra=self.body_extra,
                                 requires_host=self.requires_host)
