"""MQTT 3.1.1 control packets: CONNECT / CONNACK, wire-accurate.

The broker scan sends a real CONNECT packet (fixed header ``0x10``,
varint remaining length, ``MQTT``/level-4 variable header, client ID,
optional username/password) and classifies the broker by its CONNACK
return code — the paper's access-control signal (Figure 3):

* return code 0 with no credentials  → broker is **open**;
* return code 4/5 without creds      → broker **enforces access control**.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

#: CONNACK return codes (MQTT 3.1.1 §3.2.2.3).
ACCEPTED = 0
REFUSED_PROTOCOL = 1
REFUSED_IDENTIFIER = 2
REFUSED_UNAVAILABLE = 3
REFUSED_BAD_CREDENTIALS = 4
REFUSED_NOT_AUTHORIZED = 5

_PROTOCOL_NAME = b"\x00\x04MQTT"
_PROTOCOL_LEVEL = 4


class MqttDecodeError(ValueError):
    """Raised on malformed MQTT packets."""


def encode_varint(value: int) -> bytes:
    """MQTT's variable-length remaining-length encoding."""
    if not 0 <= value <= 268_435_455:
        raise ValueError(f"varint out of range: {value}")
    out = bytearray()
    while True:
        digit = value % 128
        value //= 128
        if value:
            out.append(digit | 0x80)
        else:
            out.append(digit)
            return bytes(out)


def decode_varint(data: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode a varint; returns (value, bytes_consumed)."""
    multiplier = 1
    value = 0
    consumed = 0
    while True:
        if offset + consumed >= len(data) or consumed >= 4:
            raise MqttDecodeError("truncated or overlong varint")
        digit = data[offset + consumed]
        value += (digit & 0x7F) * multiplier
        multiplier *= 128
        consumed += 1
        if not digit & 0x80:
            return value, consumed


def _utf8_field(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack("!H", len(raw)) + raw


def _read_utf8(data: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from("!H", data, offset)
    start = offset + 2
    raw = data[start:start + length]
    if len(raw) != length:
        raise MqttDecodeError("truncated UTF-8 field")
    return raw.decode("utf-8"), start + length


@dataclass(frozen=True)
class ConnectPacket:
    """An MQTT CONNECT, restricted to the fields scans use."""

    client_id: str
    username: Optional[str] = None
    password: Optional[str] = None
    keepalive: int = 60
    clean_session: bool = True

    def encode(self) -> bytes:
        flags = 0x02 if self.clean_session else 0x00
        payload = _utf8_field(self.client_id)
        if self.username is not None:
            flags |= 0x80
            payload += _utf8_field(self.username)
        if self.password is not None:
            if self.username is None:
                raise ValueError("MQTT forbids password without username")
            flags |= 0x40
            payload += _utf8_field(self.password)
        variable = (
            _PROTOCOL_NAME
            + bytes((_PROTOCOL_LEVEL, flags))
            + struct.pack("!H", self.keepalive)
        )
        body = variable + payload
        return b"\x10" + encode_varint(len(body)) + body

    @classmethod
    def decode(cls, data: bytes) -> "ConnectPacket":
        if not data or data[0] != 0x10:
            raise MqttDecodeError("not a CONNECT packet")
        remaining, consumed = decode_varint(data, 1)
        body = data[1 + consumed:1 + consumed + remaining]
        if len(body) != remaining:
            raise MqttDecodeError("truncated CONNECT body")
        if body[:6] != _PROTOCOL_NAME:
            raise MqttDecodeError("unexpected protocol name")
        level = body[6]
        if level != _PROTOCOL_LEVEL:
            raise MqttDecodeError(f"unsupported protocol level {level}")
        flags = body[7]
        offset = 10
        client_id, offset = _read_utf8(body, offset)
        username = password = None
        if flags & 0x80:
            username, offset = _read_utf8(body, offset)
        if flags & 0x40:
            password, offset = _read_utf8(body, offset)
        return cls(
            client_id=client_id,
            username=username,
            password=password,
            keepalive=struct.unpack_from("!H", body, 8)[0],
            clean_session=bool(flags & 0x02),
        )


@dataclass(frozen=True)
class ConnackPacket:
    """The broker's CONNACK reply."""

    return_code: int
    session_present: bool = False

    def encode(self) -> bytes:
        return bytes((0x20, 0x02, int(self.session_present), self.return_code))

    @classmethod
    def decode(cls, data: bytes) -> "ConnackPacket":
        if len(data) < 4 or data[0] != 0x20 or data[1] != 0x02:
            raise MqttDecodeError("not a CONNACK packet")
        return cls(return_code=data[3], session_present=bool(data[2] & 0x01))

    @property
    def accepted(self) -> bool:
        return self.return_code == ACCEPTED


class MqttBrokerSession:
    """Server side of one broker connection.

    ``require_auth`` models access control: anonymous CONNECTs get
    return code 5; CONNECTs carrying credentials are checked against
    the configured pair (scans never know valid credentials, so any
    guess yields 4).
    """

    def __init__(self, *, require_auth: bool,
                 username: str = "admin", password: str = "admin") -> None:
        self.require_auth = require_auth
        self._username = username
        self._password = password
        self.closed = False

    def greeting(self) -> bytes:
        return b""

    def on_data(self, data: bytes) -> Optional[bytes]:
        try:
            connect = ConnectPacket.decode(data)
        except MqttDecodeError:
            self.closed = True
            return None
        if not self.require_auth:
            return ConnackPacket(return_code=ACCEPTED).encode()
        if connect.username is None:
            self.closed = True
            return ConnackPacket(return_code=REFUSED_NOT_AUTHORIZED).encode()
        if (connect.username, connect.password) == (self._username, self._password):
            return ConnackPacket(return_code=ACCEPTED).encode()
        self.closed = True
        return ConnackPacket(return_code=REFUSED_BAD_CREDENTIALS).encode()


@dataclass(frozen=True)
class MqttSessionFactory:
    """Picklable factory producing :class:`MqttBrokerSession` instances
    (see :class:`repro.proto.http.HttpSessionFactory` for why services
    are bound as factory objects, not closures)."""

    require_auth: bool

    def __call__(self) -> MqttBrokerSession:
        return MqttBrokerSession(require_auth=self.require_auth)
