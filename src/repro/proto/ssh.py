"""SSH transport-layer surface: identification strings and host keys.

A real SSH handshake starts with both sides exchanging identification
strings (RFC 4253 §4.2) — ``SSH-2.0-OpenSSH_9.2p1 Debian-2+deb12u3`` —
after which the server's KEXINIT/KEXDH reply reveals its host key.
The paper's analyses use precisely these two artefacts:

* the *software/comment* portion of the ID string names the OS
  distribution and, for Debian-derived systems, the patch level
  (Section 4.4.1's outdatedness analysis);
* the *host key* is the dedup identity (Table 2, Section 6).

We implement the ID-string exchange verbatim and compress the key
exchange into a single binary ``KEYREPLY`` packet carrying algorithm
and fingerprint — the exact observables, minus the Diffie-Hellman.
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.tlslib.keys import KeyIdentity

#: Magic marking our condensed key-exchange reply packet.
KEYREPLY_MAGIC = b"SSHK"

#: RFC 4253 identification-string pattern.
_ID_STRING = re.compile(
    r"^SSH-(?P<proto>\d\.\d)-(?P<software>\S+)(?: (?P<comment>.*))?$"
)


class SshDecodeError(ValueError):
    """Raised on malformed SSH artefacts."""


@dataclass(frozen=True)
class SshIdentification:
    """A parsed SSH identification string."""

    protocol: str
    software: str
    comment: Optional[str] = None

    def encode(self) -> bytes:
        line = f"SSH-{self.protocol}-{self.software}"
        if self.comment:
            line += f" {self.comment}"
        return line.encode("ascii") + b"\r\n"

    @classmethod
    def decode(cls, data: bytes) -> "SshIdentification":
        line = data.split(b"\r\n", 1)[0].split(b"\n", 1)[0]
        match = _ID_STRING.match(line.decode("ascii", "replace"))
        if not match:
            raise SshDecodeError(f"bad identification string: {line!r}")
        return cls(
            protocol=match.group("proto"),
            software=match.group("software"),
            comment=match.group("comment"),
        )

    @property
    def banner(self) -> str:
        """The full human-readable form without the CRLF."""
        text = f"SSH-{self.protocol}-{self.software}"
        return f"{text} {self.comment}" if self.comment else text


def banner_for(software: str, comment: Optional[str] = None) -> SshIdentification:
    """Convenience constructor for an SSH-2.0 server identification."""
    return SshIdentification(protocol="2.0", software=software, comment=comment)


def encode_keyreply(key: KeyIdentity) -> bytes:
    """Encode the condensed host-key packet."""
    algo = key.algorithm.encode("ascii")
    return (
        KEYREPLY_MAGIC
        + struct.pack("!H", len(algo)) + algo
        + struct.pack("!H", len(key.fingerprint)) + key.fingerprint
    )


def decode_keyreply(data: bytes) -> KeyIdentity:
    """Parse the condensed host-key packet."""
    if not data.startswith(KEYREPLY_MAGIC):
        raise SshDecodeError("missing KEYREPLY magic")
    try:
        offset = len(KEYREPLY_MAGIC)
        (algo_length,) = struct.unpack_from("!H", data, offset)
        offset += 2
        algorithm = data[offset:offset + algo_length].decode("ascii")
        offset += algo_length
        (fp_length,) = struct.unpack_from("!H", data, offset)
        offset += 2
        fingerprint = data[offset:offset + fp_length]
        if len(fingerprint) != fp_length:
            raise SshDecodeError("truncated fingerprint")
    except struct.error as exc:
        raise SshDecodeError(str(exc)) from exc
    return KeyIdentity(fingerprint=fingerprint, algorithm=algorithm)


class SshServerSession:
    """Server side: emits the banner, answers the client hello with keys."""

    def __init__(self, identification: SshIdentification,
                 host_key: KeyIdentity) -> None:
        self.identification = identification
        self.host_key = host_key
        self.closed = False

    def greeting(self) -> bytes:
        return self.identification.encode()

    def on_data(self, data: bytes) -> Optional[bytes]:
        try:
            SshIdentification.decode(data)
        except SshDecodeError:
            self.closed = True
            return None
        return encode_keyreply(self.host_key)


# -- OS extraction (Section 4.3.2 / Table 9) ---------------------------

#: software-version → distribution patterns; comment strings also carry
#: distro info for packaged OpenSSH (e.g. "OpenSSH_9.2p1 Debian-2").
_OS_PATTERNS: Tuple[Tuple[re.Pattern, str], ...] = (
    (re.compile(r"Ubuntu", re.IGNORECASE), "Ubuntu"),
    (re.compile(r"Raspbian", re.IGNORECASE), "Raspbian"),
    (re.compile(r"Debian", re.IGNORECASE), "Debian"),
    (re.compile(r"FreeBSD", re.IGNORECASE), "FreeBSD"),
    (re.compile(r"NetBSD", re.IGNORECASE), "NetBSD"),
)


def extract_os(identification: SshIdentification) -> str:
    """Best-effort OS name from an SSH server identification.

    Returns the distribution name or ``"other/unknown"`` — the exact
    buckets of Table 3 (SSH column).
    """
    haystack = identification.banner
    for pattern, name in _OS_PATTERNS:
        if pattern.search(haystack):
            return name
    return "other/unknown"


#: e.g. "OpenSSH_9.2p1 Debian-2+deb12u3" → ("9.2p1", "2+deb12u3")
_DEBIAN_VERSION = re.compile(
    r"OpenSSH_(?P<upstream>[\w.]+)\s+"
    r"(?:Debian|Ubuntu|Raspbian)-(?P<patch>[\w.+~]+)"
)


def debian_patch_level(identification: SshIdentification) -> Optional[Tuple[str, str]]:
    """Extract (upstream_version, distro_patch) from Debian-derived banners.

    Only Debian-derived builds expose their patch level in the banner,
    which is why the paper restricts the outdatedness analysis to them.
    Returns ``None`` for everything else.
    """
    match = _DEBIAN_VERSION.search(identification.banner)
    if not match:
        return None
    return match.group("upstream"), match.group("patch")


@dataclass(frozen=True)
class SshSessionFactory:
    """Picklable factory producing :class:`SshServerSession` instances
    (see :class:`repro.proto.http.HttpSessionFactory` for why services
    are bound as factory objects, not closures)."""

    identification: SshIdentification
    host_key: KeyIdentity

    def __call__(self) -> SshServerSession:
        return SshServerSession(self.identification, self.host_key)
