"""TLS-wrapped TCP sessions.

Device models expose HTTPS/MQTTS/AMQPS by putting a
:class:`repro.tlslib.TlsTerminator` in front of an inner session: the
first client write must be a ClientHello (answered with the server
flight or an alert), after which the session switches to the inner
protocol.  The simulated channel carries inner-protocol bytes in the
clear — encryption is not an observable any analysis consumes — but the
handshake gate is real: no certificate exchange, no application data.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.tlslib.handshake import RECORD_ALERT, TlsTerminator


class TlsWrappedSession:
    """State machine: TLS handshake first, inner protocol afterwards."""

    def __init__(self, terminator: TlsTerminator, inner) -> None:
        self._terminator = terminator
        self._inner = inner
        self._established = False
        self.closed = False

    def greeting(self) -> bytes:
        # TLS servers speak only after the ClientHello; inner greetings
        # (e.g. an SSH banner would never be TLS-wrapped anyway) are
        # delivered with the first inner response instead.
        return b""

    def on_data(self, data: bytes) -> Optional[bytes]:
        if not self._established:
            response = self._terminator.respond(data)
            if response[:1] == bytes((RECORD_ALERT,)):
                self.closed = True
                return response
            self._established = True
            greeting = self._inner.greeting()
            return response + greeting if greeting else response
        response = self._inner.on_data(data)
        if getattr(self._inner, "closed", False):
            self.closed = True
        return response


class TlsService:
    """A TCP service factory wrapping an inner session factory in TLS."""

    def __init__(self, terminator: TlsTerminator,
                 inner_factory: Callable[[], object]) -> None:
        self._terminator = terminator
        self._inner_factory = inner_factory

    def accept(self, peer: int, peer_port: int) -> TlsWrappedSession:
        return TlsWrappedSession(self._terminator, self._inner_factory())


class PlainService:
    """A TCP service factory producing plain inner sessions."""

    def __init__(self, factory: Callable[[], object]) -> None:
        self._factory = factory

    def accept(self, peer: int, peer_port: int):
        return self._factory()
