"""Rendering helpers for tables and shape reports."""

from repro.report.study import render_full_report
from repro.report.formatting import (
    fmt_float,
    fmt_int,
    fmt_pct,
    fmt_permille,
    render_table,
    shape_check,
)

__all__ = [
    "fmt_float",
    "fmt_int",
    "fmt_pct",
    "fmt_permille",
    "render_full_report",
    "render_table",
    "shape_check",
]
