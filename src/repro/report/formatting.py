"""Rendering helpers for the benchmark reports.

Formats numbers the way the paper typesets them (thin-space thousands
groups: ``3 040 325 302``), percentages with sensible precision, and
plain-text tables with aligned columns.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def fmt_int(value: int) -> str:
    """Group thousands with spaces, as the paper does.

    >>> fmt_int(3040325302)
    '3 040 325 302'
    """
    return f"{value:,}".replace(",", " ")


def fmt_pct(fraction: float, digits: int = 1) -> str:
    """Render a fraction as a percentage string.

    >>> fmt_pct(0.284)
    '28.4 %'
    """
    return f"{fraction * 100:.{digits}f} %"


def fmt_permille(fraction: float, digits: int = 2) -> str:
    """Render a fraction in permille (the paper's hit-rate unit)."""
    return f"{fraction * 1000:.{digits}f} ‰"


def fmt_float(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned plain-text table.

    Cells are stringified; numeric-looking cells right-align, text
    left-aligns.  Intended for the bench harness's stdout reports.
    """
    materialized: List[List[str]] = [[str(cell) for cell in row]
                                     for row in rows]
    columns = len(headers)
    for row in materialized:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row!r}"
            )
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def is_numeric(text: str) -> bool:
        stripped = text.replace(" ", "").replace("%", "").replace("‰", "")
        stripped = stripped.replace(".", "").replace("-", "").replace("x", "")
        return stripped.isdigit() if stripped else False

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for index, cell in enumerate(cells):
            if is_numeric(cell):
                parts.append(cell.rjust(widths[index]))
            else:
                parts.append(cell.ljust(widths[index]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(render_row(headers))
    lines.append("  ".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in materialized)
    return "\n".join(lines)


def shape_check(name: str, condition: bool) -> str:
    """One-line pass/fail marker for paper-shape assertions in benches."""
    marker = "OK " if condition else "DIVERGES"
    return f"[{marker}] {name}"
