"""Render a complete study report from an :class:`ExperimentResult`.

One call produces every table and figure of the paper as aligned text —
the same artefacts the benchmark harness writes, but as a library
feature, so saved or freshly run experiments can be turned into a full
report from code or via ``python -m repro study --full-report``.
"""

from __future__ import annotations

from typing import List

from repro.analysis import devicetypes, keyreuse, lifetime, macs, security, structure
from repro.report.formatting import (
    fmt_float,
    fmt_int,
    fmt_pct,
    fmt_permille,
    render_table,
)
from repro.scan.result import PROTOCOLS, TLS_PROTOCOLS


def _section(title: str) -> str:
    bar = "#" * 70
    return f"\n{bar}\n## {title}\n{bar}\n"


def render_table1(result) -> str:
    table = result.table1()
    rows = [[s.label, fmt_int(s.address_count), fmt_int(s.net48_count),
             fmt_int(s.as_count), fmt_float(s.median_ips_per_48),
             fmt_float(s.median_ips_per_as)]
            for s in table.summaries]
    text = render_table(
        ["dataset", "IP addresses", "/48 networks", "ASes",
         "median IPs per /48", "median IPs per AS"], rows)
    overlap_rows = [[f"ntp ∩ {o.other_label}", fmt_int(o.address_overlap),
                     fmt_int(o.net48_overlap), fmt_int(o.as_overlap)]
                    for o in table.overlaps]
    return text + "\n\n" + render_table(
        ["overlap", "addresses", "/48 networks", "ASes"], overlap_rows)


def render_figure1(result) -> str:
    from repro.ipv6.iid import CLASSES

    asdb = result.world.asdb
    reports = [structure.analyze("ntp", result.ntp_dataset.addresses, asdb),
               structure.analyze("hitlist-full", result.hitlist.full, asdb),
               structure.analyze("hitlist-public", result.hitlist.public,
                                 asdb)]
    if result.rl_dataset is not None:
        reports.insert(1, structure.analyze(
            "rl", result.rl_dataset.addresses, asdb))
    rows = [[report.label]
            + [fmt_pct(report.class_shares.get(cls, 0.0)) for cls in CLASSES]
            + [fmt_pct(report.eyeball_as_share)]
            for report in reports]
    return render_table(["dataset"] + list(CLASSES) + ["Cable/DSL/ISP"],
                        rows)


def render_table2(result) -> str:
    rows = []
    for protocol in PROTOCOLS:
        ntp, hitlist = result.ntp_scan, result.hitlist_scan
        ntp_keys = len(ntp.unique_fingerprints(protocol))
        hit_keys = len(hitlist.unique_fingerprints(protocol))
        rows.append([
            protocol,
            fmt_int(len(ntp.responsive_addresses(protocol))),
            (fmt_int(len(ntp.tls_addresses(protocol)))
             if protocol in TLS_PROTOCOLS else "-"),
            fmt_int(ntp_keys) if ntp_keys else "-",
            fmt_int(len(hitlist.responsive_addresses(protocol))),
            (fmt_int(len(hitlist.tls_addresses(protocol)))
             if protocol in TLS_PROTOCOLS else "-"),
            fmt_int(hit_keys) if hit_keys else "-",
        ])
    text = render_table(
        ["protocol", "NTP #addrs", "NTP w/ TLS", "NTP #certs/keys",
         "hitlist #addrs", "hitlist w/ TLS", "hitlist #certs/keys"], rows)
    text += (f"\n\nhit rates: NTP "
             f"{fmt_permille(result.ntp_scan.hit_rate())} vs hitlist "
             f"{fmt_permille(result.hitlist_scan.hit_rate())}")
    return text


def render_table3(result) -> str:
    table = devicetypes.build_table3(result.ntp_scan, result.hitlist_scan)
    seen = set()
    rows = []
    for group in list(table.http_ntp[:10]) + list(table.http_hitlist[:8]):
        if group.representative in seen:
            continue
        seen.add(group.representative)
        rows.append([
            group.representative[:46],
            fmt_int(table.http_group_count("ntp", group.representative)),
            fmt_int(table.http_group_count("hitlist",
                                           group.representative)),
        ])
    text = render_table(["HTML title group", "NTP #certs",
                         "hitlist #certs"], rows)
    text += "\n\n" + render_table(
        ["SSH OS", "NTP #keys", "hitlist #keys"],
        [[name, fmt_int(table.ssh_ntp[name]),
          fmt_int(table.ssh_hitlist[name])]
         for name in devicetypes.SSH_OS_BUCKETS])
    text += "\n\n" + render_table(
        ["CoAP group", "NTP #addrs", "hitlist #addrs"],
        [[name, fmt_int(table.coap_ntp[name]),
          fmt_int(table.coap_hitlist[name])]
         for name in devicetypes.COAP_GROUPS])
    findings = devicetypes.new_or_underrepresented(table)
    total = sum(count for count, _ in findings.values())
    text += (f"\n\n=> {fmt_int(total)} devices in {len(findings)} groups "
             "missed or underrepresented by the hitlist")
    return text


def render_security(result) -> str:
    rows = []
    for label, scan in (("ntp", result.ntp_scan),
                        ("hitlist", result.hitlist_scan)):
        report = security.ssh_outdatedness(label, scan)
        rows.append([label, fmt_int(report.assessed),
                     fmt_pct(report.outdated_share)])
    text = render_table(["dataset", "assessed SSH keys", "outdated"], rows)
    rows = []
    for protocol in ("mqtt", "amqp"):
        for label, scan in (("ntp", result.ntp_scan),
                            ("hitlist", result.hitlist_scan)):
            report = security.broker_access_control(label, scan, protocol)
            rows.append([protocol.upper(), label, fmt_int(report.total),
                         fmt_pct(report.access_control_share)])
    text += "\n\n" + render_table(
        ["protocol", "dataset", "brokers", "access control"], rows)
    ntp, hitlist = security.security_gap(result.ntp_scan,
                                         result.hitlist_scan)
    text += (f"\n\nsecure share: hitlist {fmt_pct(hitlist.secure_share)} of "
             f"{fmt_int(hitlist.total)} vs NTP {fmt_pct(ntp.secure_share)} "
             f"of {fmt_int(ntp.total)} (paper: 43.5 % vs 28.4 %)")
    return text


def render_appendices(result) -> str:
    mac_report = macs.analyze_dataset(result.ntp_dataset, result.world.oui)
    text = render_table(
        ["manufacturer", "#MACs", "#IPs"],
        [[row.vendor[:48], fmt_int(row.mac_count), fmt_int(row.ip_count)]
         for row in mac_report.top_vendors(10)])
    counts = sorted(result.ntp_dataset.per_server_counts().items(),
                    key=lambda item: -item[1])
    text += "\n\n" + render_table(
        ["capture server", "#addresses"],
        [[location, fmt_int(count)] for location, count in counts])
    reuse = keyreuse.analyze("ntp", result.ntp_scan, result.world.asdb)
    life = lifetime.analyze(result.ntp_dataset)
    text += (f"\n\nkey reuse (ntp): {fmt_int(reuse.reused_key_count)} keys "
             f"across >2 ASes covering "
             f"{fmt_int(reuse.total_reused_addresses)} addresses")
    text += (f"\naddress lifetimes: "
             f"{fmt_pct(life.single_sighting_share)} single-sighting, "
             f"{fmt_pct(life.long_lived_share)} observed ≥7 days")
    return text


def render_full_report(result) -> str:
    """The whole study, every table/figure, as one text document."""
    parts: List[str] = [
        "TIME TO SCAN — full study report (simulated reproduction)",
        _section("Table 1 — collected datasets"), render_table1(result),
        _section("Figure 1 — address structure"), render_figure1(result),
        _section("Table 2 — scans by protocol"), render_table2(result),
        _section("Table 3 — device types"), render_table3(result),
        _section("Figures 2-3 — security configuration"),
        render_security(result),
        _section("Appendices — vendors, per-server volumes, reuse, "
                 "lifetimes"),
        render_appendices(result),
    ]
    return "\n".join(parts)
