"""The staged runtime: event bus, stages, probe registry, sharding.

``repro.runtime`` is the layer the sourcing→scan data path runs on:
:mod:`~repro.runtime.bus` carries typed events between pipeline stages,
:mod:`~repro.runtime.stage` gives stages bounded queues with drop
accounting, :mod:`~repro.runtime.registry` makes the probe set a
campaign parameter, and :mod:`~repro.runtime.sharding` fans scan state
out across independent engines.  See DESIGN.md §3 for the module map.
"""

from repro.runtime.bus import (
    AddressSighted,
    BusStats,
    Event,
    EventBus,
    TargetScanned,
)
from repro.runtime.registry import (
    DEFAULT_PACKET_COST,
    ProbeRegistry,
    ProbeSpec,
    default_registry,
)
from repro.runtime.stage import BoundedQueue, Stage, StageStats

#: Lazy (PEP 562) exports: sharding builds on repro.scan.engine, which
#: itself imports repro.runtime.registry — importing it eagerly here
#: would close an import cycle through this package's __init__.
_LAZY = {"ShardedScanEngine": "repro.runtime.sharding",
         "shard_of": "repro.runtime.sharding",
         "ParallelShardedScanEngine": "repro.runtime.parallel",
         "ParallelExecutionError": "repro.runtime.parallel",
         "WorkerCrashed": "repro.runtime.parallel",
         "NetworkView": "repro.runtime.snapshot",
         "SnapshotError": "repro.runtime.snapshot",
         "WorkerPool": "repro.runtime.pool",
         "PoolBrokenError": "repro.runtime.pool",
         "SnapshotRef": "repro.runtime.pool",
         "resolve_workers": "repro.runtime.pool"}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "AddressSighted",
    "BoundedQueue",
    "BusStats",
    "DEFAULT_PACKET_COST",
    "Event",
    "EventBus",
    "NetworkView",
    "ParallelExecutionError",
    "ParallelShardedScanEngine",
    "PoolBrokenError",
    "ProbeRegistry",
    "ProbeSpec",
    "ShardedScanEngine",
    "SnapshotError",
    "SnapshotRef",
    "Stage",
    "StageStats",
    "TargetScanned",
    "WorkerCrashed",
    "WorkerPool",
    "default_registry",
    "resolve_workers",
    "shard_of",
]
