"""A typed, synchronous event bus — the spine of the staged runtime.

The paper's defining mechanism is *real-time* coupling: every address
the NTP servers source is handed to the scanner immediately (Section 6:
batching sourced addresses "is not useful" because end-user addresses
churn too fast).  The seed implementation wired that coupling as an
ad-hoc callback list on :class:`~repro.core.collector.CollectedDataset`.
This module replaces it with an explicit publish/subscribe bus so the
sourcing→scan path is a chain of observable, testable stages:

* producers (`CaptureServer` → `CollectedDataset`) publish typed events;
* consumers (`RealTimeScanQueue`, auditing taps, future stages) subscribe
  by event *type* and never know who produced the event;
* delivery is synchronous and in subscription order, which keeps the
  whole pipeline deterministic under a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Type

from repro.obs.metrics import Counter, current_registry


@dataclass(frozen=True)
class Event:
    """Base class for bus events (subclasses are frozen dataclasses)."""


@dataclass(frozen=True)
class AddressSighted(Event):
    """A client address was observed for the first time.

    Published by :class:`~repro.core.collector.CollectedDataset` at the
    moment of first sighting — the trigger of the paper's real-time
    scans.
    """

    address: int
    time: float
    server_location: str


@dataclass(frozen=True)
class TargetScanned(Event):
    """A target finished its probe sweep (for auditing/monitoring taps)."""

    address: int
    time: float
    responsive: bool


#: An event handler; subscribes to exactly one event type.
Handler = Callable[[Event], None]


@dataclass
class BusStats:
    """Counters for reporting and tests."""

    published: int = 0
    delivered: int = 0
    #: Events published with no subscriber for their type.
    unheard: int = 0


class EventBus:
    """Synchronous publish/subscribe dispatch keyed by event type.

    Handlers for one type run in subscription order; publishing is
    re-entrant (a handler may publish follow-up events).
    """

    def __init__(self) -> None:
        self._subscribers: Dict[Type[Event], List[Handler]] = {}
        self.stats = BusStats()
        self._metrics = current_registry()
        #: Per-event-type publish counters, cached so the hot publish
        #: path pays one dict lookup, not a registry get-or-create.
        self._type_counters: Dict[Type[Event], Counter] = {}

    def subscribe(self, event_type: Type[Event],
                  handler: Handler) -> Callable[[], None]:
        """Register ``handler`` for ``event_type``; returns an unsubscriber."""
        if not (isinstance(event_type, type) and issubclass(event_type, Event)):
            raise TypeError(f"not an Event type: {event_type!r}")
        handlers = self._subscribers.setdefault(event_type, [])
        handlers.append(handler)

        def unsubscribe() -> None:
            if handler in handlers:
                handlers.remove(handler)

        return unsubscribe

    def publish(self, event: Event) -> int:
        """Deliver ``event`` to its type's subscribers; returns the count."""
        self.stats.published += 1
        event_type = type(event)
        counter = self._type_counters.get(event_type)
        if counter is None:
            counter = self._metrics.counter("bus_events_total",
                                            event=event_type.__name__)
            self._type_counters[event_type] = counter
        counter.inc()
        handlers = self._subscribers.get(type(event))
        if not handlers:
            self.stats.unheard += 1
            return 0
        # Copy so handlers may (un)subscribe during delivery.
        for handler in list(handlers):
            handler(event)
        delivered = len(handlers)
        self.stats.delivered += delivered
        return delivered

    def subscriber_count(self, event_type: Type[Event]) -> int:
        return len(self._subscribers.get(event_type, ()))
