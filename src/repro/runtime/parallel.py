"""Multiprocess shard execution for the scan runtime.

:class:`ShardedScanEngine` promised "trivially parallelizable later";
this module cashes that cheque.  :class:`ParallelShardedScanEngine`
keeps the sharded engine's exact external contract but executes each
shard's batch of :meth:`run` targets in a worker process:

1. targets are partitioned by the same
   :func:`~repro.runtime.sharding.shard_of` hash, tagged with their
   global arrival index;
2. every non-empty shard becomes a picklable :class:`ShardTask` — the
   shard's :class:`~repro.scan.engine.EngineConfig` (per-shard seed),
   probe registry, ethics policy, prior cool-down map, and a
   :class:`~repro.runtime.snapshot.NetworkView` of the shard's targets.
   Workers never share live simnet objects: they rebuild a private
   network and engine from the task (spawn-safe by construction);
3. worker outcomes merge back **in shard order**: result buckets via
   :meth:`ScanResults.merged`, stats and cool-down state into the
   parent's shard engines, each worker's fresh
   :class:`~repro.obs.metrics.MetricsRegistry` via
   :meth:`MetricsRegistry.merge`, and store events replayed in global
   arrival order through the shard engines' existing WAL sinks.

Determinism argument: in embedded mode (``drive_clock=False``) a scan
neither advances the shared clock nor consumes engine rng (politeness
jitter is driving-mode only), and with ``loss_rate == 0`` probes do not
consume network rng either — so each target's probe outcome depends
only on (target, registry, service state).  Partitioning is pure,
merging is ordered, and the arrival-index replay reproduces the exact
interleaving a sequential run logs.  The engine therefore *refuses*
configurations that would silently break parity: driving-mode clocks,
lossy networks, and networks with taps (workers' traffic would bypass
them).

Wall-clock timing (per-shard wall/cpu, pool and merge time) is exposed
on :attr:`ParallelShardedScanEngine.last_run_timing` and flows into the
RunReport's ``parallel`` table — never into the metrics registry, which
records simulated-time, deterministic series only.  Registry series
added by this backend (batch sizes, run counts) carry a ``parallel_``
name prefix so parity harnesses can filter them.
"""

from __future__ import annotations

import heapq
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry, \
    current_registry, use_registry
from repro.runtime.registry import ProbeRegistry
from repro.runtime.sharding import ShardedScanEngine, shard_of
from repro.runtime.snapshot import NetworkView
from repro.scan.engine import EngineConfig, EngineStats, ScanEngine
from repro.scan.ethics import EthicsPolicy
from repro.scan.result import ScanResults

#: Spawn is the only start method that is safe everywhere (no inherited
#: locks/fds) and it forces the no-shared-state worker design honest.
DEFAULT_START_METHOD = "spawn"

#: Test hook: ``"<shard>:<position>"`` hard-kills the worker processing
#: that shard right before it feeds its ``position``-th target.
CRASH_ENV = "REPRO_PARALLEL_CRASH"


class ParallelExecutionError(RuntimeError):
    """The requested run cannot execute (correctly) in parallel."""


class WorkerCrashed(ParallelExecutionError):
    """A worker process died mid-batch (segfault, OOM-kill, os._exit).

    ``shards`` lists the shard indices whose results were lost — the
    pool breaks as a unit, so this typically names every in-flight
    shard, not just the one whose worker died.  No partial state has
    been merged and no store records have been written for this run, so
    a store-backed study resumes cleanly from its surviving log.
    """

    def __init__(self, shards: Iterable[int], message: str) -> None:
        super().__init__(message)
        self.shards: Tuple[int, ...] = tuple(shards)


@dataclass
class ShardTask:
    """Everything one worker needs to scan one shard, by value."""

    shard: int
    engine_name: str
    label: str
    source: int
    config: EngineConfig
    registry: ProbeRegistry
    ethics: Optional[EthicsPolicy]
    view: NetworkView
    #: ``(global_arrival_index, target)`` in arrival order.
    targets: List[Tuple[int, int]]
    cooldown: Dict[int, float]


@dataclass
class ShardOutcome:
    """One worker's complete, picklable result."""

    shard: int
    results: ScanResults
    stats: EngineStats
    cooldown: Dict[int, float]
    metrics: MetricsRegistry
    #: ``(arrival, "admit", target, now)`` / ``(arrival, "grab", grab)``
    #: in scan order — replayed by the parent for WAL byte-identity.
    events: List[tuple]
    suppressed: int
    wall_seconds: float
    cpu_seconds: float


def _maybe_crash(shard: int, position: int) -> None:
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return
    crash_shard, _, crash_position = spec.partition(":")
    if int(crash_shard) == shard and int(crash_position or 0) == position:
        # A hard exit, not an exception: models the worker *dying*
        # (the failure mode ProcessPoolExecutor reports as a broken
        # pool), which an exception-based fault could not.
        os._exit(70)


def scan_shard(task: ShardTask) -> ShardOutcome:
    """Worker entry point: rebuild the shard's engine and scan its batch.

    Must stay a module-level function — spawn pickles it by reference.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    network = task.view.build()
    registry = MetricsRegistry()
    events: List[tuple] = []
    # The hooks close over the arrival cursor so every admit/grab event
    # carries the global arrival index of the target that produced it.
    cursor = [0]
    suppressed_before = task.ethics.suppressed if task.ethics else 0
    with use_registry(registry):
        engine = ScanEngine(network, task.source, task.config, task.ethics,
                            task.registry, name=task.engine_name)
        engine.scheduler.load_cooldown(task.cooldown)
        engine.scheduler.admit_hook = \
            lambda target, now: events.append((cursor[0], "admit", target, now))
        engine.executor.grab_hook = \
            lambda grab: events.append((cursor[0], "grab", grab))
        results = ScanResults(label=task.label)
        for position, (arrival, target) in enumerate(task.targets):
            _maybe_crash(task.shard, position)
            cursor[0] = arrival
            engine.feed(target, results)
    suppressed = (engine.ethics.suppressed - suppressed_before
                  if engine.ethics else 0)
    return ShardOutcome(
        shard=task.shard,
        results=results,
        stats=engine.stats,
        cooldown=engine.scheduler.cooldown_state(),
        metrics=registry,
        events=events,
        suppressed=suppressed,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
    )


class ParallelShardedScanEngine:
    """A :class:`ShardedScanEngine` whose ``run`` fans shards out to a
    process pool.

    Drop-in for the sequential sharded engine: ``feed``/``scan_address``
    stay in-process (they are per-target calls on the live network and
    the real-time queue's path), while :meth:`run` — the batch entry
    point — executes shards in ``workers`` processes and merges the
    outcomes so every observable (results, stats, cool-down maps,
    metrics, WAL records) is byte-identical to a sequential run.
    """

    def __init__(self, network, source: int,
                 config: Optional[EngineConfig] = None,
                 ethics: Optional[EthicsPolicy] = None,
                 registry: Optional[ProbeRegistry] = None,
                 *, shards: int = 4, workers: int = 1,
                 name: str = "engine",
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._inner = ShardedScanEngine(network, source, config, ethics,
                                        registry, shards=shards, name=name)
        self.workers = int(workers)
        self.start_method = start_method or os.environ.get(
            "REPRO_PARALLEL_START_METHOD", DEFAULT_START_METHOD)
        #: Wall-clock observability of the most recent :meth:`run` —
        #: deliberately *not* registry metrics (see module docstring).
        self.last_run_timing: Optional[dict] = None
        # Bind parallel-only instruments to the registry active at
        # construction time, exactly like the shard engines bind theirs.
        self._metrics = current_registry()
        self._m_runs = self._metrics.counter("parallel_runs_total", engine=name)
        self._m_targets = self._metrics.counter("parallel_targets_total",
                                                engine=name)

    # -- delegation (the ScanEngine/ShardedScanEngine contract) -----------

    @property
    def network(self):
        return self._inner.network

    @property
    def source(self) -> int:
        return self._inner.source

    @property
    def config(self) -> EngineConfig:
        return self._inner.config

    @property
    def ethics(self) -> Optional[EthicsPolicy]:
        return self._inner.ethics

    @property
    def registry(self) -> ProbeRegistry:
        return self._inner.registry

    @property
    def shards(self) -> int:
        return self._inner.shards

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def engines(self) -> List[ScanEngine]:
        return self._inner.engines

    @property
    def stats(self) -> EngineStats:
        return self._inner.stats

    @property
    def tracked_targets(self) -> int:
        return self._inner.tracked_targets

    def engine_for(self, target: int) -> ScanEngine:
        return self._inner.engine_for(target)

    def attach_store(self, writer, *, label: str) -> None:
        self._inner.attach_store(writer, label=label)

    def cooldown_snapshots(self):
        return self._inner.cooldown_snapshots()

    def scan_address(self, target: int):
        return self._inner.scan_address(target)

    def feed(self, target: int, results: ScanResults) -> bool:
        return self._inner.feed(target, results)

    # -- the parallel batch path ------------------------------------------

    def _check_parallel_safe(self) -> None:
        if self.config.drive_clock:
            raise ParallelExecutionError(
                "drive_clock=True: driving-mode engines advance a shared "
                "clock and consume politeness rng, which workers cannot "
                "interleave deterministically; use embedded mode "
                "(drive_clock=False) or the sequential ShardedScanEngine")
        network = self.network
        if network.loss_rate > 0:
            raise ParallelExecutionError(
                f"loss_rate={network.loss_rate}: lossy networks draw from "
                "a shared rng stream, so per-worker replicas would "
                "diverge from a sequential run; scan sequentially")
        if network.tap_count:
            raise ParallelExecutionError(
                f"network has {network.tap_count} tap(s): worker traffic "
                "runs on private network replicas the taps cannot "
                "observe; detach taps or scan sequentially")

    def run(self, targets: Iterable[int], label: str = "") -> ScanResults:
        """Scan a target list across the worker pool; merged results are
        byte-identical to :meth:`ShardedScanEngine.run` on the same
        targets."""
        self._check_parallel_safe()
        targets = list(targets)
        self._m_runs.inc()
        self._m_targets.inc(len(targets))

        partition: List[List[Tuple[int, int]]] = \
            [[] for _ in range(self.shards)]
        for arrival, target in enumerate(targets):
            partition[shard_of(target, self.shards)].append((arrival, target))
        for index, batch in enumerate(partition):
            self._metrics.histogram("parallel_batch_targets",
                                    buckets=COUNT_BUCKETS,
                                    engine=self.name,
                                    shard=str(index)).observe(len(batch))

        tasks = [
            ShardTask(
                shard=index,
                engine_name=engine.name,
                label=f"{label}/shard{index}",
                source=self.source,
                config=engine.config,
                registry=self.registry,
                ethics=self.ethics,
                view=NetworkView.capture(self.network,
                                         (target for _, target in batch)),
                targets=batch,
                cooldown=engine.scheduler.cooldown_state(),
            )
            for index, (engine, batch) in
            enumerate(zip(self._inner.engines, partition)) if batch
        ]

        outcomes: Dict[int, ShardOutcome] = {}
        pool_start = time.perf_counter()
        if tasks:
            context = get_context(self.start_method)
            crashed: List[int] = []
            with ProcessPoolExecutor(max_workers=min(self.workers, len(tasks)),
                                     mp_context=context) as pool:
                futures = [(task.shard, pool.submit(scan_shard, task))
                           for task in tasks]
                for shard, future in futures:
                    try:
                        outcomes[shard] = future.result()
                    except BrokenProcessPool:
                        crashed.append(shard)
            if crashed:
                raise WorkerCrashed(
                    crashed,
                    f"worker pool broke while scanning shard(s) "
                    f"{crashed} of engine {self.name!r}; no partial "
                    "results were merged")
        pool_seconds = time.perf_counter() - pool_start

        merge_start = time.perf_counter()
        results = self._merge(outcomes, partition, label)
        merge_seconds = time.perf_counter() - merge_start

        busy = sum(outcome.wall_seconds for outcome in outcomes.values())
        self.last_run_timing = {
            "workers": self.workers,
            "start_method": self.start_method,
            "targets": len(targets),
            "pool_wall_seconds": pool_seconds,
            "merge_wall_seconds": merge_seconds,
            "busy_wall_seconds": busy,
            "idle_wall_seconds": max(0.0, self.workers * pool_seconds - busy),
            "shards": [
                {
                    "shard": index,
                    "targets": len(partition[index]),
                    "wall_seconds": outcomes[index].wall_seconds
                    if index in outcomes else 0.0,
                    "cpu_seconds": outcomes[index].cpu_seconds
                    if index in outcomes else 0.0,
                }
                for index in range(self.shards)
            ],
        }
        return results

    def _merge(self, outcomes: Dict[int, ShardOutcome],
               partition: List[List[Tuple[int, int]]],
               label: str) -> ScanResults:
        """Fold worker outcomes into the parent, in shard order."""
        parts: List[ScanResults] = []
        suppressed = 0
        for index in range(self.shards):
            outcome = outcomes.get(index)
            if outcome is None:
                # Empty shard: same placeholder the sequential run makes.
                parts.append(ScanResults(label=f"{label}/shard{index}"))
                continue
            engine = self._inner.engines[index]
            engine.scheduler.load_cooldown(outcome.cooldown)
            stats = engine.stats
            delta = outcome.stats
            stats.targets_offered += delta.targets_offered
            stats.targets_scanned += delta.targets_scanned
            stats.targets_cooled_down += delta.targets_cooled_down
            stats.probes_sent += delta.probes_sent
            stats.seconds_waited += delta.seconds_waited
            stats.cooldown_pruned += delta.cooldown_pruned
            self._metrics.merge(outcome.metrics)
            suppressed += outcome.suppressed
            parts.append(outcome.results)
        # Every parent shard engine shares one policy object, so the
        # suppression count folds in exactly once.
        if self.ethics is not None:
            self.ethics.suppressed += suppressed
        self._replay_events(outcomes)
        return ScanResults.merged(parts, label=label)

    def _replay_events(self, outcomes: Dict[int, ShardOutcome]) -> None:
        """Re-emit worker admit/grab events through the parent shard
        engines' store sinks, in global arrival order.

        A sequential run interleaves shards' WAL records in target
        arrival order; replaying by arrival index reproduces that exact
        record stream, which is what keeps resume/verify mode-agnostic.
        Arrival indices are unique per target and a target lives on
        exactly one shard, so the k-way merge has no ties to break.
        """
        engines = self._inner.engines
        if all(engine.scheduler.admit_hook is None
               and engine.executor.grab_hook is None for engine in engines):
            return
        def tagged(shard: int, events: List[tuple]):
            return ((event[0], shard, event) for event in events)

        streams = [tagged(shard, outcome.events)
                   for shard, outcome in sorted(outcomes.items())]
        for _, shard, event in heapq.merge(*streams, key=lambda item: item[0]):
            engine = engines[shard]
            if event[1] == "admit":
                if engine.scheduler.admit_hook is not None:
                    engine.scheduler.admit_hook(event[2], event[3])
            else:
                if engine.executor.grab_hook is not None:
                    engine.executor.grab_hook(event[2])
