"""Multiprocess shard execution for the scan runtime.

:class:`ShardedScanEngine` promised "trivially parallelizable later";
this module cashes that cheque.  :class:`ParallelShardedScanEngine`
keeps the sharded engine's exact external contract but executes each
shard's batch of :meth:`run` targets in a worker process:

1. targets are partitioned by the same
   :func:`~repro.runtime.sharding.shard_of` hash, tagged with their
   global arrival index;
2. the world ships **once per (world, pool) pair**: the engine captures
   a full :meth:`~repro.runtime.snapshot.NetworkView.capture_full`
   snapshot, spools it through :meth:`WorkerPool.ship`, and every
   :class:`ShardTask` carries only a tiny
   :class:`~repro.runtime.pool.SnapshotRef` plus the shard's
   :class:`~repro.scan.engine.EngineConfig` (per-shard seed), probe
   registry, ethics policy and prior cool-down map.  Re-running against
   an unchanged world (same ``Network.version``, same clock) skips even
   the pickling pass; workers rebuild a private network from the cached
   snapshot, never sharing live simnet objects (spawn-safe by
   construction);
3. worker outcomes **stream** back in shard order: result buckets fold
   incrementally via :meth:`ScanResults.absorb` the moment each shard's
   turn comes, while parent-visible state (stats, cool-down maps,
   metrics via :meth:`MetricsRegistry.merge`, store events replayed in
   global arrival order through the shard engines' existing WAL sinks)
   stays staged until every shard has succeeded — a crashed run merges
   nothing.

The pool itself may be *persistent*: pass ``pool=`` (usually via
:class:`repro.api.ExecutionContext`) and the same spawned workers and
snapshot cache serve every later run; otherwise each :meth:`run` uses a
private single-batch pool, preserving the PR-4 behaviour.

Determinism argument: in embedded mode (``drive_clock=False``) a scan
neither advances the shared clock nor consumes engine rng (politeness
jitter is driving-mode only), and with ``loss_rate == 0`` probes do not
consume network rng either — so each target's probe outcome depends
only on (target, registry, service state).  Partitioning is pure,
merging is ordered, and the arrival-index replay reproduces the exact
interleaving a sequential run logs.  The engine therefore *refuses*
configurations that would silently break parity: driving-mode clocks,
lossy networks, and networks with taps (workers' traffic would bypass
them).

Wall-clock timing (per-shard wall/cpu, pool and merge time) is exposed
on :attr:`ParallelShardedScanEngine.last_run_timing` and flows into the
RunReport's ``parallel`` table — never into the metrics registry, which
records simulated-time, deterministic series only.  Registry series
added by this backend (batch sizes, run counts) carry a ``parallel_``
name prefix so parity harnesses can filter them.
"""

from __future__ import annotations

import heapq
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry, \
    current_registry, use_registry
from repro.runtime.pool import DEFAULT_START_METHOD, PoolBrokenError, \
    SnapshotRef, WorkerPool, load_snapshot
from repro.runtime.registry import ProbeRegistry
from repro.runtime.sharding import ShardedScanEngine, shard_of
from repro.runtime.snapshot import NetworkView, diagnose_unpicklable
from repro.scan.engine import EngineConfig, EngineStats, ScanEngine
from repro.scan.ethics import EthicsPolicy
from repro.scan.result import ScanResults

#: Test hook: ``"<shard>:<position>"`` hard-kills the worker processing
#: that shard right before it feeds its ``position``-th target.
CRASH_ENV = "REPRO_PARALLEL_CRASH"


class ParallelExecutionError(RuntimeError):
    """The requested run cannot execute (correctly) in parallel."""


class WorkerCrashed(ParallelExecutionError):
    """A worker process died mid-batch (segfault, OOM-kill, os._exit).

    ``shards`` lists the shard indices whose results were lost — the
    pool breaks as a unit, so this typically names every in-flight
    shard, not just the one whose worker died.  No partial state has
    been merged and no store records have been written for this run, so
    a store-backed study resumes cleanly from its surviving log.
    """

    def __init__(self, shards: Iterable[int], message: str) -> None:
        super().__init__(message)
        self.shards: Tuple[int, ...] = tuple(shards)


@dataclass
class ShardTask:
    """Everything one worker needs to scan one shard, by value."""

    shard: int
    engine_name: str
    label: str
    source: int
    config: EngineConfig
    registry: ProbeRegistry
    ethics: Optional[EthicsPolicy]
    #: Address of the pickle-once world snapshot (a full
    #: :class:`~repro.runtime.snapshot.NetworkView`); every shard of a
    #: run — and every run against an unchanged world — shares one.
    view_ref: SnapshotRef
    #: ``(global_arrival_index, target)`` in arrival order.
    targets: List[Tuple[int, int]]
    cooldown: Dict[int, float]
    #: Whether the parent will replay admit/grab events (a store is
    #: attached).  Without a consumer the worker skips event capture
    #: entirely — the events would double-ship every grab for nothing.
    want_events: bool = True


@dataclass
class ShardOutcome:
    """One worker's complete, picklable result."""

    shard: int
    results: ScanResults
    stats: EngineStats
    cooldown: Dict[int, float]
    metrics: MetricsRegistry
    #: ``(arrival, "admit", target, now)`` / ``(arrival, "grab", grab)``
    #: in scan order — replayed by the parent for WAL byte-identity.
    events: List[tuple]
    suppressed: int
    wall_seconds: float
    cpu_seconds: float


def _maybe_crash(shard: int, position: int) -> None:
    spec = os.environ.get(CRASH_ENV)
    if not spec:
        return
    crash_shard, _, crash_position = spec.partition(":")
    if int(crash_shard) == shard and int(crash_position or 0) == position:
        # A hard exit, not an exception: models the worker *dying*
        # (the failure mode ProcessPoolExecutor reports as a broken
        # pool), which an exception-based fault could not.
        os._exit(70)


def scan_shard(task: ShardTask) -> ShardOutcome:
    """Worker entry point: rebuild the shard's engine and scan its batch.

    Must stay a module-level function — spawn pickles it by reference.
    """
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    view: NetworkView = load_snapshot(task.view_ref)
    for _, target in task.targets:
        view.ensure_target_shipped(target)
    network = view.build()
    registry = MetricsRegistry()
    events: List[tuple] = []
    # The hooks close over the arrival cursor so every admit/grab event
    # carries the global arrival index of the target that produced it.
    cursor = [0]
    suppressed_before = task.ethics.suppressed if task.ethics else 0
    with use_registry(registry):
        engine = ScanEngine(network, task.source, task.config, task.ethics,
                            task.registry, name=task.engine_name)
        engine.scheduler.load_cooldown(task.cooldown)
        if task.want_events:
            engine.scheduler.admit_hook = \
                lambda target, now: events.append(
                    (cursor[0], "admit", target, now))
            engine.executor.grab_hook = \
                lambda grab: events.append((cursor[0], "grab", grab))
        results = ScanResults(label=task.label)
        for position, (arrival, target) in enumerate(task.targets):
            _maybe_crash(task.shard, position)
            cursor[0] = arrival
            engine.feed(target, results)
    suppressed = (engine.ethics.suppressed - suppressed_before
                  if engine.ethics else 0)
    return ShardOutcome(
        shard=task.shard,
        results=results,
        stats=engine.stats,
        cooldown=engine.scheduler.cooldown_state(),
        metrics=registry,
        events=events,
        suppressed=suppressed,
        wall_seconds=time.perf_counter() - wall_start,
        cpu_seconds=time.process_time() - cpu_start,
    )


class ParallelShardedScanEngine:
    """A :class:`ShardedScanEngine` whose ``run`` fans shards out to a
    process pool.

    Drop-in for the sequential sharded engine: ``feed``/``scan_address``
    stay in-process (they are per-target calls on the live network and
    the real-time queue's path), while :meth:`run` — the batch entry
    point — executes shards in ``workers`` processes and merges the
    outcomes so every observable (results, stats, cool-down maps,
    metrics, WAL records) is byte-identical to a sequential run.
    """

    def __init__(self, network, source: int,
                 config: Optional[EngineConfig] = None,
                 ethics: Optional[EthicsPolicy] = None,
                 registry: Optional[ProbeRegistry] = None,
                 *, shards: int = 4, workers: int = 1,
                 name: str = "engine",
                 start_method: Optional[str] = None,
                 pool: Optional[WorkerPool] = None) -> None:
        self._pool = pool
        if pool is not None:
            # A shared pool owns the execution parameters: its workers
            # are already spawned (or will be, once) with its settings.
            workers = pool.workers
            start_method = pool.start_method
        elif workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._inner = ShardedScanEngine(network, source, config, ethics,
                                        registry, shards=shards, name=name)
        self.workers = int(workers)
        self.start_method = start_method or os.environ.get(
            "REPRO_PARALLEL_START_METHOD", DEFAULT_START_METHOD)
        #: Wall-clock observability of the most recent :meth:`run` —
        #: deliberately *not* registry metrics (see module docstring).
        self.last_run_timing: Optional[dict] = None
        # Bind parallel-only instruments to the registry active at
        # construction time, exactly like the shard engines bind theirs.
        self._metrics = current_registry()
        self._m_runs = self._metrics.counter("parallel_runs_total", engine=name)
        self._m_targets = self._metrics.counter("parallel_targets_total",
                                                engine=name)
        self._m_ship = self._metrics.counter("parallel_snapshot_ship_total",
                                             engine=name)
        self._m_reuse = self._metrics.counter("parallel_snapshot_reuse_total",
                                              engine=name)

    # -- delegation (the ScanEngine/ShardedScanEngine contract) -----------

    @property
    def network(self):
        return self._inner.network

    @property
    def source(self) -> int:
        return self._inner.source

    @property
    def config(self) -> EngineConfig:
        return self._inner.config

    @property
    def ethics(self) -> Optional[EthicsPolicy]:
        return self._inner.ethics

    @property
    def registry(self) -> ProbeRegistry:
        return self._inner.registry

    @property
    def shards(self) -> int:
        return self._inner.shards

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def engines(self) -> List[ScanEngine]:
        return self._inner.engines

    @property
    def stats(self) -> EngineStats:
        return self._inner.stats

    @property
    def tracked_targets(self) -> int:
        return self._inner.tracked_targets

    def engine_for(self, target: int) -> ScanEngine:
        return self._inner.engine_for(target)

    def attach_store(self, writer, *, label: str) -> None:
        self._inner.attach_store(writer, label=label)

    def cooldown_snapshots(self):
        return self._inner.cooldown_snapshots()

    def scan_address(self, target: int):
        return self._inner.scan_address(target)

    def feed(self, target: int, results: ScanResults) -> bool:
        return self._inner.feed(target, results)

    # -- the parallel batch path ------------------------------------------

    def _check_parallel_safe(self) -> None:
        if self.config.drive_clock:
            raise ParallelExecutionError(
                "drive_clock=True: driving-mode engines advance a shared "
                "clock and consume politeness rng, which workers cannot "
                "interleave deterministically; use embedded mode "
                "(drive_clock=False) or the sequential ShardedScanEngine")
        network = self.network
        if network.loss_rate > 0:
            raise ParallelExecutionError(
                f"loss_rate={network.loss_rate}: lossy networks draw from "
                "a shared rng stream, so per-worker replicas would "
                "diverge from a sequential run; scan sequentially")
        if network.tap_count:
            raise ParallelExecutionError(
                f"network has {network.tap_count} tap(s): worker traffic "
                "runs on private network replicas the taps cannot "
                "observe; detach taps or scan sequentially")

    def _ship_world(self, pool: WorkerPool) -> Tuple[SnapshotRef, bool]:
        """The world's snapshot ref in ``pool``, pickling at most once.

        The cache token is the world's *state identity*: the live
        network object, its topology ``version`` and the clock reading
        (embedded-mode grabs carry capture-time timestamps, so a moved
        clock must invalidate).  Returns ``(ref, shipped)`` where
        ``shipped`` says a new pickling pass actually ran.
        """
        network = self.network
        token = ("network", id(network), network.version,
                 network.clock.now())
        ref = pool.lookup(token, anchor=network)
        if ref is not None:
            self._m_reuse.inc()
            return ref, False
        view = NetworkView.capture_full(network)
        try:
            ref = pool.ship(view, token=token, anchor=network)
        except Exception as exc:
            # Some host's service surface cannot pickle.  Re-capture
            # with the offenders left out (and recorded): untargeted
            # infrastructure ships fine, while probing a skipped host
            # raises the typed error in ensure_target_shipped.
            view = NetworkView.capture_full(network, skip_unpicklable=True)
            try:
                ref = pool.ship(view, token=token, anchor=network)
            except Exception as fallback_exc:
                diagnosed = diagnose_unpicklable(network, fallback_exc)
                if diagnosed is fallback_exc:
                    raise
                raise diagnosed from exc
        self._m_ship.inc()
        return ref, True

    def run(self, targets: Iterable[int], label: str = "") -> ScanResults:
        """Scan a target list across the worker pool; merged results are
        byte-identical to :meth:`ShardedScanEngine.run` on the same
        targets."""
        self._check_parallel_safe()
        targets = list(targets)
        self._m_runs.inc()
        self._m_targets.inc(len(targets))

        partition: List[List[Tuple[int, int]]] = \
            [[] for _ in range(self.shards)]
        for arrival, target in enumerate(targets):
            partition[shard_of(target, self.shards)].append((arrival, target))
        for index, batch in enumerate(partition):
            self._metrics.histogram("parallel_batch_targets",
                                    buckets=COUNT_BUCKETS,
                                    engine=self.name,
                                    shard=str(index)).observe(len(batch))

        pool = self._pool
        ephemeral = pool is None
        if ephemeral:
            pool = WorkerPool(self.workers, start_method=self.start_method)
        try:
            return self._run_in_pool(pool, partition, targets, label)
        finally:
            if ephemeral:
                pool.close()

    def _run_in_pool(self, pool: WorkerPool,
                     partition: List[List[Tuple[int, int]]],
                     targets: List[int], label: str) -> ScanResults:
        ref: Optional[SnapshotRef] = None
        shipped = False
        if any(partition):
            ref, shipped = self._ship_world(pool)

        want_events = any(
            engine.scheduler.admit_hook is not None
            or engine.executor.grab_hook is not None
            for engine in self._inner.engines)
        tasks = [
            ShardTask(
                shard=index,
                engine_name=engine.name,
                label=f"{label}/shard{index}",
                source=self.source,
                config=engine.config,
                registry=self.registry,
                ethics=self.ethics,
                view_ref=ref,
                targets=batch,
                cooldown=engine.scheduler.cooldown_state(),
                want_events=want_events,
            )
            for index, (engine, batch) in
            enumerate(zip(self._inner.engines, partition)) if batch
        ]

        # Stream outcomes in shard order: result buckets fold into a
        # *local* accumulator as each shard's turn comes (empty shards
        # contribute nothing, exactly like the sequential placeholders),
        # while parent-visible state stays staged in ``outcomes`` until
        # the whole batch succeeded — a crashed run merges nothing.
        outcomes: Dict[int, ShardOutcome] = {}
        results = ScanResults(label=label)
        pool_start = time.perf_counter()
        try:
            for _, outcome in pool.map_in_order(scan_shard, tasks):
                outcomes[outcome.shard] = outcome
                results.absorb(outcome.results)
        except PoolBrokenError as exc:
            crashed = [tasks[index].shard for index in exc.lost]
            raise WorkerCrashed(
                crashed,
                f"worker pool broke while scanning shard(s) "
                f"{crashed} of engine {self.name!r}; no partial "
                "results were merged") from exc
        pool_seconds = time.perf_counter() - pool_start

        merge_start = time.perf_counter()
        self._commit(outcomes)
        merge_seconds = time.perf_counter() - merge_start

        busy = sum(outcome.wall_seconds for outcome in outcomes.values())
        self.last_run_timing = {
            "workers": self.workers,
            "start_method": self.start_method,
            "targets": len(targets),
            "pool_wall_seconds": pool_seconds,
            "merge_wall_seconds": merge_seconds,
            "busy_wall_seconds": busy,
            "idle_wall_seconds": max(0.0, self.workers * pool_seconds - busy),
            "snapshot": {
                "digest": ref.digest if ref else None,
                "bytes": ref.size if ref else 0,
                "shipped": shipped,
                "reused": ref is not None and not shipped,
            },
            "pool": {
                "persistent": self._pool is not None,
                "generations": pool.stats["generations"],
                "workers": pool.workers,
            },
            "shards": [
                {
                    "shard": index,
                    "targets": len(partition[index]),
                    "wall_seconds": outcomes[index].wall_seconds
                    if index in outcomes else 0.0,
                    "cpu_seconds": outcomes[index].cpu_seconds
                    if index in outcomes else 0.0,
                }
                for index in range(self.shards)
            ],
        }
        return results

    def _commit(self, outcomes: Dict[int, ShardOutcome]) -> None:
        """Fold worker outcomes into parent state, in shard order.

        Runs only after *every* shard succeeded (the staged half of the
        streaming merge); result buckets were already folded while
        outcomes streamed in.
        """
        suppressed = 0
        for index in sorted(outcomes):
            outcome = outcomes[index]
            engine = self._inner.engines[index]
            engine.scheduler.load_cooldown(outcome.cooldown)
            stats = engine.stats
            delta = outcome.stats
            stats.targets_offered += delta.targets_offered
            stats.targets_scanned += delta.targets_scanned
            stats.targets_cooled_down += delta.targets_cooled_down
            stats.probes_sent += delta.probes_sent
            stats.seconds_waited += delta.seconds_waited
            stats.cooldown_pruned += delta.cooldown_pruned
            self._metrics.merge(outcome.metrics)
            suppressed += outcome.suppressed
        # Every parent shard engine shares one policy object, so the
        # suppression count folds in exactly once.
        if self.ethics is not None:
            self.ethics.suppressed += suppressed
        self._replay_events(outcomes)

    def _replay_events(self, outcomes: Dict[int, ShardOutcome]) -> None:
        """Re-emit worker admit/grab events through the parent shard
        engines' store sinks, in global arrival order.

        A sequential run interleaves shards' WAL records in target
        arrival order; replaying by arrival index reproduces that exact
        record stream, which is what keeps resume/verify mode-agnostic.
        Arrival indices are unique per target and a target lives on
        exactly one shard, so the k-way merge has no ties to break.
        """
        engines = self._inner.engines
        if all(engine.scheduler.admit_hook is None
               and engine.executor.grab_hook is None for engine in engines):
            return
        def tagged(shard: int, events: List[tuple]):
            return ((event[0], shard, event) for event in events)

        streams = [tagged(shard, outcome.events)
                   for shard, outcome in sorted(outcomes.items())]
        for _, shard, event in heapq.merge(*streams, key=lambda item: item[0]):
            engine = engines[shard]
            if event[1] == "admit":
                if engine.scheduler.admit_hook is not None:
                    engine.scheduler.admit_hook(event[2], event[3])
            else:
                if engine.executor.grab_hook is not None:
                    engine.executor.grab_hook(event[2])
