"""A persistent, spawn-safe worker pool with pickle-once snapshots.

The PR-4 parallel backends were correct but slow: every ``run()`` call
spawned a fresh ``ProcessPoolExecutor`` and re-pickled the complete
world snapshot into it, so the committed sweep showed the pool *losing*
to sequential.  This module is the fix, and the substrate both fan-out
layers (:mod:`repro.runtime.parallel` for scan shards,
:mod:`repro.analysis.parallel` for table/figure jobs) now share:

:class:`WorkerPool`
    Owns one ``spawn``-safe process pool that **outlives a single
    engine run**.  Workers are started lazily on first submission and
    reused by every later batch, so amortized runs pay task pickling
    only — not process start-up.  A broken pool (worker death) is
    discarded as a unit and respawned on the next submission, so a
    persistent pool *recovers* instead of poisoning every later run.

Pickle-once, ship-once snapshots
    Large shared inputs (the world's :class:`~repro.runtime.snapshot.
    NetworkView`, a campaign's :class:`~repro.scan.result.ScanResults`)
    are serialized **once per (object state, pool) pair**: the payload
    is pickled, content-hashed, and spooled to a snapshot file owned by
    the pool; tasks then carry only a tiny :class:`SnapshotRef`.  Two
    cache layers keep re-runs cheap:

    * a parent-side *token* cache (:meth:`WorkerPool.lookup`) maps a
      caller-supplied identity token — e.g. ``(id(network),
      network.version, clock)`` — to an existing ref, skipping even
      the pickling pass when the same live object is shipped again;
    * a parent-side *digest* cache deduplicates byte-identical payloads
      from different live objects (two identically seeded worlds ship
      one file);
    * a worker-side cache (:func:`load_snapshot`) keeps the last few
      deserialized snapshots per worker process, so a persistent
      worker unpickles each world once, not once per task.

:func:`resolve_workers`
    The single validation/cap path for every worker-count knob
    (``ExperimentConfig.parallel_workers``, ``AnalyzeConfig.workers``,
    the CLI ``--workers`` flags, :class:`repro.api.ExecutionContext`):
    ``0`` means sequential, positive counts are capped at the
    machine's CPU count (results are worker-count-invariant, so the
    cap is behaviour-neutral), negatives are rejected with a
    ``field=value`` message.

Determinism is unchanged: the pool moves *where* tasks execute and how
their inputs ship, never what they compute — the parity harness
(:mod:`tests.parity`) still defines the contract, and the snapshot
digest check on load guarantees a worker never scans a torn payload.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import shutil
import tempfile
import weakref
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Callable, Dict, Iterable, Iterator, List, Optional, \
    Sequence, Tuple

#: Spawn is the only start method that is safe everywhere (no inherited
#: locks/fds) and it keeps the no-shared-state worker design honest.
DEFAULT_START_METHOD = "spawn"

#: Deserialized snapshots each worker process keeps resident.  Small:
#: a study touches one or two worlds at a time, and evicted entries
#: reload from the snapshot file, not from a fresh pickle pass.
WORKER_CACHE_LIMIT = 4


class PoolBrokenError(RuntimeError):
    """The process pool broke (a worker died) while running a batch.

    ``lost`` lists the indices (in submission order) of the tasks whose
    results never arrived.  The pool has already discarded its broken
    executor: the next submission respawns fresh workers, so a
    persistent pool recovers instead of failing every later batch.
    """

    def __init__(self, lost: Iterable[int], message: str) -> None:
        super().__init__(message)
        self.lost: Tuple[int, ...] = tuple(lost)


def resolve_workers(value: int, *, field: str = "workers") -> int:
    """Validate and cap a worker-count setting; the one shared path.

    ``0`` selects sequential execution everywhere; ``N >= 1`` selects a
    pool of ``N`` processes, silently capped at the machine's CPU count
    (more workers than cores only adds spawn cost, and results are
    worker-count-invariant, so capping is behaviour-neutral).
    """
    if value < 0:
        raise ValueError(
            f"{field}={value}: must be >= 0 (0 runs sequentially)")
    cpus = os.cpu_count() or 1
    return min(int(value), cpus)


@dataclass(frozen=True)
class SnapshotRef:
    """A pickle-once payload's address: tiny, picklable, content-keyed.

    Tasks carry refs instead of payloads; workers resolve them through
    :func:`load_snapshot`, which verifies ``digest`` before trusting
    the bytes.
    """

    path: str
    digest: str
    size: int


class WorkerPool:
    """A reusable ``spawn`` process pool plus its snapshot cache.

    Lifecycle: construction is cheap (no processes start); the executor
    spawns lazily on the first :meth:`map_in_order` call and persists
    across batches until :meth:`close`.  The pool is a context manager;
    :class:`repro.api.ExecutionContext` is the library-facing owner.
    """

    def __init__(self, workers: int,
                 start_method: Optional[str] = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = int(workers)
        self.start_method = start_method or os.environ.get(
            "REPRO_PARALLEL_START_METHOD", DEFAULT_START_METHOD)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._dir: Optional[str] = None
        self._closed = False
        #: token -> (weakref-to-anchor | None, SnapshotRef)
        self._by_token: Dict[tuple, Tuple[Optional[weakref.ref],
                                          SnapshotRef]] = {}
        #: content digest -> SnapshotRef (payload file already spooled)
        self._by_digest: Dict[str, SnapshotRef] = {}
        self.stats = {
            "generations": 0,        # executors spawned (1 = never broke)
            "batches": 0,
            "tasks_submitted": 0,
            "snapshots_shipped": 0,  # distinct payload files written
            "snapshot_bytes": 0,
            "snapshot_token_hits": 0,
            "snapshot_digest_hits": 0,
        }

    # -- lifecycle ---------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Join the workers and delete the snapshot spool directory."""
        if self._closed:
            return
        self._closed = True
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        if self._dir is not None:
            shutil.rmtree(self._dir, ignore_errors=True)
            self._dir = None
        self._by_token.clear()
        self._by_digest.clear()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                "worker pool is closed; create a new WorkerPool (or a new "
                "api.ExecutionContext) to run more work")

    def _ensure_executor(self) -> ProcessPoolExecutor:
        self._check_open()
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=get_context(self.start_method))
            self.stats["generations"] += 1
        return self._executor

    def _discard_executor(self) -> None:
        """Drop a broken executor so the next batch respawns workers."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    # -- snapshot shipping -------------------------------------------------

    def _snapshot_dir(self) -> str:
        if self._dir is None:
            self._dir = tempfile.mkdtemp(prefix="repro-pool-")
        return self._dir

    def lookup(self, token: tuple, anchor: object = None
               ) -> Optional[SnapshotRef]:
        """The already-shipped ref for ``token``, or ``None``.

        A hit requires the anchoring live object to still be the one
        the token was registered for (checked via weakref identity), so
        a recycled ``id()`` can never alias a dead object's snapshot.
        A hit skips pickling entirely — this is the pickle-*once* path.
        """
        self._check_open()
        entry = self._by_token.get(token)
        if entry is None:
            return None
        anchor_ref, ref = entry
        if anchor_ref is not None and anchor_ref() is not anchor:
            del self._by_token[token]
            return None
        self.stats["snapshot_token_hits"] += 1
        return ref

    def ship(self, payload: object, *, token: Optional[tuple] = None,
             anchor: object = None) -> SnapshotRef:
        """Serialize ``payload`` into the pool's spool, once per content.

        Byte-identical payloads share one file (the digest cache);
        ``token``/``anchor`` additionally registers the fast-path
        identity for :meth:`lookup`.  Raises whatever ``pickle`` raises
        for unpicklable payloads — callers own the typed diagnosis.
        """
        self._check_open()
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        digest = hashlib.sha256(data).hexdigest()
        ref = self._by_digest.get(digest)
        if ref is None:
            path = os.path.join(self._snapshot_dir(),
                                f"snapshot-{digest[:24]}.pkl")
            scratch = path + ".tmp"
            with open(scratch, "wb") as handle:
                handle.write(data)
            os.replace(scratch, path)
            ref = SnapshotRef(path=path, digest=digest, size=len(data))
            self._by_digest[digest] = ref
            self.stats["snapshots_shipped"] += 1
            self.stats["snapshot_bytes"] += len(data)
        else:
            self.stats["snapshot_digest_hits"] += 1
        if token is not None:
            anchor_ref = weakref.ref(anchor) if anchor is not None else None
            self._by_token[token] = (anchor_ref, ref)
        return ref

    # -- batched execution -------------------------------------------------

    def map_in_order(self, fn: Callable, tasks: Sequence
                     ) -> Iterator[Tuple[int, object]]:
        """Submit every task up front; yield ``(index, outcome)`` in
        submission order as results become available.

        This is the streaming-merge entry point: the caller folds each
        outcome the moment its turn comes instead of waiting for the
        whole batch.  Ordinary task exceptions propagate unchanged; a
        dead worker surfaces as one :exc:`PoolBrokenError` naming every
        lost index *after* the surviving results have been yielded, and
        leaves the pool ready to respawn.
        """
        if not tasks:
            return
        executor = self._ensure_executor()
        futures = [executor.submit(fn, task) for task in tasks]
        self.stats["batches"] += 1
        self.stats["tasks_submitted"] += len(futures)
        lost: List[int] = []
        for index, future in enumerate(futures):
            try:
                yield index, future.result()
            except BrokenProcessPool:
                lost.append(index)
        if lost:
            self._discard_executor()
            raise PoolBrokenError(
                lost,
                f"worker pool broke while running {len(lost)} of "
                f"{len(futures)} task(s); the pool will respawn on the "
                "next batch")


# -- worker side -------------------------------------------------------------

#: Per-worker-process snapshot cache: digest -> deserialized payload.
#: Module-level on purpose — it must survive across tasks in one worker,
#: which is exactly what makes a persistent pool pay.
_WORKER_SNAPSHOTS: "OrderedDict[str, object]" = OrderedDict()


def load_snapshot(ref: SnapshotRef) -> object:
    """Resolve a :class:`SnapshotRef` inside a worker, caching the result.

    The first task touching a snapshot reads and unpickles the spooled
    file (verifying the content digest); every later task in the same
    worker process gets the cached object back — ship-once, load-once.
    """
    cached = _WORKER_SNAPSHOTS.get(ref.digest)
    if cached is not None:
        _WORKER_SNAPSHOTS.move_to_end(ref.digest)
        return cached
    with open(ref.path, "rb") as handle:
        data = handle.read()
    digest = hashlib.sha256(data).hexdigest()
    if digest != ref.digest:
        raise RuntimeError(
            f"snapshot {ref.path} digest mismatch (expected "
            f"{ref.digest[:16]}…, read {digest[:16]}…); refusing to scan "
            "a torn payload")
    payload = pickle.loads(data)
    _WORKER_SNAPSHOTS[ref.digest] = payload
    while len(_WORKER_SNAPSHOTS) > WORKER_CACHE_LIMIT:
        _WORKER_SNAPSHOTS.popitem(last=False)
    return payload
