"""The pluggable probe registry (replacing the engine's fixed tuple).

The seed engine hard-coded the paper's eight protocol probes in a
module-level ``_MODULES`` tuple — every campaign scanned everything.
Real scanning campaigns vary their port profiles (Richter & Gasser's
telescope work shows wildly different per-actor profiles), so the
registry makes the probe set a *campaign parameter*:

* :func:`default_registry` reproduces the paper's probe set, in the
  paper's order (HTTP, HTTPS, SSH, MQTT, MQTTS, AMQP, AMQPS, CoAP);
* ``registry.subset("ssh", "coap")`` derives a narrowed campaign;
* ``registry.register(...)`` adds a new protocol module without
  touching engine internals — the grab only needs ``address``, ``time``,
  ``ok`` and ``protocol`` attributes for :class:`ScanResults` to route
  and aggregate it.

Probe order is insertion order and therefore deterministic, which the
golden-value pipeline tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, Tuple

from repro.net.simnet import Network
from repro.scan.modules.amqp import scan_amqp, scan_amqps
from repro.scan.modules.coap import scan_coap
from repro.scan.modules.http import scan_http, scan_https
from repro.scan.modules.mqtt import scan_mqtt, scan_mqtts
from repro.scan.modules.ssh import scan_ssh
from repro.scan.result import PROTOCOL_PORTS, Grab

#: A probe: (network, source, target) → one grab record.
Probe = Callable[[Network, int, int], Grab]

#: Approximate packet cost charged per protocol probe (the seed's
#: engine-wide constant, now a per-probe property).
DEFAULT_PACKET_COST = 4.0


@dataclass(frozen=True)
class ProbeSpec:
    """One registered protocol module."""

    name: str
    probe: Probe
    port: int
    #: Packets charged against the engine's pps budget per probe.
    packet_cost: float = DEFAULT_PACKET_COST

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("probe name must be non-empty")
        if self.packet_cost <= 0:
            raise ValueError(
                f"packet_cost must be positive, got {self.packet_cost}")


class ProbeRegistry:
    """Ordered, named collection of probe modules."""

    def __init__(self, specs: Iterable[ProbeSpec] = ()) -> None:
        self._specs: Dict[str, ProbeSpec] = {}
        for spec in specs:
            self.add(spec)

    # -- mutation ---------------------------------------------------------

    def add(self, spec: ProbeSpec) -> ProbeSpec:
        """Register a spec object; duplicate names are an error."""
        if spec.name in self._specs:
            raise ValueError(f"probe {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def register(self, name: str, probe: Probe, port: int,
                 packet_cost: float = DEFAULT_PACKET_COST) -> ProbeSpec:
        """Register a new protocol module by parts."""
        return self.add(ProbeSpec(name=name, probe=probe, port=port,
                                  packet_cost=packet_cost))

    def unregister(self, name: str) -> ProbeSpec:
        """Remove a probe (e.g. a campaign dropping a protocol)."""
        try:
            return self._specs.pop(name)
        except KeyError:
            raise KeyError(f"no probe named {name!r}") from None

    # -- derivation -------------------------------------------------------

    def subset(self, *names: str) -> "ProbeRegistry":
        """A new registry with only ``names``, in the order given."""
        return ProbeRegistry(self.get(name) for name in names)

    def copy(self) -> "ProbeRegistry":
        return ProbeRegistry(iter(self))

    # -- access -----------------------------------------------------------

    def get(self, name: str) -> ProbeSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(f"no probe named {name!r}") from None

    @property
    def names(self) -> Tuple[str, ...]:
        return tuple(self._specs)

    def __iter__(self) -> Iterator[ProbeSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs


def default_registry() -> ProbeRegistry:
    """The paper's probe set, in the paper's probe order."""
    registry = ProbeRegistry()
    for name, probe in (
        ("http", scan_http),
        ("https", scan_https),
        ("ssh", scan_ssh),
        ("mqtt", scan_mqtt),
        ("mqtts", scan_mqtts),
        ("amqp", scan_amqp),
        ("amqps", scan_amqps),
        ("coap", scan_coap),
    ):
        registry.register(name, probe, PROTOCOL_PORTS[name])
    return registry
