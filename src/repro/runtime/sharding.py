"""Sharded scan engines: address-hash fan-out over N engines.

One global engine serializes every piece of scan state (cool-down map,
stats, result buckets) behind a single object — the shape the ROADMAP
says to refactor away from.  :class:`ShardedScanEngine` keeps the
engine's exact external contract while partitioning that state across
``shards`` independent :class:`~repro.scan.engine.ScanEngine` instances
keyed by a deterministic address hash:

* each shard owns a *small* cool-down map and result set (cheaper
  lookups, independently prunable, trivially parallelizable later);
* targets are scanned at feed time in arrival order, so under a fixed
  seed the merged results are byte-identical in totals to a
  single-engine run (the golden determinism tests pin this);
* :meth:`run` merges per-shard results deterministically in shard
  order via :meth:`ScanResults.merged`.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterable, List, Optional

from repro.net.simnet import Network
from repro.runtime.registry import ProbeRegistry
from repro.scan.engine import EngineConfig, EngineStats, ScanEngine
from repro.scan.ethics import EthicsPolicy
from repro.scan.result import ScanResults

#: SplitMix64 finalizer constants: spread structured IPv6 addresses
#: (shared /64s, strided IIDs) evenly across shards.  The full
#: finalizer matters — a single multiply-xorshift left the low output
#: bits a function of only the low input bits, so 2^32-strided
#: addresses (not exotic in /96-granular allocations) all landed on one
#: shard.  The property tests pin the stronger behaviour.
_HASH_MULTIPLIER = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_MASK64 = (1 << 64) - 1


def shard_of(address: int, shards: int) -> int:
    """Deterministic shard index of a 128-bit address."""
    mixed = ((address ^ (address >> 64)) * _HASH_MULTIPLIER) & _MASK64
    mixed = ((mixed ^ (mixed >> 30)) * _MIX1) & _MASK64
    mixed = ((mixed ^ (mixed >> 27)) * _MIX2) & _MASK64
    mixed ^= mixed >> 31
    return mixed % shards


class ShardedScanEngine:
    """Fans targets out to per-shard engines, merging results.

    Drop-in for :class:`ScanEngine` wherever one is fed targets
    (``feed``/``run``/``scan_address``); campaigns opt in via
    ``ExperimentConfig.scan_shards`` or construct one directly.
    """

    def __init__(self, network: Network, source: int,
                 config: Optional[EngineConfig] = None,
                 ethics: Optional[EthicsPolicy] = None,
                 registry: Optional[ProbeRegistry] = None,
                 *, shards: int = 4, name: str = "engine") -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.network = network
        self.source = source
        self.config = config or EngineConfig()
        self.ethics = ethics
        self.shards = shards
        self.name = name
        #: Shard engines share config, ethics and registry; their seeds
        #: only feed politeness jitter (driving mode), so embedded-mode
        #: results are identical to a single engine's regardless.  Each
        #: shard carries its own metric label, so the registry exposes
        #: the per-shard load balance directly.
        self.engines: List[ScanEngine] = [
            ScanEngine(network, source,
                       replace(self.config, seed=self.config.seed ^ index),
                       ethics, registry, name=f"{name}/shard{index}")
            for index in range(shards)
        ]
        self.registry = self.engines[0].registry

    def engine_for(self, target: int) -> ScanEngine:
        return self.engines[shard_of(target, self.shards)]

    def attach_store(self, writer, *, label: str) -> None:
        """Fan the store taps out: every shard logs under its own
        engine name (``<name>/shardN``), so recovery rebuilds each
        shard's cool-down map independently."""
        for engine in self.engines:
            engine.attach_store(writer, label=label)

    def cooldown_snapshots(self):
        """Per-shard cool-down maps, merged into one checkpoint dict."""
        snapshots = {}
        for engine in self.engines:
            snapshots.update(engine.cooldown_snapshots())
        return snapshots

    # -- ScanEngine contract ----------------------------------------------

    def scan_address(self, target: int):
        return self.engine_for(target).scan_address(target)

    def feed(self, target: int, results: ScanResults) -> bool:
        """Route one target to its shard; scans immediately (in arrival
        order, keeping rng/network interleavings identical to a single
        engine under embedded mode)."""
        return self.engine_for(target).feed(target, results)

    def run(self, targets: Iterable[int], label: str = "") -> ScanResults:
        """Scan a target list, merging per-shard results in shard order."""
        shard_results = [ScanResults(label=f"{label}/shard{index}")
                         for index in range(self.shards)]
        for target in targets:
            index = shard_of(target, self.shards)
            self.engines[index].feed(target, shard_results[index])
        return ScanResults.merged(shard_results, label=label)

    @property
    def stats(self) -> EngineStats:
        """Aggregated counters across every shard."""
        total = EngineStats()
        for engine in self.engines:
            stats = engine.stats
            total.targets_offered += stats.targets_offered
            total.targets_scanned += stats.targets_scanned
            total.targets_cooled_down += stats.targets_cooled_down
            total.probes_sent += stats.probes_sent
            total.seconds_waited += stats.seconds_waited
            total.cooldown_pruned += stats.cooldown_pruned
        return total

    @property
    def tracked_targets(self) -> int:
        """Total cool-down entries across shards (memory accounting)."""
        return sum(engine.scheduler.tracked_targets
                   for engine in self.engines)
