"""Picklable scan-time views of the simulated network.

The parallel scan backend (:mod:`repro.runtime.parallel`) executes each
shard's probe work in a worker process.  Workers must never share live
simnet objects with the parent — a :class:`~repro.net.simnet.Network`
is a web of mutable hosts, taps and rng state — so instead the parent
captures a :class:`NetworkView`: the minimal, picklable description of
what the scan's probes can observe for a given target set.

A view holds, per target, the owning host's reachability and service
surface (service factories are plain dataclasses since the
factory-object refactor in :mod:`repro.world.devices`), plus the
aliased /64 wildcard hosts serving any of the targets.  ``build()``
reconstructs an equivalent network around a fresh
:class:`~repro.net.clock.VirtualClock` frozen at capture time — in
embedded mode the engine never advances the clock, so grabs in the
worker carry byte-identical timestamps to an in-process scan.

Targets with no host are simply absent from the view: the rebuilt
network answers them with silence, exactly like the original.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.net.clock import VirtualClock
from repro.net.simnet import Host, Network


class SnapshotError(TypeError):
    """A host's service surface cannot be shipped to a worker process."""


@dataclass
class HostSpec:
    """One host's scan-observable state, by value."""

    address: int
    reachable: bool
    tcp_services: Dict[int, object] = field(default_factory=dict)
    udp_handlers: Dict[int, object] = field(default_factory=dict)


def _capture_host(host: Host) -> HostSpec:
    spec = HostSpec(address=host.address, reachable=host.reachable,
                    tcp_services=dict(host.tcp_services),
                    udp_handlers=dict(host.udp_handlers))
    try:
        pickle.dumps((spec.tcp_services, spec.udp_handlers))
    except Exception as exc:
        raise SnapshotError(
            f"host {host.address:#x} binds a service that cannot be "
            f"pickled into a scan worker ({exc}); bind services as "
            "factory objects (see repro.proto.http.HttpSessionFactory) "
            "or scan this target set sequentially") from exc
    return spec


@dataclass
class NetworkView:
    """A frozen, picklable view of one network for one target set."""

    clock_now: float
    hosts: Dict[int, HostSpec] = field(default_factory=dict)
    #: Aliased /64 personalities, keyed by the wildcard prefix.
    wildcards: Dict[int, HostSpec] = field(default_factory=dict)

    @classmethod
    def capture(cls, network: Network, targets: Iterable[int]) -> "NetworkView":
        """Snapshot ``network`` as seen by probes against ``targets``."""
        view = cls(clock_now=network.clock.now())
        captured: Dict[int, HostSpec] = {}  # id(host) → spec, dedup
        for target in targets:
            host = network.host(target)
            if host is None:
                continue
            spec = captured.get(id(host))
            if spec is None:
                spec = _capture_host(host)
                captured[id(host)] = spec
            if network.is_wildcard(target):
                view.wildcards[spec.address >> 64] = spec
            else:
                view.hosts[target] = spec
        return view

    def build(self) -> Network:
        """Reconstruct an equivalent network around a frozen clock."""
        network = Network(clock=VirtualClock(self.clock_now))
        seen: Dict[int, Host] = {}
        for address, spec in self.hosts.items():
            host = seen.get(id(spec))
            if host is None:
                host = network.add_host(spec.address, reachable=spec.reachable)
                host.tcp_services.update(spec.tcp_services)
                host.udp_handlers.update(spec.udp_handlers)
                seen[id(spec)] = host
            elif host.address != address:
                # The same spec served several addresses in the source
                # network only via a wildcard; direct hosts are 1:1.
                network._hosts[address] = host
        for prefix, spec in self.wildcards.items():
            host = network.add_wildcard_host(prefix << 64,
                                             reachable=spec.reachable)
            host.tcp_services.update(spec.tcp_services)
            host.udp_handlers.update(spec.udp_handlers)
        return network

    @property
    def host_count(self) -> int:
        return len(self.hosts) + len(self.wildcards)


def targets_by_shard(targets: Iterable[int],
                     shards: int) -> List[List[int]]:
    """Partition targets into per-shard lists, preserving arrival order.

    Import-cycle-free convenience over
    :func:`repro.runtime.sharding.shard_of` for callers that only need
    the partition (the parallel backend tags arrival indices itself).
    """
    from repro.runtime.sharding import shard_of

    partition: List[List[int]] = [[] for _ in range(shards)]
    for target in targets:
        partition[shard_of(target, shards)].append(target)
    return partition
