"""Picklable scan-time views of the simulated network.

The parallel scan backend (:mod:`repro.runtime.parallel`) executes each
shard's probe work in a worker process.  Workers must never share live
simnet objects with the parent — a :class:`~repro.net.simnet.Network`
is a web of mutable hosts, taps and rng state — so instead the parent
captures a :class:`NetworkView`: the minimal, picklable description of
what the scan's probes can observe for a given target set.

A view holds, per target, the owning host's reachability and service
surface (service factories are plain dataclasses since the
factory-object refactor in :mod:`repro.world.devices`), plus the
aliased /64 wildcard hosts serving any of the targets.  ``build()``
reconstructs an equivalent network around a fresh
:class:`~repro.net.clock.VirtualClock` frozen at capture time — in
embedded mode the engine never advances the clock, so grabs in the
worker carry byte-identical timestamps to an in-process scan.

Targets with no host are simply absent from the view: the rebuilt
network answers them with silence, exactly like the original.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.net.clock import VirtualClock
from repro.net.simnet import Host, Network


class SnapshotError(TypeError):
    """A host's service surface cannot be shipped to a worker process."""


@dataclass
class HostSpec:
    """One host's scan-observable state, by value."""

    address: int
    reachable: bool
    tcp_services: Dict[int, object] = field(default_factory=dict)
    udp_handlers: Dict[int, object] = field(default_factory=dict)


def _capture_host(host: Host, check: bool = True) -> HostSpec:
    spec = HostSpec(address=host.address, reachable=host.reachable,
                    tcp_services=dict(host.tcp_services),
                    udp_handlers=dict(host.udp_handlers))
    if check:
        try:
            pickle.dumps((spec.tcp_services, spec.udp_handlers))
        except Exception as exc:
            raise SnapshotError(
                f"host {host.address:#x} binds a service that cannot be "
                f"pickled into a scan worker ({exc}); bind services as "
                "factory objects (see repro.proto.http.HttpSessionFactory) "
                "or scan this target set sequentially") from exc
    return spec


def diagnose_unpicklable(network: Network, cause: Exception) -> Exception:
    """The typed error for a whole-world pickle failure.

    Full-world capture skips the per-host pickle probe (it would double
    the serialization cost of the common, all-picklable case); when the
    one-shot pickle of the assembled view fails instead, this walks the
    hosts to name the offending service in a :class:`SnapshotError`.
    Returns the original ``cause`` if no single host reproduces it.
    """
    for host in list(network._hosts.values()) \
            + list(network._wildcards.values()):
        try:
            _capture_host(host, check=True)
        except SnapshotError as exc:
            return exc
    return cause


@dataclass
class NetworkView:
    """A frozen, picklable view of one network for one target set."""

    clock_now: float
    hosts: Dict[int, HostSpec] = field(default_factory=dict)
    #: Aliased /64 personalities, keyed by the wildcard prefix.
    wildcards: Dict[int, HostSpec] = field(default_factory=dict)
    #: Addresses (and wildcard prefix keys) whose hosts were *left out*
    #: of a full capture because their service surface cannot pickle —
    #: infrastructure like NTP pool servers binds closure-based
    #: handlers the scan never targets.  Probing one of them from a
    #: worker is refused (see :meth:`ensure_target_shipped`) so the
    #: omission can never silently diverge from a sequential scan.
    skipped_hosts: Set[int] = field(default_factory=set)
    skipped_wildcards: Set[int] = field(default_factory=set)

    @classmethod
    def capture(cls, network: Network, targets: Iterable[int]) -> "NetworkView":
        """Snapshot ``network`` as seen by probes against ``targets``."""
        view = cls(clock_now=network.clock.now())
        captured: Dict[int, HostSpec] = {}  # id(host) → spec, dedup
        for target in targets:
            host = network.host(target)
            if host is None:
                continue
            spec = captured.get(id(host))
            if spec is None:
                spec = _capture_host(host)
                captured[id(host)] = spec
            if network.is_wildcard(target):
                view.wildcards[spec.address >> 64] = spec
            else:
                view.hosts[target] = spec
        return view

    @classmethod
    def capture_full(cls, network: Network,
                     skip_unpicklable: bool = False) -> "NetworkView":
        """Snapshot the *whole* network, independent of any target set.

        This is what the persistent pool's pickle-once cache ships: one
        target-independent view per world state, keyed by
        ``(network, network.version, clock)``, reused by every run and
        every shard against that world.

        The default mode skips per-host pickle checks — the shipping
        layer pickles the whole view in one pass, which is the fast,
        all-picklable common case.  When that one-shot pickle fails
        (real worlds hold infrastructure hosts with closure-based
        handlers — NTP pool servers, collectors — that scans never
        target), callers re-capture with ``skip_unpicklable=True``:
        offending hosts are left out and recorded in
        :attr:`skipped_hosts` / :attr:`skipped_wildcards`, and workers
        refuse to probe their addresses via
        :meth:`ensure_target_shipped` — so a target's outcome can
        never silently diverge, exactly like the targeted
        :meth:`capture` path's per-host :class:`SnapshotError`.
        """
        view = cls(clock_now=network.clock.now())
        for address, host in network._hosts.items():
            try:
                view.hosts[address] = _capture_host(host,
                                                    check=skip_unpicklable)
            except SnapshotError:
                view.skipped_hosts.add(address)
        for key, host in network._wildcards.items():
            try:
                view.wildcards[key] = _capture_host(host,
                                                    check=skip_unpicklable)
            except SnapshotError:
                view.skipped_wildcards.add(key)
        return view

    def ensure_target_shipped(self, target: int) -> None:
        """Refuse targets whose host a full capture had to leave out.

        Mirrors :meth:`~repro.net.simnet.Network.host` resolution: a
        direct host shadows its /64 wildcard, so a present direct host
        keeps its address probeable even under a skipped wildcard.
        """
        if target in self.skipped_hosts:
            pass
        elif target not in self.hosts and \
                (target >> 64) in self.skipped_wildcards:
            pass
        else:
            return
        raise SnapshotError(
            f"host {target:#x} binds a service that cannot be pickled "
            "into a scan worker; bind services as factory objects (see "
            "repro.proto.http.HttpSessionFactory) or scan this target "
            "set sequentially")

    def build(self) -> Network:
        """Reconstruct an equivalent network around a frozen clock."""
        network = Network(clock=VirtualClock(self.clock_now))
        seen: Dict[int, Host] = {}
        for address, spec in self.hosts.items():
            host = seen.get(id(spec))
            if host is None:
                host = network.add_host(spec.address, reachable=spec.reachable)
                host.tcp_services.update(spec.tcp_services)
                host.udp_handlers.update(spec.udp_handlers)
                seen[id(spec)] = host
            elif host.address != address:
                # The same spec served several addresses in the source
                # network only via a wildcard; direct hosts are 1:1.
                network._hosts[address] = host
        for prefix, spec in self.wildcards.items():
            host = network.add_wildcard_host(prefix << 64,
                                             reachable=spec.reachable)
            host.tcp_services.update(spec.tcp_services)
            host.udp_handlers.update(spec.udp_handlers)
        return network

    @property
    def host_count(self) -> int:
        return len(self.hosts) + len(self.wildcards)


def targets_by_shard(targets: Iterable[int],
                     shards: int) -> List[List[int]]:
    """Partition targets into per-shard lists, preserving arrival order.

    Import-cycle-free convenience over
    :func:`repro.runtime.sharding.shard_of` for callers that only need
    the partition (the parallel backend tags arrival indices itself).
    """
    from repro.runtime.sharding import shard_of

    partition: List[List[int]] = [[] for _ in range(shards)]
    for target in targets:
        partition[shard_of(target, shards)].append(target)
    return partition
