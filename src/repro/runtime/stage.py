"""Stages: bus subscribers with bounded queues and drop accounting.

A :class:`Stage` is one processing step of the sourcing→scan path.  It
subscribes to the event types it consumes, buffers work in a
:class:`BoundedQueue` (real scanners have finite intake — zgrab2 reads
from a pipe that can fill), and accounts explicitly for every event it
had to drop.  Backpressure in this synchronous simulation is therefore
*visible* instead of silently absorbed: a stage that cannot keep up
reports ``stats.dropped`` rather than growing without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, Iterator, Mapping, Type, TypeVar

from repro.obs.metrics import current_registry
from repro.runtime.bus import Event, EventBus, Handler

T = TypeVar("T")


@dataclass
class StageStats:
    """Uniform counters every stage exposes."""

    received: int = 0
    processed: int = 0
    dropped: int = 0


class BoundedQueue(Generic[T]):
    """A FIFO with a hard capacity and drop accounting.

    ``push`` returns ``False`` (and counts a drop) instead of growing
    past ``capacity`` — the explicit backpressure signal stages report.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.dropped = 0
        self._items: Deque[T] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def push(self, item: T) -> bool:
        """Enqueue ``item``; False when the queue is full (item dropped)."""
        if len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        return True

    def pop(self) -> T:
        """Dequeue the oldest item (raises IndexError when empty)."""
        return self._items.popleft()

    def drain(self, limit: int = -1) -> Iterator[T]:
        """Yield up to ``limit`` items (all when negative), FIFO order."""
        count = 0
        while self._items and (limit < 0 or count < limit):
            count += 1
            yield self._items.popleft()


class Stage:
    """Base class for pipeline stages living on an :class:`EventBus`.

    Subclasses declare the event types they consume via
    :meth:`subscriptions`; :meth:`attach` wires them to a bus and
    returns self so construction chains.
    """

    name: str = "stage"

    def __init__(self) -> None:
        self.stats = StageStats()
        self._unsubscribers = []
        metrics = current_registry()
        self._m_received = metrics.counter("stage_received_total",
                                           stage=self.name)
        self._m_processed = metrics.counter("stage_processed_total",
                                            stage=self.name)
        self._m_dropped = metrics.counter("stage_dropped_total",
                                          stage=self.name)
        self._m_depth = metrics.gauge("stage_queue_depth_high_water",
                                      stage=self.name)

    # -- accounting (updates stats and the metrics registry together) -----

    def mark_received(self, count: int = 1) -> None:
        self.stats.received += count
        self._m_received.inc(count)

    def mark_processed(self, count: int = 1) -> None:
        self.stats.processed += count
        self._m_processed.inc(count)

    def mark_dropped(self, count: int = 1) -> None:
        self.stats.dropped += count
        self._m_dropped.inc(count)

    def note_queue_depth(self, depth: int) -> None:
        """Record the stage's intake depth (keeps the high-water mark)."""
        self._m_depth.set_max(depth)

    def subscriptions(self) -> Mapping[Type[Event], Handler]:
        """Event type → handler map; override in subclasses."""
        return {}

    def attach(self, bus: EventBus) -> "Stage":
        """Subscribe this stage's handlers to ``bus``."""
        for event_type, handler in self.subscriptions().items():
            self._unsubscribers.append(bus.subscribe(event_type, handler))
        return self

    def detach(self) -> None:
        """Remove this stage from every bus it was attached to."""
        while self._unsubscribers:
            self._unsubscribers.pop()()
