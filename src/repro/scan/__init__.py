"""Scanning substrate: engine, rate limiting, protocol grab modules."""

from repro.scan.engine import (
    EngineConfig,
    EngineStats,
    ProbeExecutor,
    ScanEngine,
    ScanScheduler,
)
from repro.scan.ethics import EthicsPolicy, OptOutList, publish_scanner_identity
from repro.scan.ratelimit import TokenBucket
from repro.scan.result import (
    PROTOCOL_PORTS,
    PROTOCOLS,
    TLS_PROTOCOLS,
    BrokerGrab,
    CoapGrab,
    HttpGrab,
    ScanResults,
    SshGrab,
    TlsObservation,
)

__all__ = [
    "BrokerGrab",
    "CoapGrab",
    "EngineConfig",
    "EngineStats",
    "EthicsPolicy",
    "OptOutList",
    "HttpGrab",
    "PROTOCOLS",
    "PROTOCOL_PORTS",
    "ProbeExecutor",
    "ScanEngine",
    "ScanScheduler",
    "ScanResults",
    "SshGrab",
    "TLS_PROTOCOLS",
    "TlsObservation",
    "TokenBucket",
    "publish_scanner_identity",
]
