"""The scan engine: zgrab2-with-a-scheduler for the simulated network.

One engine drives all eight protocol probes (HTTP, HTTPS, SSH, MQTT,
MQTTS, AMQP, AMQPS, CoAP) against a target address, honouring the
paper's operational rules:

* a global packets-per-second budget (Appendix A.2.1: 100 kpps);
* a per-address cool-down — the same IP is not re-scanned for three
  days after a scan;
* inter-protocol delays of 10 s – 10 min so low-powered devices are
  not hammered.

The engine has two temporal modes.  In **driving** mode (hitlist
campaigns) it owns the virtual clock: the rate limiter and politeness
delays advance simulated time.  In **embedded** mode (the real-time
NTP-fed scans) the collection campaign owns the clock; the engine
probes without advancing shared time, so scanning a burst of sourced
addresses does not distort the collection timeline it is embedded in
(grabs are stamped with the collection-time clock).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.net.clock import DAY
from repro.net.simnet import Network
from repro.scan.ethics import EthicsPolicy
from repro.scan.modules.amqp import scan_amqp, scan_amqps
from repro.scan.modules.coap import scan_coap
from repro.scan.modules.http import scan_http, scan_https
from repro.scan.modules.mqtt import scan_mqtt, scan_mqtts
from repro.scan.modules.ssh import scan_ssh
from repro.scan.ratelimit import TokenBucket
from repro.scan.result import Grab, ScanResults

#: Probe order and dispatch table.
_MODULES = (
    ("http", scan_http),
    ("https", scan_https),
    ("ssh", scan_ssh),
    ("mqtt", scan_mqtt),
    ("mqtts", scan_mqtts),
    ("amqp", scan_amqp),
    ("amqps", scan_amqps),
    ("coap", scan_coap),
)

#: Approximate packet cost charged per protocol probe.
_PACKETS_PER_PROBE = 4.0


@dataclass
class EngineConfig:
    """Operational parameters of a scan campaign."""

    packets_per_second: float = 100_000.0
    cooldown: float = 3 * DAY
    protocol_delay_min: float = 10.0
    protocol_delay_max: float = 600.0
    #: Driving mode: the engine advances the virtual clock for rate
    #: limiting and politeness delays.  Embedded mode leaves the clock
    #: alone and only jitters recorded timestamps.
    drive_clock: bool = True
    seed: int = 0x5CA7


@dataclass
class EngineStats:
    """Counters for reporting and tests."""

    targets_offered: int = 0
    targets_scanned: int = 0
    targets_cooled_down: int = 0
    probes_sent: int = 0
    seconds_waited: float = 0.0


class ScanEngine:
    """Scans targets with all protocol modules, under the config's rules."""

    def __init__(self, network: Network, source: int,
                 config: Optional[EngineConfig] = None,
                 ethics: Optional[EthicsPolicy] = None) -> None:
        self.network = network
        self.source = source
        self.config = config or EngineConfig()
        self.ethics = ethics
        self.rng = random.Random(self.config.seed)
        self.bucket = TokenBucket(
            network.clock, rate=self.config.packets_per_second,
            burst=self.config.packets_per_second,
        )
        self.stats = EngineStats()
        self._last_scanned: Dict[int, float] = {}
        network.add_host(source, reachable=True)

    # -- single target ----------------------------------------------------

    def scan_address(self, target: int) -> List[Grab]:
        """Run every protocol probe against one address, in order."""
        grabs: List[Grab] = []
        for index, (name, probe) in enumerate(_MODULES):
            if self.config.drive_clock:
                self.stats.seconds_waited += self.bucket.acquire(
                    _PACKETS_PER_PROBE
                )
                if index > 0:
                    self.network.clock.advance(self._protocol_delay())
            self.stats.probes_sent += 1
            grabs.append(probe(self.network, self.source, target))
        return grabs

    def _protocol_delay(self) -> float:
        return self.rng.uniform(self.config.protocol_delay_min,
                                self.config.protocol_delay_max)

    # -- campaign feeding ---------------------------------------------------

    def feed(self, target: int, results: ScanResults) -> bool:
        """Offer one target; scans it unless in cool-down.

        Returns True when the address was actually scanned.
        """
        self.stats.targets_offered += 1
        results.targets_seen += 1
        if self.ethics is not None and not self.ethics.permits(target):
            return False
        now = self.network.clock.now()
        last = self._last_scanned.get(target)
        if last is not None and now - last < self.config.cooldown:
            self.stats.targets_cooled_down += 1
            return False
        self._last_scanned[target] = now
        self.stats.targets_scanned += 1
        for grab in self.scan_address(target):
            results.add(grab)
        return True

    def run(self, targets: Iterable[int], label: str = "") -> ScanResults:
        """Scan a whole target list (the hitlist campaign entry point)."""
        results = ScanResults(label=label)
        for target in targets:
            self.feed(target, results)
        return results
