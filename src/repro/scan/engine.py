"""The scan engine: zgrab2-with-a-scheduler for the simulated network.

The engine is two collaborating parts behind one facade:

* a :class:`ScanScheduler` doing admission control — the global
  packets-per-second budget (Appendix A.2.1: 100 kpps), the per-address
  cool-down (the same IP is not re-scanned for three days), and the
  10 s – 10 min inter-protocol politeness delays.  Cool-down state is
  TTL-pruned so week-long campaigns do not accumulate an unbounded
  last-scanned map;
* a :class:`ProbeExecutor` running the probe modules of a pluggable
  :class:`~repro.runtime.registry.ProbeRegistry` against each admitted
  target.  Campaigns pick their protocol profile by handing the engine
  a different registry; the default reproduces the paper's eight probes
  (HTTP, HTTPS, SSH, MQTT, MQTTS, AMQP, AMQPS, CoAP).

The engine has two temporal modes.  In **driving** mode (hitlist
campaigns) it owns the virtual clock: the rate limiter and politeness
delays advance simulated time.  In **embedded** mode (the real-time
NTP-fed scans) the collection campaign owns the clock; the engine
probes without advancing shared time, so scanning a burst of sourced
addresses does not distort the collection timeline it is embedded in
(grabs are stamped with the collection-time clock).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional

from repro.net.clock import DAY
from repro.net.simnet import Network
from repro.obs.metrics import current_registry
from repro.runtime.registry import ProbeRegistry, default_registry
from repro.scan.ethics import EthicsPolicy
from repro.scan.ratelimit import TokenBucket
from repro.scan.result import Grab, ScanResults


@dataclass
class EngineConfig:
    """Operational parameters of a scan campaign."""

    packets_per_second: float = 100_000.0
    cooldown: float = 3 * DAY
    protocol_delay_min: float = 10.0
    protocol_delay_max: float = 600.0
    #: Driving mode: the engine advances the virtual clock for rate
    #: limiting and politeness delays.  Embedded mode leaves the clock
    #: alone and only jitters recorded timestamps.
    drive_clock: bool = True
    #: Admissions between cool-down map sweeps (see ScanScheduler).
    prune_every: int = 4096
    seed: int = 0x5CA7


@dataclass
class EngineStats:
    """Counters for reporting and tests."""

    targets_offered: int = 0
    targets_scanned: int = 0
    targets_cooled_down: int = 0
    probes_sent: int = 0
    seconds_waited: float = 0.0
    #: Expired cool-down entries evicted by the scheduler's sweeps.
    cooldown_pruned: int = 0


class ScanScheduler:
    """Admission control: rate budget, TTL'd cool-down, politeness.

    Owns every piece of pacing state the seed engine kept inline, plus
    the fix for its unbounded memory: the last-scanned map is swept
    every ``config.prune_every`` admissions, evicting entries whose
    cool-down has already expired (they would admit anyway, so dropping
    them is behaviour-neutral).
    """

    def __init__(self, network: Network, config: EngineConfig,
                 stats: EngineStats, rng: random.Random,
                 *, name: str = "engine") -> None:
        self.network = network
        self.config = config
        self.stats = stats
        self.rng = rng
        self.bucket = TokenBucket(
            network.clock, rate=config.packets_per_second,
            burst=config.packets_per_second,
        )
        self._last_scanned: Dict[int, float] = {}
        self._admissions = 0
        #: Called with ``(target, now)`` on every successful admission —
        #: the durability tap :class:`repro.store.writer.StoreWriter`
        #: uses to log cool-down state as it changes.
        self.admit_hook: Optional[Callable[[int, float], None]] = None
        metrics = current_registry()
        self._m_admitted = metrics.counter("scheduler_admitted_total",
                                           engine=name)
        self._m_cooldown = metrics.counter("scheduler_cooldown_hits_total",
                                           engine=name)
        self._m_pruned = metrics.counter("scheduler_pruned_total",
                                         engine=name)
        self._m_wait = metrics.histogram("scheduler_wait_seconds",
                                         engine=name)

    @property
    def tracked_targets(self) -> int:
        """Size of the cool-down map (bounded-memory regression hook)."""
        return len(self._last_scanned)

    def admit(self, target: int) -> bool:
        """Whether ``target`` may be scanned now; records the scan time."""
        now = self.network.clock.now()
        last = self._last_scanned.get(target)
        if last is not None and now - last < self.config.cooldown:
            self.stats.targets_cooled_down += 1
            self._m_cooldown.inc()
            return False
        self._last_scanned[target] = now
        if self.admit_hook is not None:
            self.admit_hook(target, now)
        self._m_admitted.inc()
        self._admissions += 1
        if self._admissions % self.config.prune_every == 0:
            self.prune(now)
        return True

    def prune(self, now: Optional[float] = None) -> int:
        """Evict cool-down entries that already expired; returns count."""
        if now is None:
            now = self.network.clock.now()
        horizon = now - self.config.cooldown
        expired = [address for address, last in self._last_scanned.items()
                   if last <= horizon]
        for address in expired:
            del self._last_scanned[address]
        self.stats.cooldown_pruned += len(expired)
        self._m_pruned.inc(len(expired))
        return len(expired)

    def cooldown_state(self) -> Dict[int, float]:
        """A copy of the live cool-down map (integer-address keys).

        The parallel backend ships this to worker processes so a
        shard's rebuilt scheduler starts from exactly the state the
        in-process scheduler had, and installs the worker's final map
        back via :meth:`load_cooldown`.
        """
        return dict(self._last_scanned)

    def load_cooldown(self, state: Dict[int, float]) -> None:
        """Replace the cool-down map with ``state`` (see above)."""
        self._last_scanned = dict(state)

    def cooldown_snapshot(self) -> Dict[str, float]:
        """The live cool-down map, JSON-shaped for checkpoints.

        Keys are RFC 5952 address strings (the WAL's address form), in
        sorted order so snapshots of equal state are byte-identical.
        """
        from repro.ipv6 import address as addrmod

        return {addrmod.format_address(target): last
                for target, last in sorted(self._last_scanned.items())}

    def pace(self, packet_cost: float, first_probe: bool) -> None:
        """Charge one probe against the budget (driving mode only)."""
        waited = self.bucket.acquire(packet_cost)
        self.stats.seconds_waited += waited
        self._m_wait.observe(waited)
        if not first_probe:
            self.network.clock.advance(self._protocol_delay())

    def _protocol_delay(self) -> float:
        return self.rng.uniform(self.config.protocol_delay_min,
                                self.config.protocol_delay_max)


class ProbeExecutor:
    """Runs a registry's probe modules against admitted targets."""

    def __init__(self, network: Network, source: int,
                 registry: ProbeRegistry, stats: EngineStats,
                 *, name: str = "engine") -> None:
        self.network = network
        self.source = source
        self.registry = registry
        self.stats = stats
        self._name = name
        #: Called with every completed grab — the store's durability tap.
        self.grab_hook: Optional[Callable[[Grab], None]] = None
        self._metrics = current_registry()
        #: protocol → (attempts, successes, latency histogram), cached
        #: per spec so the per-probe hot path is one dict lookup.
        self._instruments: Dict[str, tuple] = {}

    def _probe_instruments(self, protocol: str) -> tuple:
        instruments = self._instruments.get(protocol)
        if instruments is None:
            instruments = (
                self._metrics.counter("probe_attempts_total",
                                      engine=self._name, protocol=protocol),
                self._metrics.counter("probe_success_total",
                                      engine=self._name, protocol=protocol),
                self._metrics.histogram("probe_seconds",
                                        engine=self._name, protocol=protocol),
            )
            self._instruments[protocol] = instruments
        return instruments

    def execute(self, target: int,
                scheduler: Optional[ScanScheduler] = None) -> List[Grab]:
        """Probe ``target`` with every registered module, in order."""
        grabs: List[Grab] = []
        clock = self.network.clock
        for index, spec in enumerate(self.registry):
            attempts, successes, latency = self._probe_instruments(spec.name)
            if scheduler is not None:
                started = clock.now()
                scheduler.pace(spec.packet_cost, first_probe=index == 0)
                self.stats.probes_sent += 1
                grab = spec.probe(self.network, self.source, target)
                latency.observe(clock.now() - started)
            else:
                # Embedded mode: the clock only moves between drains, so
                # per-probe latency is 0 by construction — skip the reads.
                self.stats.probes_sent += 1
                grab = spec.probe(self.network, self.source, target)
                latency.observe(0.0)
            attempts.inc()
            if grab.ok:
                successes.inc()
            if self.grab_hook is not None:
                self.grab_hook(grab)
            grabs.append(grab)
        return grabs

    def execute_into(self, target: int, results: ScanResults,
                     scheduler: Optional[ScanScheduler] = None) -> None:
        """Like :meth:`execute`, appending straight into ``results``.

        Skips the per-grab isinstance dispatch of
        :meth:`ScanResults.add` — the hot path of every campaign.
        """
        network, source = self.network, self.source
        clock = network.clock
        stats = self.stats
        grab_hook = self.grab_hook
        for index, spec in enumerate(self.registry):
            attempts, successes, latency = self._probe_instruments(spec.name)
            if scheduler is not None:
                started = clock.now()
                scheduler.pace(spec.packet_cost, first_probe=index == 0)
                stats.probes_sent += 1
                grab = spec.probe(network, source, target)
                latency.observe(clock.now() - started)
            else:
                # Embedded mode: the clock only moves between drains, so
                # per-probe latency is 0 by construction — skip the reads.
                stats.probes_sent += 1
                grab = spec.probe(network, source, target)
                latency.observe(0.0)
            attempts.inc()
            if grab.ok:
                successes.inc()
            if grab_hook is not None:
                grab_hook(grab)
            results.bucket(grab.protocol).append(grab)


class ScanEngine:
    """Scans targets with the registered probes, under the config's rules."""

    def __init__(self, network: Network, source: int,
                 config: Optional[EngineConfig] = None,
                 ethics: Optional[EthicsPolicy] = None,
                 registry: Optional[ProbeRegistry] = None,
                 *, name: str = "engine") -> None:
        self.network = network
        self.source = source
        self.config = config or EngineConfig()
        self.ethics = ethics
        self.registry = registry if registry is not None else default_registry()
        self.rng = random.Random(self.config.seed)
        self.stats = EngineStats()
        #: Label stamped onto this engine's metric series (shards get
        #: ``<name>/shardN``, so per-shard load balance is visible).
        self.name = name
        self.scheduler = ScanScheduler(network, self.config, self.stats,
                                       self.rng, name=name)
        self.executor = ProbeExecutor(network, source, self.registry,
                                      self.stats, name=name)
        network.add_host(source, reachable=True)

    @property
    def bucket(self) -> TokenBucket:
        """The scheduler's rate limiter (seed-era accessor)."""
        return self.scheduler.bucket

    # -- durability taps ---------------------------------------------------

    def attach_store(self, writer, *, label: str) -> None:
        """Stream this engine's admissions and grabs into a store.

        ``writer`` is a :class:`repro.store.writer.StoreWriter`;
        ``label`` names the scan (e.g. ``"ntp"``/``"hitlist"``) in the
        logged grab records.
        """
        self.scheduler.admit_hook = writer.admit_sink(self.name)
        self.executor.grab_hook = writer.grab_sink(label)

    def cooldown_snapshots(self) -> Dict[str, Dict[str, float]]:
        """Per-engine cool-down maps for checkpoints (one entry here;
        sharded engines return one per shard)."""
        return {self.name: self.scheduler.cooldown_snapshot()}

    # -- single target ----------------------------------------------------

    def scan_address(self, target: int) -> List[Grab]:
        """Run every registered probe against one address, in order."""
        pacer = self.scheduler if self.config.drive_clock else None
        return self.executor.execute(target, pacer)

    # -- campaign feeding ---------------------------------------------------

    def feed(self, target: int, results: ScanResults) -> bool:
        """Offer one target; scans it unless in cool-down.

        Returns True when the address was actually scanned.
        """
        self.stats.targets_offered += 1
        results.targets_seen += 1
        if self.ethics is not None and not self.ethics.permits(target):
            return False
        if not self.scheduler.admit(target):
            return False
        self.stats.targets_scanned += 1
        pacer = self.scheduler if self.config.drive_clock else None
        self.executor.execute_into(target, results, pacer)
        return True

    def run(self, targets: Iterable[int], label: str = "") -> ScanResults:
        """Scan a whole target list (the hitlist campaign entry point)."""
        results = ScanResults(label=label)
        for target in targets:
            self.feed(target, results)
        return results
