"""Good-Internet-citizenship machinery (paper Appendix A.2).

Two concrete mechanisms from the paper's ethics setup:

* an **opt-out blocklist** — operators who ask to be excluded are never
  probed again; the engine consults the list before every target
  (addresses and whole prefixes);
* a **scanner info page** — the scan source addresses themselves serve
  a web page explaining purpose, scope, and how to opt out, and are
  identified in reverse DNS; anyone investigating the probes finds the
  explanation immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.ipv6 import address as addrmod
from repro.net.rdns import ReverseDns
from repro.net.simnet import Network
from repro.proto.http import HttpSessionFactory
from repro.proto.tls_session import PlainService

#: The info page's title (what a scanned party's curl would show).
INFO_TITLE = "IPv6 research scan — purpose, scope, opt-out"

INFO_BODY = (
    "This address performs academic Internet measurements. "
    "We scan a small set of well-known service ports at low rates, "
    "never exploit anything, and honour every opt-out request. "
    "Contact: research-scan@comsys.example.edu"
)


class OptOutList:
    """Prefix-aware exclusion list consulted before every probe.

    Entries are (base, prefix_length); single addresses are /128.
    Membership tests are O(number of distinct prefix lengths).
    """

    def __init__(self) -> None:
        self._by_length: dict[int, set] = {}
        self._entries: List[Tuple[int, int]] = []

    def add(self, base: int, length: int = 128) -> None:
        """Exclude an address (/128) or a whole prefix."""
        if not 0 <= length <= 128:
            raise ValueError(f"prefix length out of range: {length}")
        key = addrmod.network_key(base, length)
        self._by_length.setdefault(length, set()).add(key)
        self._entries.append((addrmod.prefix(base, length), length))

    def add_network(self, text: str) -> None:
        """Exclude CIDR notation (``2001:db8::/48``) or one address."""
        if "/" in text:
            base, length = addrmod.parse_network(text)
        else:
            base, length = addrmod.parse(text), 128
        self.add(base, length)

    def blocked(self, address: int) -> bool:
        """Whether a target must not be probed."""
        for length, keys in self._by_length.items():
            if addrmod.network_key(address, length) in keys:
                return True
        return False

    @property
    def entries(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(self._entries)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class EthicsPolicy:
    """Bundles the engine's citizenship configuration."""

    opt_out: OptOutList = field(default_factory=OptOutList)
    contact: str = "research-scan@comsys.example.edu"
    #: Suppressed probe attempts (targets on the opt-out list).
    suppressed: int = 0

    def permits(self, target: int) -> bool:
        """Check a target; counts suppressions for reporting."""
        if self.opt_out.blocked(target):
            self.suppressed += 1
            return False
        return True


def publish_scanner_identity(network: Network, source: int,
                             rdns: Optional[ReverseDns] = None,
                             ptr_name: str = "ipv6-research-scan.example.edu"
                             ) -> None:
    """Make a scan source self-identifying (Appendix A.2.2).

    Binds the explanation page on ports 80/443-less HTTP (plain 80 — a
    probe target investigating us should not need a TLS stack) and
    publishes a research PTR record.
    """
    host = network.add_host(source, reachable=True)
    if 80 not in host.tcp_services:
        host.bind_tcp(80, PlainService(
            HttpSessionFactory(INFO_TITLE, body_extra=INFO_BODY)))
    if rdns is not None:
        rdns.register(source, ptr_name)
