"""Per-protocol scan modules (the zgrab2 module analogues)."""

from repro.scan.modules.amqp import scan_amqp, scan_amqps
from repro.scan.modules.coap import scan_coap
from repro.scan.modules.http import scan_http, scan_https
from repro.scan.modules.mqtt import scan_mqtt, scan_mqtts
from repro.scan.modules.ssh import scan_ssh

__all__ = [
    "scan_amqp",
    "scan_amqps",
    "scan_coap",
    "scan_http",
    "scan_https",
    "scan_mqtt",
    "scan_mqtts",
    "scan_ssh",
]
