"""AMQP(S) scan module: protocol header, anonymous Start-Ok, classify."""

from __future__ import annotations

from typing import Optional

from repro.net.simnet import Network, Stream
from repro.proto.amqp import (
    PROTOCOL_HEADER,
    AmqpDecodeError,
    ConnectionClose,
    ConnectionStart,
    ConnectionStartOk,
    ConnectionTune,
    parse_method,
)
from repro.scan.result import BrokerGrab, TlsObservation
from repro.tlslib.handshake import HandshakeStatus, perform_handshake


def _probe(stream: Stream, address: int, now: float, port: int,
           protocol: str, tls: Optional[TlsObservation]) -> BrokerGrab:
    raw = stream.write(PROTOCOL_HEADER)
    if raw is None:
        return BrokerGrab(address=address, time=now, port=port,
                          protocol=protocol, ok=False, tls=tls)
    if raw == PROTOCOL_HEADER:
        # Version-mismatch style rejection; the endpoint *is* AMQP.
        return BrokerGrab(address=address, time=now, port=port,
                          protocol=protocol, ok=True, open_access=None,
                          detail="header-rejected", tls=tls)
    try:
        start = parse_method(raw)
    except AmqpDecodeError:
        return BrokerGrab(address=address, time=now, port=port,
                          protocol=protocol, ok=False, tls=tls)
    if not isinstance(start, ConnectionStart):
        return BrokerGrab(address=address, time=now, port=port,
                          protocol=protocol, ok=False, tls=tls)
    # Attempt anonymous authentication.
    reply = stream.write(ConnectionStartOk(mechanism="ANONYMOUS").encode())
    open_access: Optional[bool] = None
    detail = f"mechanisms={','.join(start.mechanisms)}"
    if reply is not None:
        try:
            method = parse_method(reply)
        except AmqpDecodeError:
            method = None
        if isinstance(method, ConnectionTune):
            open_access = True
        elif isinstance(method, ConnectionClose):
            open_access = False
            detail += f";close={method.reply_code}"
    return BrokerGrab(
        address=address, time=now, port=port, protocol=protocol, ok=True,
        open_access=open_access, detail=detail, tls=tls,
    )


def scan_amqp(network: Network, source: int, target: int,
              port: int = 5672) -> BrokerGrab:
    """Plain AMQP broker probe."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, port)
    if stream is None:
        return BrokerGrab(address=target, time=now, port=port,
                          protocol="amqp", ok=False)
    return _probe(stream, target, now, port, "amqp", tls=None)


def scan_amqps(network: Network, source: int, target: int,
               port: int = 5671) -> BrokerGrab:
    """AMQP-over-TLS broker probe."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, port)
    if stream is None:
        return BrokerGrab(address=target, time=now, port=port,
                          protocol="amqps", ok=False)
    handshake = perform_handshake(stream, hostname=None)
    if handshake.status is not HandshakeStatus.OK:
        tls = TlsObservation(
            ok=False,
            alert=(handshake.alert_description
                   if handshake.status is HandshakeStatus.ALERT else None),
        )
        return BrokerGrab(address=target, time=now, port=port,
                          protocol="amqps",
                          ok=handshake.status is HandshakeStatus.ALERT,
                          tls=tls)
    certificate = handshake.certificate
    tls = TlsObservation(
        ok=True,
        fingerprint=certificate.fingerprint,
        subject=certificate.subject,
        issuer=certificate.issuer,
        self_signed=certificate.self_signed,
        expired=certificate.expired(now),
    )
    return _probe(stream, target, now, port, "amqps", tls=tls)
