"""CoAP scan module: resource discovery via ``/.well-known/core``."""

from __future__ import annotations

import itertools

from repro.net.simnet import Network
from repro.proto.coap import (
    CONTENT_205,
    CoapDecodeError,
    CoapMessage,
    get_request,
    parse_link_format,
)
from repro.scan.result import CoapGrab

_message_ids = itertools.count(0x1000)


def scan_coap(network: Network, source: int, target: int,
              port: int = 5683) -> CoapGrab:
    """Send a confirmable GET for the resource directory."""
    now = network.clock.now()
    message_id = next(_message_ids) & 0xFFFF
    request = get_request("/.well-known/core", message_id=message_id)
    payload = network.udp_request(source, target, port, request.encode())
    if payload is None:
        return CoapGrab(address=target, time=now, ok=False)
    try:
        response = CoapMessage.decode(payload)
    except CoapDecodeError:
        return CoapGrab(address=target, time=now, ok=False)
    if response.message_id != message_id or response.token != request.token:
        return CoapGrab(address=target, time=now, ok=False)
    if response.code != CONTENT_205:
        # The endpoint speaks CoAP but hides its directory; still a find.
        return CoapGrab(address=target, time=now, ok=True, resources=())
    resources = tuple(parse_link_format(response.payload))
    return CoapGrab(address=target, time=now, ok=True, resources=resources)
