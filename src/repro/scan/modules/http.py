"""HTTP and HTTPS scan modules.

The plain-HTTP probe sends ``GET /`` *without a Host header* and the
HTTPS probe runs the TLS handshake *without SNI* — faithfully modelling
the paper's setup, whose missing hostname is exactly what makes
hundreds of millions of CDN fronts fail the TLS handshake (Section 4.2).
"""

from __future__ import annotations

from typing import Optional

from repro.net.simnet import Network
from repro.proto.http import HttpDecodeError, HttpRequest, HttpResponse
from repro.scan.result import HttpGrab, TlsObservation
from repro.tlslib.handshake import HandshakeStatus, perform_handshake

#: User-Agent identifying the research scan (Appendix A.2.2).
USER_AGENT = "repro-scan/1.0 (+https://research.sim/scan-info)"


def _fetch(stream, now: float, address: int, port: int,
           tls: Optional[TlsObservation]) -> HttpGrab:
    request = HttpRequest(method="GET", path="/",
                          headers={"User-Agent": USER_AGENT})
    raw = stream.write(request.encode())
    if raw is None:
        return HttpGrab(address=address, time=now, port=port, ok=False, tls=tls)
    try:
        response = HttpResponse.decode(raw)
    except HttpDecodeError:
        return HttpGrab(address=address, time=now, port=port, ok=False, tls=tls)
    return HttpGrab(
        address=address, time=now, port=port, ok=True,
        status=response.status, title=response.title,
        server=response.headers.get("Server"),
        tls=tls,
    )


def scan_http(network: Network, source: int, target: int,
              port: int = 80) -> HttpGrab:
    """Plain-HTTP banner/page grab."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, port)
    if stream is None:
        return HttpGrab(address=target, time=now, port=port, ok=False)
    return _fetch(stream, now, target, port, tls=None)


def scan_https(network: Network, source: int, target: int,
               port: int = 443) -> HttpGrab:
    """TLS handshake (no SNI) followed by a page grab on success."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, port)
    if stream is None:
        return HttpGrab(address=target, time=now, port=port, ok=False)
    handshake = perform_handshake(stream, hostname=None)
    if handshake.status is not HandshakeStatus.OK:
        tls = TlsObservation(
            ok=False,
            alert=(handshake.alert_description
                   if handshake.status is HandshakeStatus.ALERT else None),
        )
        # The endpoint *spoke TLS* (alert) but no application data flows.
        return HttpGrab(address=target, time=now, port=port,
                        ok=handshake.status is HandshakeStatus.ALERT, tls=tls)
    certificate = handshake.certificate
    tls = TlsObservation(
        ok=True,
        fingerprint=certificate.fingerprint,
        subject=certificate.subject,
        issuer=certificate.issuer,
        self_signed=certificate.self_signed,
        expired=certificate.expired(now),
    )
    return _fetch(stream, now, target, port, tls=tls)
