"""MQTT(S) scan module: anonymous CONNECT, access-control classification."""

from __future__ import annotations

from typing import Optional

from repro.net.simnet import Network, Stream
from repro.proto.mqtt import (
    ACCEPTED,
    ConnackPacket,
    ConnectPacket,
    MqttDecodeError,
)
from repro.scan.result import BrokerGrab, TlsObservation
from repro.tlslib.handshake import HandshakeStatus, perform_handshake

#: Client ID identifying the research scan.
CLIENT_ID = "repro-scan"


def _probe(stream: Stream, address: int, now: float, port: int,
           protocol: str, tls: Optional[TlsObservation]) -> BrokerGrab:
    connect = ConnectPacket(client_id=CLIENT_ID)
    raw = stream.write(connect.encode())
    if raw is None:
        return BrokerGrab(address=address, time=now, port=port,
                          protocol=protocol, ok=False, tls=tls)
    try:
        connack = ConnackPacket.decode(raw)
    except MqttDecodeError:
        return BrokerGrab(address=address, time=now, port=port,
                          protocol=protocol, ok=False, tls=tls)
    return BrokerGrab(
        address=address, time=now, port=port, protocol=protocol, ok=True,
        open_access=connack.return_code == ACCEPTED,
        detail=f"connack={connack.return_code}",
        tls=tls,
    )


def scan_mqtt(network: Network, source: int, target: int,
              port: int = 1883) -> BrokerGrab:
    """Plain MQTT broker probe."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, port)
    if stream is None:
        return BrokerGrab(address=target, time=now, port=port,
                          protocol="mqtt", ok=False)
    return _probe(stream, target, now, port, "mqtt", tls=None)


def scan_mqtts(network: Network, source: int, target: int,
               port: int = 8883) -> BrokerGrab:
    """MQTT-over-TLS broker probe."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, port)
    if stream is None:
        return BrokerGrab(address=target, time=now, port=port,
                          protocol="mqtts", ok=False)
    handshake = perform_handshake(stream, hostname=None)
    if handshake.status is not HandshakeStatus.OK:
        tls = TlsObservation(
            ok=False,
            alert=(handshake.alert_description
                   if handshake.status is HandshakeStatus.ALERT else None),
        )
        return BrokerGrab(address=target, time=now, port=port,
                          protocol="mqtts",
                          ok=handshake.status is HandshakeStatus.ALERT,
                          tls=tls)
    certificate = handshake.certificate
    tls = TlsObservation(
        ok=True,
        fingerprint=certificate.fingerprint,
        subject=certificate.subject,
        issuer=certificate.issuer,
        self_signed=certificate.self_signed,
        expired=certificate.expired(now),
    )
    return _probe(stream, target, now, port, "mqtts", tls=tls)
