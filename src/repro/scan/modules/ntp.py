"""NTP scan module: mode-6 readvar recon plus mode-7 monlist probe.

The control-plane analogue of the paper's service scans: one mode-6
``readvar`` query reads the daemon's advertised version string (the
``ntpq -c rv`` reconnaissance step), then one 72-byte mode-7 monlist
request measures whether the server exposes its recent-client table —
and, when it does, how many bytes the multi-packet response train
returns per request byte (the amplification factor of Figs 2/3).

Unlike the single-response paper probes, both queries can legitimately
come back as several packets, so the module rides
:meth:`repro.net.simnet.Network.udp_request_multi` and reassembles
mode-6 fragments / decodes the whole monlist train.
"""

from __future__ import annotations

import itertools
import re
from typing import List, Optional

from repro.net.simnet import Network
from repro.ntp.control import (
    ControlPacket,
    NtpDecodeError,
    monlist_request,
    decode_monlist,
    readvar_request,
    reassemble,
)
from repro.scan.result import NtpGrab

_sequences = itertools.count(0x10)

#: Pulls ``version="ntpd 4.2.8p17"`` out of a readvar payload.
_VERSION = re.compile(r'version="([^"]*)"')


def _query_version(network: Network, source: int, target: int,
                   port: int, sequence: int) -> Optional[str]:
    """Run the readvar exchange; None when the target stays silent."""
    request = readvar_request(sequence=sequence & 0xFFFF)
    payloads = network.udp_request_multi(source, target, port,
                                         request.encode())
    if not payloads:
        return None
    try:
        fragments = [ControlPacket.decode(payload) for payload in payloads]
        data = reassemble(fragments)
    except NtpDecodeError:
        return None
    match = _VERSION.search(data.decode("ascii", "replace"))
    return match.group(1) if match else ""


def scan_ntp(network: Network, source: int, target: int,
             port: int = 123) -> NtpGrab:
    """Probe one address: readvar for the version, monlist for exposure."""
    now = network.clock.now()
    sequence = next(_sequences)
    version = _query_version(network, source, target, port, sequence)
    if version is None:
        return NtpGrab(address=target, time=now, ok=False)
    request = monlist_request(sequence=sequence & 0x7F)
    wire = request.encode()
    payloads: List[bytes] = network.udp_request_multi(
        source, target, port, wire)
    if not payloads:
        # Readvar answered but monlist was dropped: the patched-daemon
        # silence the paper's exposure share counts as "not vulnerable".
        return NtpGrab(address=target, time=now, ok=True, version=version,
                       monlist=False, request_bytes=len(wire))
    try:
        entries, err = decode_monlist(payloads)
    except NtpDecodeError:
        return NtpGrab(address=target, time=now, ok=True, version=version,
                       monlist=False, request_bytes=len(wire))
    response_bytes = sum(len(payload) for payload in payloads)
    return NtpGrab(
        address=target, time=now, ok=True, version=version,
        monlist=err == 0, entries=len(entries),
        response_packets=len(payloads), request_bytes=len(wire),
        response_bytes=response_bytes,
    )
