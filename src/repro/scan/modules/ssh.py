"""SSH scan module: banner grab + host-key retrieval."""

from __future__ import annotations

from repro.net.simnet import Network
from repro.proto.ssh import (
    SshDecodeError,
    SshIdentification,
    decode_keyreply,
)
from repro.scan.result import SshGrab

#: The identification string our scanner presents (identifies us as a
#: research scan, per the paper's ethics appendix).
SCANNER_ID = SshIdentification(protocol="2.0", software="ReproScan_1.0",
                               comment="research-scan")


def scan_ssh(network: Network, source: int, target: int,
             port: int = 22) -> SshGrab:
    """Grab the server banner and host key."""
    now = network.clock.now()
    stream = network.tcp_connect(source, target, port)
    if stream is None:
        return SshGrab(address=target, time=now, ok=False)
    greeting = stream.read_greeting()
    try:
        identification = SshIdentification.decode(greeting)
    except SshDecodeError:
        return SshGrab(address=target, time=now, ok=False)
    reply = stream.write(SCANNER_ID.encode())
    key_algorithm = None
    key_fingerprint = None
    if reply is not None:
        try:
            key = decode_keyreply(reply)
        except SshDecodeError:
            key = None
        if key is not None:
            key_algorithm = key.algorithm
            key_fingerprint = key.fingerprint
    return SshGrab(
        address=target, time=now, ok=True,
        banner=identification.banner,
        software=identification.software,
        comment=identification.comment,
        key_algorithm=key_algorithm,
        key_fingerprint=key_fingerprint,
    )
