"""Token-bucket rate limiting against the virtual clock.

The paper caps its scans at 100 000 packets per second; the engine
enforces the same budget in simulated time, so a burst of targets
*costs* virtual seconds instead of being free — which in turn affects
real-time coupling (a scan triggered late may hit a churned address).
"""

from __future__ import annotations

from repro.net.clock import VirtualClock


class TokenBucket:
    """A standard token bucket whose refill is driven by simulated time."""

    def __init__(self, clock: VirtualClock, rate: float,
                 burst: float | None = None) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.clock = clock
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else rate)
        self._tokens = self.burst
        self._updated = clock.now()

    def _refill(self) -> None:
        now = self.clock.now()
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._updated = now

    @property
    def available(self) -> float:
        self._refill()
        return self._tokens

    def try_acquire(self, amount: float = 1.0) -> bool:
        """Consume ``amount`` tokens if available, without waiting."""
        self._refill()
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def acquire(self, amount: float = 1.0) -> float:
        """Consume ``amount`` tokens, advancing the clock if needed.

        Returns the simulated seconds spent waiting for refill.  This is
        what makes scan throughput a first-class simulated quantity.
        """
        if amount > self.burst:
            raise ValueError(
                f"cannot acquire {amount} tokens with burst {self.burst}"
            )
        self._refill()
        waited = 0.0
        if self._tokens < amount:
            deficit = amount - self._tokens
            wait = deficit / self.rate
            self.clock.advance(wait)
            waited = wait
            self._refill()
        self._tokens -= amount
        return waited
