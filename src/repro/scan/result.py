"""Scan result records — the zgrab2-style "grab" objects.

Each protocol module returns a typed grab; :class:`ScanResults`
accumulates them per protocol and offers the aggregate accessors the
analyses and tables consume (responsive addresses, TLS success shares,
unique certificate/key fingerprints).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

#: Protocol labels in Table 2 / Table 5 column order.
PROTOCOLS = ("http", "https", "ssh", "mqtt", "mqtts", "amqp", "amqps", "coap")

#: protocol label → (transport port, uses TLS).
PROTOCOL_PORTS: Dict[str, int] = {
    "http": 80, "https": 443, "ssh": 22, "mqtt": 1883, "mqtts": 8883,
    "amqp": 5672, "amqps": 5671, "coap": 5683,
}

TLS_PROTOCOLS = frozenset({"https", "mqtts", "amqps"})


@dataclass(frozen=True)
class TlsObservation:
    """What a TLS handshake revealed (None fields when it failed)."""

    ok: bool
    alert: Optional[int] = None
    fingerprint: Optional[bytes] = None
    subject: Optional[str] = None
    issuer: Optional[str] = None
    self_signed: Optional[bool] = None
    expired: Optional[bool] = None


@dataclass(frozen=True)
class HttpGrab:
    """HTTP(S) probe outcome."""

    address: int
    time: float
    port: int
    ok: bool
    status: Optional[int] = None
    title: Optional[str] = None
    server: Optional[str] = None
    tls: Optional[TlsObservation] = None

    @property
    def protocol(self) -> str:
        return "https" if self.port == 443 else "http"


@dataclass(frozen=True)
class SshGrab:
    """SSH probe outcome."""

    address: int
    time: float
    ok: bool
    banner: Optional[str] = None
    software: Optional[str] = None
    comment: Optional[str] = None
    key_algorithm: Optional[str] = None
    key_fingerprint: Optional[bytes] = None

    protocol: str = "ssh"


@dataclass(frozen=True)
class BrokerGrab:
    """MQTT/AMQP probe outcome."""

    address: int
    time: float
    port: int
    protocol: str
    ok: bool
    #: True → anonymous access accepted, False → refused, None → unknown.
    open_access: Optional[bool] = None
    detail: Optional[str] = None
    tls: Optional[TlsObservation] = None


@dataclass(frozen=True)
class CoapGrab:
    """CoAP probe outcome."""

    address: int
    time: float
    ok: bool
    resources: Tuple[str, ...] = ()

    protocol: str = "coap"
    port: int = 5683


@dataclass(frozen=True)
class NtpGrab:
    """NTP control-plane probe outcome (mode-6 readvar + mode-7 monlist).

    ``ok`` means the target answered the readvar query at all;
    ``monlist`` is True when the mode-7 monlist was answered with data,
    False when it was denied or silently dropped (the patched-daemon
    behaviour).  The byte counters feed the amplification-factor
    analysis: ``request_bytes`` is what the scanner sent for the
    monlist probe, ``response_bytes`` what came back across the whole
    response train.
    """

    address: int
    time: float
    ok: bool
    version: Optional[str] = None
    monlist: bool = False
    #: Recent-client entries returned by monlist.
    entries: int = 0
    #: Packets in the monlist response train.
    response_packets: int = 0
    #: Bytes sent in the monlist request.
    request_bytes: int = 0
    #: Bytes received across the monlist response train.
    response_bytes: int = 0

    protocol: str = "ntp"
    port: int = 123

    @property
    def amplification(self) -> float:
        """Bytes returned per monlist byte sent (0.0 when unanswered)."""
        if self.request_bytes <= 0:
            return 0.0
        return self.response_bytes / self.request_bytes


Grab = object  # any of the grab dataclasses above


@dataclass
class ScanResults:
    """Accumulated grabs of one scan campaign.

    The eight paper protocols are first-class fields; grabs from
    additionally registered probe modules (see
    :class:`repro.runtime.registry.ProbeRegistry`) accumulate in
    ``extra`` under their ``protocol`` label and flow through every
    aggregate exactly like the built-in ones.
    """

    label: str = ""
    http: List[HttpGrab] = field(default_factory=list)
    https: List[HttpGrab] = field(default_factory=list)
    ssh: List[SshGrab] = field(default_factory=list)
    mqtt: List[BrokerGrab] = field(default_factory=list)
    mqtts: List[BrokerGrab] = field(default_factory=list)
    amqp: List[BrokerGrab] = field(default_factory=list)
    amqps: List[BrokerGrab] = field(default_factory=list)
    coap: List[CoapGrab] = field(default_factory=list)
    #: Grabs of registered non-paper protocols, keyed by label.
    extra: Dict[str, List[Grab]] = field(default_factory=dict)
    #: Addresses fed to the scanner (denominator of hit rates).
    targets_seen: int = 0

    def protocols(self) -> Tuple[str, ...]:
        """Every protocol with a bucket here (paper order, extras last)."""
        return PROTOCOLS + tuple(self.extra)

    def grabs(self, protocol: str) -> List[Grab]:
        if protocol in PROTOCOLS:
            return getattr(self, protocol)
        try:
            return self.extra[protocol]
        except KeyError:
            raise KeyError(f"unknown protocol {protocol!r}") from None

    def bucket(self, protocol: str) -> List[Grab]:
        """Like :meth:`grabs`, but creates the bucket for new protocols."""
        if protocol in PROTOCOLS:
            return getattr(self, protocol)
        return self.extra.setdefault(protocol, [])

    def add(self, grab: Grab) -> None:
        protocol = getattr(grab, "protocol", None)
        if not isinstance(protocol, str):
            raise TypeError(f"not a grab: {grab!r}")
        self.bucket(protocol).append(grab)

    def absorb(self, part: "ScanResults") -> None:
        """Fold one shard's results into this accumulator, in place.

        The streaming half of :meth:`merged`: buckets extend in call
        order, counters sum — so absorbing parts one at a time in shard
        order is byte-identical to a single :meth:`merged` call over
        the same sequence (the parallel backend folds each worker's
        chunk the moment its shard's turn comes).
        """
        for protocol in part.protocols():
            grabs = part.grabs(protocol)
            if grabs:
                self.bucket(protocol).extend(grabs)
        self.targets_seen += part.targets_seen

    @classmethod
    def merged(cls, parts: Iterable["ScanResults"],
               label: str = "") -> "ScanResults":
        """Deterministically merge per-shard results into one object.

        Buckets extend in ``parts`` order (shard order), preserving each
        shard's scan order; counters sum.  Totals therefore equal a
        single-engine run over the union of the shards' targets.
        """
        merged = cls(label=label)
        for part in parts:
            merged.absorb(part)
        return merged

    # -- aggregates (Table 2 columns) -----------------------------------

    def responsive(self, protocol: str) -> List[Grab]:
        """Successful grabs for one protocol."""
        return [grab for grab in self.grabs(protocol) if grab.ok]

    def responsive_addresses(self, protocol: str) -> set:
        """Distinct responsive addresses (Table 2 #Addrs)."""
        return {grab.address for grab in self.responsive(protocol)}

    def tls_addresses(self, protocol: str) -> set:
        """Distinct addresses with a *successful* TLS handshake."""
        return {
            grab.address for grab in self.responsive(protocol)
            if getattr(grab, "tls", None) is not None and grab.tls.ok
        }

    def unique_fingerprints(self, protocol: str) -> set:
        """Distinct certificate or host-key fingerprints (#Certs/Keys)."""
        fingerprints = set()
        for grab in self.responsive(protocol):
            if isinstance(grab, SshGrab):
                if grab.key_fingerprint:
                    fingerprints.add(grab.key_fingerprint)
            else:
                tls = getattr(grab, "tls", None)
                if tls is not None and tls.ok and tls.fingerprint:
                    fingerprints.add(tls.fingerprint)
        return fingerprints

    def merged_http(self) -> List[HttpGrab]:
        """HTTP+HTTPS grabs together (the paper reports one HTTP row)."""
        return self.http + self.https

    def hit_rate(self) -> float:
        """Share of fed targets responsive on at least one protocol."""
        if self.targets_seen == 0:
            return 0.0
        responsive: set = set()
        for protocol in self.protocols():
            responsive |= self.responsive_addresses(protocol)
        return len(responsive) / self.targets_seen
