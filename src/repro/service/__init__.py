"""repro.service — the always-on measurement service.

Three pieces on top of the batch pipeline and the run store:

* :mod:`repro.service.daemon` — the campaign daemon: collection +
  realtime scanning ticking one simulated day at a time over a rolling
  multi-week horizon, with world evolution (prefix churn, device
  drift, pool membership churn) and periodic checkpoints;
* :mod:`repro.service.query` — the windowed query engine: rolling
  Table 2/3 and Figure 2/3 series materialized from the nearest
  checkpoint plus a bounded WAL tail, never a full replay;
* :mod:`repro.service.frontend` — ``repro serve``: many concurrent
  windowed queries behind an LRU frame cache and a JSONL TCP front.
"""

from repro.service.config import (
    ServiceConfig,
    is_service_document,
    service_config_from_document,
)
from repro.service.daemon import CampaignDaemon
from repro.service.frontend import (
    QueryService,
    ServiceServer,
    WindowFrameCache,
    query_server,
)
from repro.service.query import (
    WINDOW_ANCHOR_SLACK,
    WindowAnchor,
    WindowedAttributionReader,
    WindowFrame,
    WindowedStudyReader,
    window_document,
)

__all__ = [
    "ServiceConfig",
    "is_service_document",
    "service_config_from_document",
    "CampaignDaemon",
    "QueryService",
    "ServiceServer",
    "WindowFrameCache",
    "query_server",
    "WINDOW_ANCHOR_SLACK",
    "WindowAnchor",
    "WindowFrame",
    "WindowedAttributionReader",
    "WindowedStudyReader",
    "window_document",
]
