"""Configuration of the always-on measurement service.

One dataclass covers both halves of the subsystem: the campaign
daemon's longitudinal knobs (how many simulated days, how the world
evolves per tick, how often to checkpoint and re-sweep the hitlist)
and the query front end's defaults (window/step spans, frame-cache
capacity).  The whole document persists in the run store's
``meta.json`` — exactly like :class:`~repro.core.pipeline.
ExperimentConfig` for batch studies — so a crashed daemon resumes from
nothing but its run directory, and ``repro serve`` picks up the
window defaults the campaign was designed around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.core.campaign import CampaignConfig
from repro.scan.result import PROTOCOLS
from repro.world.hitlist import HitlistConfig
from repro.world.population import WorldConfig


@dataclass
class ServiceConfig:
    """Everything needed to run (and resume) a longitudinal campaign."""

    world: WorldConfig = field(default_factory=WorldConfig)
    campaign: CampaignConfig = field(default_factory=CampaignConfig)
    hitlist: HitlistConfig = field(default_factory=HitlistConfig)
    #: The run-store directory the daemon appends to.  Required: a
    #: service run *is* its store (there is no in-memory-only mode).
    store_dir: Optional[str] = None
    #: Total simulated collection days of the campaign.
    campaign_days: int = 21
    #: Days between durable checkpoints (the windowed query engine's
    #: replay anchors — smaller means cheaper queries, more files).
    checkpoint_days: int = 7
    #: Days between hitlist rebuild + batch sweep (0 disables the
    #: hitlist side entirely).  Sweeps run at the *start* of the due
    #: day, so their grabs land inside that day's window.
    hitlist_days: int = 7
    scan_seed: int = 0x51AB
    #: Fan each scan engine out over N hash-partitioned shards.
    scan_shards: int = 1
    #: Restrict the probe profile (None = the paper's full registry).
    protocols: Optional[Tuple[str, ...]] = None
    #: Seed of the dedicated world-evolution RNG stream (device drift +
    #: pool churn).  Separate from every other stream so drift never
    #: perturbs the campaign/world sequences.
    drift_seed: int = 0xD21F7
    #: Per-premises per-day probability that a new client device joins.
    drift_spawn_rate: float = 0.02
    #: Per-premises per-day probability that one client retires.
    drift_retire_rate: float = 0.01
    #: Per-day probability that a background server joins the pool.
    pool_join_rate: float = 0.25
    #: Per-day probability that a background server leaves the pool.
    pool_leave_rate: float = 0.15
    #: Default query-window span in days (``analyze --window``,
    #: ``repro serve``).
    window: int = 7
    #: Default stride between successive windows, in days.
    step: int = 7
    #: LRU capacity of the serve front end's materialized-frame cache.
    serve_cache_frames: int = 32
    #: WAL tuning, passed through to :meth:`RunStore.create`.
    segment_max_records: int = 4096
    fsync_every: int = 256

    def __post_init__(self) -> None:
        # House style: validation on the config, errors lead with
        # field=value so CLI exit-2 output names the offending value.
        if self.store_dir is None:
            raise ValueError(
                "store_dir=None: the service daemon is store-backed; "
                "name a run directory")
        if self.campaign_days < 1:
            raise ValueError(
                f"campaign_days={self.campaign_days}: must be >= 1")
        if self.checkpoint_days < 1:
            raise ValueError(
                f"checkpoint_days={self.checkpoint_days}: must be >= 1")
        if self.hitlist_days < 0:
            raise ValueError(
                f"hitlist_days={self.hitlist_days}: must be >= 0 "
                "(0 disables hitlist sweeps)")
        if self.scan_shards < 1:
            raise ValueError(
                f"scan_shards={self.scan_shards}: must be >= 1")
        for name in ("drift_spawn_rate", "drift_retire_rate",
                     "pool_join_rate", "pool_leave_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(
                    f"{name}={rate}: must be a probability in [0, 1]")
        if self.window < 1:
            raise ValueError(f"window={self.window}: must be >= 1 day")
        if self.step < 1:
            raise ValueError(f"step={self.step}: must be >= 1 day")
        if self.serve_cache_frames < 1:
            raise ValueError(
                f"serve_cache_frames={self.serve_cache_frames}: "
                "must be >= 1")
        if self.segment_max_records < 1:
            raise ValueError(
                f"segment_max_records={self.segment_max_records}: "
                "must be >= 1")
        if self.fsync_every < 1:
            raise ValueError(
                f"fsync_every={self.fsync_every}: must be >= 1")
        if self.protocols is not None:
            if not self.protocols:
                raise ValueError(
                    f"protocols={self.protocols!r}: must name at least "
                    "one protocol (or be None for the full registry)")
            unknown = [name for name in self.protocols
                       if name not in PROTOCOLS]
            if unknown:
                raise ValueError(
                    f"protocols={','.join(self.protocols)}: unknown "
                    f"protocol(s) {', '.join(sorted(unknown))}; "
                    f"choose from {', '.join(PROTOCOLS)}")


def service_config_from_document(document: dict, *,
                                 store_dir: Optional[str] = None
                                 ) -> ServiceConfig:
    """Rebuild a :class:`ServiceConfig` from its stored JSON form.

    Inverse of the ``asdict`` + JSON round-trip persisted in the run
    store's ``meta.json``; ``store_dir`` overrides the recorded path so
    a moved run directory resumes in place.
    """
    campaign_doc = dict(document["campaign"])
    campaign_doc["deployment"] = tuple(campaign_doc["deployment"])
    protocols = document.get("protocols")
    return ServiceConfig(
        world=WorldConfig(**document["world"]),
        campaign=CampaignConfig(**campaign_doc),
        hitlist=HitlistConfig(**document["hitlist"]),
        store_dir=store_dir if store_dir is not None
        else document.get("store_dir"),
        campaign_days=document["campaign_days"],
        checkpoint_days=document["checkpoint_days"],
        hitlist_days=document["hitlist_days"],
        scan_seed=document["scan_seed"],
        scan_shards=document["scan_shards"],
        protocols=tuple(protocols) if protocols is not None else None,
        drift_seed=document["drift_seed"],
        drift_spawn_rate=document["drift_spawn_rate"],
        drift_retire_rate=document["drift_retire_rate"],
        pool_join_rate=document["pool_join_rate"],
        pool_leave_rate=document["pool_leave_rate"],
        window=document["window"],
        step=document["step"],
        serve_cache_frames=document["serve_cache_frames"],
        segment_max_records=document.get("segment_max_records", 4096),
        fsync_every=document.get("fsync_every", 256),
    )


def is_service_document(document: dict) -> bool:
    """Whether a stored config document belongs to a service campaign
    (vs a batch :class:`ExperimentConfig` study)."""
    return "campaign_days" in document
