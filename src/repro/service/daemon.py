"""The campaign daemon: collection + scanning as a long-running loop.

A batch :func:`~repro.core.pipeline.run_experiment` runs its phases and
exits; the daemon instead *ticks*, one simulated day at a time, for a
rolling multi-week window — and the world evolves underneath it the
way the real one does over a month:

* **dynamic-prefix churn** — the existing per-day
  :class:`~repro.world.churn.ChurnModel` step (inside
  ``CollectionCampaign.advance_days``);
* **device-population drift** — households gain and lose NTP clients
  (:func:`~repro.world.population.spawn_client_device` /
  ``retire_client_device``), driven by a dedicated drift RNG stream;
* **pool membership churn** — background NTP servers join and leave
  zones mid-campaign (``CollectionCampaign.add_background_server`` /
  ``remove_random_background``).

Every tick appends to the run store's WAL (sightings, admits, grabs,
one ``mark`` per day) and cuts a checkpoint every
``checkpoint_days`` — the windowed query engine's replay anchors.
Crash recovery is the store's deterministic-replay protocol: resuming
re-runs the daemon from genesis with the writer in verify mode, checks
every regenerated record against the surviving log, and switches live
at the exact record where the crash cut it off.

Tick order matters for window semantics: the hitlist sweep (when due)
runs at the *start* of its day, so sweep grabs — stamped with up to
``protocol_delay_max`` seconds of jitter — land inside that day's
window and are covered by the same day-end mark that carries their
cumulative target count.
"""

from __future__ import annotations

import random
from dataclasses import asdict
from typing import Dict

from repro.core.campaign import CollectionCampaign
from repro.core.realtime import RealTimeScanQueue
from repro.obs.metrics import current_registry
from repro.runtime.registry import default_registry
from repro.scan.engine import EngineConfig
from repro.scan.ethics import publish_scanner_identity
from repro.scan.result import ScanResults
from repro.service.config import (
    ServiceConfig,
    is_service_document,
    service_config_from_document,
)
from repro.store.runstore import RunStore
from repro.store.writer import StoreWriter
from repro.world.hitlist import build_hitlist
from repro.world.population import (
    build_world,
    retire_client_device,
    spawn_client_device,
)


def _open_service_writer(config: ServiceConfig, *,
                         resume: bool) -> StoreWriter:
    """The daemon's StoreWriter: fresh store, or verify-mode recovery."""
    import json

    if resume:
        store = RunStore.open(config.store_dir)
        return StoreWriter(store, recovery=store.recover(repair=True))
    store = RunStore.create(
        config.store_dir,
        # JSON round-trip normalizes tuples to lists, so the stored
        # config is exactly what service_config_from_document reads.
        config=json.loads(json.dumps(asdict(config))),
        cooldown_ttl=EngineConfig().cooldown,
        segment_max_records=config.segment_max_records,
        fsync_every=config.fsync_every,
    )
    return StoreWriter(store)


class CampaignDaemon:
    """Owns one longitudinal campaign: world, engines, store, ticks.

    Construction replays nothing by itself; :meth:`run` (or repeated
    :meth:`tick` calls) drives the simulated clock forward.  With a
    verify-mode ``writer`` (a resume), the same deterministic code path
    regenerates history record-for-record until the log runs out.
    """

    def __init__(self, config: ServiceConfig, *,
                 writer: StoreWriter) -> None:
        from repro.core.pipeline import (
            SCANNER_PTR_NAME,
            _build_engine,
            _scanner_source,
        )

        self.config = config
        self.writer = writer
        self.world = build_world(config.world)
        self.drift_rng = random.Random(config.drift_seed)
        self.day = 0
        self.drift: Dict[str, int] = {
            "devices_spawned": 0, "devices_retired": 0,
            "pool_joined": 0, "pool_left": 0, "hitlist_sweeps": 0,
        }
        self._closed = False
        self._final_seq = 0

        registry = default_registry()
        if config.protocols is not None:
            registry = registry.subset(*config.protocols)
        scanner_source = _scanner_source(self.world)
        publish_scanner_identity(self.world.network, scanner_source,
                                 self.world.rdns,
                                 ptr_name=SCANNER_PTR_NAME)
        label = config.campaign.label
        self.engine = _build_engine(
            self.world, scanner_source,
            EngineConfig(drive_clock=False, seed=config.scan_seed),
            registry, config.scan_shards, name=label)
        self.queue = RealTimeScanQueue(
            self.engine, results=ScanResults(label=label))
        self.campaign = CollectionCampaign(self.world, config.campaign,
                                           scan_queue=self.queue)
        # Subscription order matches the batch pipeline: the queue
        # subscribed first (campaign construction), so each sighting's
        # admit/grab records land before its sighting record — in both
        # original and replayed runs.
        self.engine.attach_store(writer, label=label)
        writer.attach(self.campaign.dataset.bus)
        writer.mark("setup", 0, self.world.clock.now(), {})
        self.campaign.start()

        # One persistent hitlist engine for every sweep: its cool-down
        # map carries across sweeps, so the store-verify invariant (no
        # re-probe inside the TTL) holds by construction as long as
        # hitlist_days exceeds the cool-down (the defaults: 7 > 3).
        self.hitlist_engine = _build_engine(
            self.world, scanner_source,
            EngineConfig(drive_clock=False, seed=config.scan_seed ^ 0xFF),
            registry, config.scan_shards, name="hitlist")
        self.hitlist_engine.attach_store(writer, label="hitlist")
        self.hitlist_scan = ScanResults(label="hitlist")
        self.engines = [self.engine, self.hitlist_engine]
        self._zone_codes = [country.code
                            for country in self.world.geo.countries
                            if country.competing_servers > 0]

        metrics = current_registry()
        self._m_ticks = metrics.counter("service_ticks_total")
        self._m_spawned = metrics.counter("service_devices_spawned_total")
        self._m_retired = metrics.counter("service_devices_retired_total")
        self._m_joined = metrics.counter("service_pool_joined_total")
        self._m_left = metrics.counter("service_pool_left_total")
        self._m_sweeps = metrics.counter("service_hitlist_sweeps_total")

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, config: ServiceConfig) -> "CampaignDaemon":
        """A fresh daemon over a newly created run store."""
        return cls(config, writer=_open_service_writer(config, resume=False))

    @classmethod
    def resume(cls, run_dir: str) -> "CampaignDaemon":
        """Recover a crashed (or stopped) daemon from its run directory.

        The stored config is rebuilt from ``meta.json`` and the writer
        starts in verify mode; calling :meth:`run` then replays history
        deterministically and continues live from the crash point.
        """
        store = RunStore.open(run_dir)
        document = store.meta["config"]
        if not is_service_document(document):
            raise ValueError(
                f"run_dir={run_dir}: holds a batch study, not a service "
                "campaign; use api.resume() instead")
        config = service_config_from_document(document,
                                              store_dir=str(run_dir))
        return cls(config, writer=_open_service_writer(config, resume=True))

    # -- the tick loop -----------------------------------------------------

    def tick(self) -> int:
        """Run one simulated collection day; returns the day number.

        Order: world evolution (drift + pool churn; day 1 runs the
        world as built), then the hitlist sweep when due (start of
        day), then the day's collection + realtime scanning, then the
        day-end mark and (periodically) a checkpoint.
        """
        if self.day >= self.config.campaign_days:
            raise RuntimeError(
                f"campaign complete: {self.day} of "
                f"{self.config.campaign_days} days already run")
        self.day += 1
        if self.day > 1:
            self._evolve()
        if (self.config.hitlist_days
                and self.day % self.config.hitlist_days == 0):
            self._hitlist_sweep()
        self.campaign.advance_days(1)
        self.writer.mark("service", self.day, self.world.clock.now(),
                         self._targets())
        if self.day % self.config.checkpoint_days == 0:
            self.writer.checkpoint(self._checkpoint_state)
        self._m_ticks.inc()
        return self.day

    def run(self) -> None:
        """Tick to the configured horizon, then close the store."""
        while self.day < self.config.campaign_days:
            self.tick()
        self.close()

    def close(self) -> None:
        """Final mark + checkpoint + WAL release (idempotent).

        This is the graceful-shutdown path ``repro serve`` calls when a
        live daemon is attached: whatever the last tick appended is
        anchored by one final checkpoint before the process exits.
        """
        if self._closed:
            return
        self._closed = True
        self.writer.mark("done", self.day, self.world.clock.now(),
                         self._targets())
        self.writer.checkpoint(self._checkpoint_state)
        self._final_seq = self.writer.last_seq
        self.writer.close()

    # -- world evolution ---------------------------------------------------

    def _evolve(self) -> None:
        """One day of longitudinal world evolution (drift RNG only)."""
        config = self.config
        rng = self.drift_rng
        for site in self.world.premises:
            if (config.drift_spawn_rate > 0
                    and rng.random() < config.drift_spawn_rate):
                device = spawn_client_device(self.world, site, rng)
                if device is not None:
                    self.campaign.adopt_client(device)
                    self.drift["devices_spawned"] += 1
                    self._m_spawned.inc()
            if (config.drift_retire_rate > 0
                    and rng.random() < config.drift_retire_rate):
                candidates = [device for device in site.devices
                              if device.type_name == "client"
                              and device.is_ntp_client]
                if candidates:
                    device = rng.choice(candidates)
                    self.campaign.retire_client(device)
                    retire_client_device(self.world, site, device)
                    self.drift["devices_retired"] += 1
                    self._m_retired.inc()
        if (config.pool_join_rate > 0
                and rng.random() < config.pool_join_rate):
            country = rng.choice(self._zone_codes)
            dead = rng.random() < config.campaign.background_dead_rate
            self.campaign.add_background_server(country, dead=dead)
            self.drift["pool_joined"] += 1
            self._m_joined.inc()
        if (config.pool_leave_rate > 0
                and rng.random() < config.pool_leave_rate):
            if self.campaign.remove_random_background(rng) is not None:
                self.drift["pool_left"] += 1
                self._m_left.inc()

    def _hitlist_sweep(self) -> None:
        """Rebuild the hitlist from current world state and sweep it.

        The hitlist drifts with the world (DNS re-resolves at build
        time), so successive sweeps cover different address sets — the
        longitudinal analogue of the paper's one-shot final-week scan.
        """
        hitlist = build_hitlist(self.world, self.config.hitlist)
        sweep = self.hitlist_engine.run(sorted(hitlist.full),
                                        label="hitlist")
        self.hitlist_scan.absorb(sweep)
        self.drift["hitlist_sweeps"] += 1
        self._m_sweeps.inc()

    # -- durable state -----------------------------------------------------

    def _targets(self) -> Dict[str, int]:
        """Cumulative targets-seen denominators for mark records."""
        return {
            self.config.campaign.label: self.queue.results.targets_seen,
            "hitlist": self.hitlist_scan.targets_seen,
        }

    def _checkpoint_state(self) -> Dict:
        report = self.campaign.report()
        cooldowns: Dict = {}
        for engine in self.engines:
            cooldowns.update(engine.cooldown_snapshots())
        return {
            "phase": "service",
            "day": self.day,
            "clock": self.world.clock.now(),
            "campaign": {
                "days_run": report.days_run,
                "addresses": len(self.campaign.dataset),
                "requests": self.campaign.dataset.total_requests,
                "wire_queries": report.wire_queries,
                "fast_queries": report.fast_queries,
                "per_server_requests": report.per_server_requests,
            },
            "targets": self._targets(),
            "drift": dict(self.drift),
            "cooldowns": cooldowns,
            "metrics": current_registry().snapshot(),
        }

    # -- reporting ---------------------------------------------------------

    def tables(self) -> Dict:
        """Headline tables of the campaign so far (RunReport shape)."""
        report = self.campaign.report()
        return {
            "campaign": {
                "days_run": report.days_run,
                "addresses": len(self.campaign.dataset),
                "requests": self.campaign.dataset.total_requests,
                "targets": self._targets(),
            },
            "drift": dict(self.drift),
            "pool": {
                "background_members": self.campaign.background_pool_size(),
                "capture_servers": len(self.campaign.capture_servers),
            },
            "store": {
                "run_dir": str(self.writer.store.run_dir),
                "last_seq": (self._final_seq if self._closed
                             else self.writer.last_seq),
            },
        }


__all__ = ["CampaignDaemon"]
