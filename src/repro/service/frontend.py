"""The serve front end: many concurrent windowed queries, one store.

:class:`QueryService` is the thin layer ``repro serve`` (and
``api.query_window``) put between clients and a
:class:`~repro.service.query.WindowedStudyReader`: it resolves
day-denominated query specs against the store's recorded defaults,
shares one reader (window builds are stateless, so concurrent queries
never contend on fold state), and keeps an LRU of materialized window
frames keyed by ``(anchor checkpoint, t0, t1)`` — the key a frame is
*valid* under, since a window's content can only change if a better
anchor appears, and anchors are immutable once cut.

:class:`ServiceServer` wraps the service in a line-oriented JSON TCP
server (one request object per line, one response per line) with a
graceful-shutdown path: a ``shutdown`` command answers, stops
accepting, and — when a live :class:`~repro.service.daemon.
CampaignDaemon` is attached — flushes a final checkpoint before the
process lets go of the store.

House metric rule: registry counters hold only deterministic counts
(queries, frames built, cache hits); wall-clock latency lives in
:meth:`QueryService.stats` alone.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

from repro.net.clock import DAY
from repro.obs.metrics import current_registry
from repro.service.config import is_service_document
from repro.service.query import WindowedStudyReader
from repro.store.runstore import RunStore

_EPS = 1e-9


def _percentile(samples: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an unsorted sample list (0.0 if empty)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[rank]


class WindowFrameCache:
    """A small thread-safe LRU of materialized window documents."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity={capacity}: must be >= 1")
        self.capacity = capacity
        self._frames: "OrderedDict[Tuple[str, float, float], Dict]" = \
            OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[str, float, float]) -> Optional[Dict]:
        with self._lock:
            document = self._frames.get(key)
            if document is None:
                self.misses += 1
                return None
            self._frames.move_to_end(key)
            self.hits += 1
            return document

    def put(self, key: Tuple[str, float, float], document: Dict) -> None:
        with self._lock:
            self._frames[key] = document
            self._frames.move_to_end(key)
            while len(self._frames) > self.capacity:
                self._frames.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._frames)

    def stats(self) -> Dict:
        with self._lock:
            return {"capacity": self.capacity, "frames": len(self._frames),
                    "hits": self.hits, "misses": self.misses}


class QueryService:
    """Windowed queries over one run store, cached and concurrent-safe."""

    def __init__(self, run_dir, *, window_days: Optional[float] = None,
                 step_days: Optional[float] = None,
                 cache_frames: Optional[int] = None,
                 ctx=None) -> None:
        self.store = RunStore.open(run_dir)
        document = self.store.meta.get("config", {})
        service_doc = document if is_service_document(document) else {}
        self.window_days = float(
            window_days if window_days is not None
            else service_doc.get("window", 7))
        self.step_days = float(
            step_days if step_days is not None
            else service_doc.get("step", 7))
        if self.window_days <= 0:
            raise ValueError(
                f"window_days={self.window_days}: must be positive")
        if self.step_days <= 0:
            raise ValueError(f"step_days={self.step_days}: must be positive")
        if cache_frames is None:
            cache_frames = service_doc.get("serve_cache_frames", 32)
        self.reader = WindowedStudyReader(self.store)
        self.cache = WindowFrameCache(cache_frames)
        #: Single-flight build locks: concurrent queries that miss on
        #: the same frame wait for one build instead of replaying the
        #: same WAL span N times.
        self._builds: Dict[Tuple[str, float, float], threading.Lock] = {}
        self._builds_lock = threading.Lock()
        #: Shared execution context — one pool (or one sequential
        #: context) across every concurrent query; surfaced in stats().
        self.ctx = ctx
        self._latencies: List[float] = []
        self._lock = threading.Lock()
        metrics = current_registry()
        self._m_queries = metrics.counter("service_queries_total")
        self._m_built = metrics.counter("service_frames_built_total")
        self._m_hits = metrics.counter("service_frame_cache_hits_total")

    # -- queries -----------------------------------------------------------

    def frame_document(self, t0: float, t1: float) -> Dict:
        """One window's document (seconds), through the frame cache."""
        anchor = self.reader.anchor_for(t0)
        key = (anchor.name, t0, t1)
        cached = self.cache.get(key)
        if cached is not None:
            self._m_hits.inc()
            return cached
        with self._builds_lock:
            build = self._builds.setdefault(key, threading.Lock())
        with build:
            cached = self.cache.get(key)
            if cached is not None:  # someone built it while we waited
                self._m_hits.inc()
                return cached
            frame = self.reader.window(t0, t1, anchor=anchor)
            self._m_built.inc()
            self.cache.put(key, frame.document)
        with self._builds_lock:
            self._builds.pop(key, None)
        return frame.document

    def query(self, *, since: Optional[float] = None,
              window: Optional[float] = None,
              step: Optional[float] = None) -> Dict:
        """A rolling series of complete windows.  All spans in DAYS."""
        import time

        began = time.perf_counter()
        since_days = float(since if since is not None else 0.0)
        window_days = float(window if window is not None
                            else self.window_days)
        step_days = float(step if step is not None else self.step_days)
        if since_days < 0:
            raise ValueError(f"since={since_days}: must be >= 0 days")
        if window_days <= 0:
            raise ValueError(f"window={window_days}: must be positive days")
        if step_days <= 0:
            raise ValueError(f"step={step_days}: must be positive days")
        horizon = self.reader.horizon()
        windows = []
        t0 = since_days * DAY
        while t0 + window_days * DAY <= horizon + _EPS:
            windows.append(self.frame_document(t0, t0 + window_days * DAY))
            t0 += step_days * DAY
        self._m_queries.inc()
        with self._lock:
            self._latencies.append(time.perf_counter() - began)
        return {
            "horizon": horizon / DAY,
            "since": since_days,
            "window": window_days,
            "step": step_days,
            "windows": windows,
        }

    def stats(self) -> Dict:
        """Service-side query statistics (wall-clock lives only here)."""
        with self._lock:
            latencies = list(self._latencies)
        return {
            "queries": len(latencies),
            "latency_p50_ms": _percentile(latencies, 0.50) * 1e3,
            "latency_p99_ms": _percentile(latencies, 0.99) * 1e3,
            "cache": self.cache.stats(),
            "context": self.ctx.stats() if self.ctx is not None else {},
        }


class _Handler(socketserver.StreamRequestHandler):
    """One JSON object per line in, one per line out."""

    def handle(self) -> None:
        server: "ServiceServer" = self.server.owner  # type: ignore[attr-defined]
        for raw in self.rfile:
            line = raw.strip()
            if not line:
                continue
            try:
                request = json.loads(line.decode("utf-8"))
                response = server.dispatch(request)
            except Exception as error:  # noqa: BLE001 — wire boundary
                response = {"ok": False, "error": f"{type(error).__name__}: "
                                                 f"{error}"}
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()
            if response.get("bye"):
                return


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceServer:
    """``repro serve``: a QueryService behind a threaded JSONL socket."""

    def __init__(self, service: QueryService, *, host: str = "127.0.0.1",
                 port: int = 0, daemon=None) -> None:
        self.service = service
        #: A live CampaignDaemon to flush on shutdown (None for a
        #: read-only server over a finished campaign).
        self.daemon = daemon
        self._tcp = _TcpServer((host, port), _Handler)
        self._tcp.owner = self
        self._thread: Optional[threading.Thread] = None
        self._shutdown = threading.Event()
        self._teardown = threading.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        return self._tcp.server_address[:2]

    def dispatch(self, request: Dict) -> Dict:
        command = request.get("cmd", "query")
        if command == "query":
            document = self.service.query(
                since=request.get("since"),
                window=request.get("window"),
                step=request.get("step"))
            return {"ok": True, **document}
        if command == "stats":
            return {"ok": True, **self.service.stats()}
        if command == "shutdown":
            # Answer first, then tear down off-thread: shutdown() joins
            # the serve loop and would deadlock called from a handler.
            threading.Thread(target=self.shutdown, daemon=True).start()
            return {"ok": True, "bye": True}
        return {"ok": False, "error": f"cmd={command!r}: unknown command "
                                      "(query, stats, shutdown)"}

    def start(self) -> "ServiceServer":
        self._thread = threading.Thread(target=self._tcp.serve_forever,
                                        daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Foreground serve loop (the CLI path); returns after shutdown."""
        if self._thread is None:
            self.start()
        self._shutdown.wait()

    def shutdown(self) -> None:
        """Stop accepting, join the loop, flush the attached daemon.

        Idempotent and synchronizing: a concurrent caller (say, the
        CLI reacting to the same wire ``shutdown`` a handler already
        started) blocks until the first teardown finishes, so when any
        ``shutdown()`` returns the daemon's final checkpoint is on
        disk.
        """
        with self._teardown:
            if self._shutdown.is_set():
                return
            self._shutdown.set()
            self._tcp.shutdown()
            self._tcp.server_close()
            if self._thread is not None:
                self._thread.join(timeout=10.0)
            if self.daemon is not None:
                # Graceful exit: one final mark + checkpoint so the
                # last partial day is anchored before the store is
                # released.
                self.daemon.close()

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def query_server(address: Tuple[str, int], request: Dict, *,
                 timeout: float = 30.0) -> Dict:
    """One request/response round trip against a :class:`ServiceServer`."""
    with socket.create_connection(address, timeout=timeout) as conn:
        conn.sendall(json.dumps(request).encode("utf-8") + b"\n")
        buffer = b""
        while not buffer.endswith(b"\n"):
            chunk = conn.recv(65536)
            if not chunk:
                break
            buffer += chunk
    return json.loads(buffer.decode("utf-8"))
