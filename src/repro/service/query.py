"""Windowed incremental queries: rolling tables without full replay.

:class:`WindowedStudyReader` grows the store's
:class:`~repro.store.reader.IncrementalStudyReader` into a query
engine over *simulated-time spans*: ``window(t0, t1)`` materializes
the paper's Table 2/3 and Figure 2/3 for exactly the grabs whose
timestamps fall in ``[t0, t1)``, with targets-seen denominators taken
as the difference of the cumulative counters carried by the daily
``mark`` records.

The cost contract is the whole point: a window query replays the WAL
from the **nearest usable checkpoint** to the **first mark at or past
the window's end** — never the full log.  Two rules make that sound:

* **anchor slack** — embedded-mode grab timestamps carry up to
  ``protocol_delay_max`` seconds of jitter past their admit time, so a
  grab belonging to window ``[t0, …)`` can sit *before* a checkpoint
  whose clock is ``t0``.  The anchor is therefore the newest
  checkpoint with ``clock + WINDOW_ANCHOR_SLACK <= t0``.
* **mark-bounded stop** — records are appended in admit order and
  marks close each day, so once a mark with ``clock >= t1`` appears,
  no later record can carry a grab time below ``t1``.

Windows are independent of reader state (each call builds a private
fold), so one reader instance serves many concurrent queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.devicetypes import build_table3
from repro.analysis.security import broker_access_control, ssh_outdatedness
from repro.net.clock import DAY
from repro.obs.metrics import current_registry
from repro.scan.engine import EngineConfig
from repro.scan.result import PROTOCOLS, ScanResults
from repro.service.config import is_service_document
from repro.store.checkpoint import list_checkpoints, load_checkpoint
from repro.store.reader import CompactedBehindReader, IncrementalStudyReader
from repro.store.runstore import RunStore
from repro.store.wal import WalError, WalReader

#: Grab timestamps trail their admit time by at most this much
#: (embedded-mode jitter), so a window anchor must sit at least this
#: far before the window start to guarantee no grab is missed.
WINDOW_ANCHOR_SLACK = EngineConfig().protocol_delay_max

#: Float-comparison slack for day-aligned window arithmetic.
_EPS = 1e-9

#: The synthetic anchor name of a from-genesis replay.
GENESIS = "genesis"


@dataclass
class WindowAnchor:
    """A replay starting point: WAL position + clock + denominators."""

    seq: int
    chain: int
    clock: float
    name: str
    targets: Dict[str, int] = field(default_factory=dict)


@dataclass
class WindowFrame:
    """One materialized window: the cacheable document + provenance.

    ``document`` is pure simulated-time content (byte-comparable across
    runs and resume); ``anchor``/``replayed`` are provenance — they
    prove boundedness but never enter the cache key's value or any
    golden comparison.
    """

    start: float
    end: float
    document: Dict
    anchor: WindowAnchor
    replayed: int


def window_document(results: Dict[str, ScanResults], *,
                    start: float, end: float,
                    targets_start: Dict[str, int],
                    targets_end: Dict[str, int],
                    sightings: int, addresses: int,
                    protocols: Iterable[str] = PROTOCOLS,
                    ntp_label: str = "ntp",
                    hitlist_label: str = "hitlist") -> Dict:
    """The canonical tables of one window (Table 2/3, Fig 2/3).

    Shared by every producer — the windowed reader, the serve front
    end, and the golden tests' independent full-replay fold — so "byte
    identical" means one code path formats the numbers and a second
    one only *selects the records*.  Mutates the per-label results'
    ``targets_seen`` to the window delta (callers pass per-window
    accumulators, never shared state).
    """
    labels = sorted(set(targets_start) | set(targets_end) | set(results))
    deltas = {label: (targets_end.get(label, 0)
                      - targets_start.get(label, 0))
              for label in labels}
    ntp = results.get(ntp_label) or ScanResults(label=ntp_label)
    hitlist = results.get(hitlist_label) or ScanResults(label=hitlist_label)
    ntp.targets_seen = deltas.get(ntp_label, 0)
    hitlist.targets_seen = deltas.get(hitlist_label, 0)
    table3 = build_table3(ntp, hitlist)
    fig2 = {}
    for side, scan in ((ntp_label, ntp), (hitlist_label, hitlist)):
        report = ssh_outdatedness(side, scan, by_key=True)
        fig2[side] = {"assessed": report.assessed,
                      "outdated": report.outdated,
                      "unassessable": report.unassessable,
                      "outdated_share": report.outdated_share}
    fig3 = {}
    for protocol in ("mqtt", "amqp"):
        fig3[protocol] = {}
        for side, scan in ((ntp_label, ntp), (hitlist_label, hitlist)):
            report = broker_access_control(side, scan, protocol)
            fig3[protocol][side] = {
                "open": report.open_count,
                "controlled": report.controlled,
                "unknown": report.unknown,
                "access_control_share": report.access_control_share,
            }
    return {
        "window": {"start": start, "end": end,
                   "days": (end - start) / DAY},
        "sourcing": {"sightings": sightings, "addresses": addresses},
        "targets": deltas,
        "table2": [
            {"protocol": protocol,
             "ntp_responsive": len(ntp.responsive_addresses(protocol)),
             "hitlist_responsive":
                 len(hitlist.responsive_addresses(protocol))}
            for protocol in protocols
        ],
        "hit_rates": {ntp_label: ntp.hit_rate(),
                      hitlist_label: hitlist.hit_rate()},
        "table3": [
            {"group": group.representative, "ntp_certs": group.count,
             "hitlist_certs":
                 table3.http_group_count("hitlist", group.representative)}
            for group in table3.http_ntp[:8]
        ],
        "fig2": fig2,
        "fig3": fig3,
    }


class WindowedStudyReader(IncrementalStudyReader):
    """Rolling-window queries over a (possibly live) run store."""

    def __init__(self, store: RunStore) -> None:
        super().__init__(store)
        self._anchors: Dict[str, WindowAnchor] = {}
        document = store.meta.get("config", {})
        #: The realtime scan label (service stores record it; batch
        #: study stores always use "ntp").
        self.ntp_label = (document.get("campaign", {}).get("label", "ntp")
                          if is_service_document(document) else "ntp")
        metrics = current_registry()
        self._m_replayed = metrics.counter("service_replay_records_total")
        self._m_windows = metrics.counter("service_windows_built_total")
        self._m_horizons = metrics.counter("service_horizon_scans_total")

    # -- anchors -----------------------------------------------------------

    def anchors(self) -> List[WindowAnchor]:
        """Every usable checkpoint, seq-ascending (corrupt ones skipped).

        Checkpoint files are immutable once written, so each is loaded
        at most once per reader lifetime.
        """
        loaded = []
        for path in list_checkpoints(self.store.ckpt_dir):
            anchor = self._anchors.get(path.name)
            if anchor is None:
                try:
                    checkpoint = load_checkpoint(path)
                except WalError:
                    continue  # corrupt file; recovery skips it too
                state = checkpoint.state
                anchor = WindowAnchor(
                    seq=checkpoint.seq, chain=checkpoint.chain,
                    clock=state.get("clock", 0.0), name=path.name,
                    targets=dict(state.get("targets", {})))
                self._anchors[path.name] = anchor
            loaded.append(anchor)
        return loaded

    def anchor_for(self, t0: float) -> WindowAnchor:
        """The newest checkpoint safely before ``t0`` (else genesis)."""
        best = WindowAnchor(seq=0, chain=0, clock=float("-inf"),
                            name=GENESIS)
        for anchor in self.anchors():
            if (anchor.clock + WINDOW_ANCHOR_SLACK <= t0 + _EPS
                    and anchor.seq > best.seq):
                best = anchor
        return best

    def _check_compaction(self, anchor: WindowAnchor) -> None:
        horizon = self.store.reload_meta().get("compacted_through", 0)
        if anchor.seq < horizon:
            raise CompactedBehindReader(
                f"{self.store.run_dir}: window needs replay from seq "
                f"{anchor.seq + 1} ({anchor.name}) but the store is "
                f"compacted through seq {horizon}; that history is gone")

    # -- queries -----------------------------------------------------------

    def horizon(self) -> float:
        """Clock of the newest day-end mark (the complete-data frontier).

        Bounded: replays only the tail past the latest checkpoint.
        """
        anchors = self.anchors()
        start = anchors[-1] if anchors else WindowAnchor(
            seq=0, chain=0, clock=float("-inf"), name=GENESIS)
        self._check_compaction(start)
        reader = WalReader(self.store.wal_dir, start_seq=start.seq + 1,
                           chain=start.chain)
        clock = start.clock if start.clock > float("-inf") else 0.0
        replayed = 0
        for record in reader.records():
            replayed += 1
            if record.get("t") == "mark":
                clock = max(clock, record["clock"])
        self._m_replayed.inc(replayed)
        self._m_horizons.inc()
        return clock

    def window(self, t0: float, t1: float, *,
               anchor: Optional[WindowAnchor] = None) -> WindowFrame:
        """Materialize one ``[t0, t1)`` window from bounded replay."""
        if not t1 > t0:
            raise ValueError(f"window=[{t0}, {t1}): end must exceed start")
        if anchor is None:
            anchor = self.anchor_for(t0)
        self._check_compaction(anchor)
        from repro.io.jsonl import grab_from_json

        reader = WalReader(self.store.wal_dir, start_seq=anchor.seq + 1,
                           chain=anchor.chain)
        results: Dict[str, ScanResults] = {}
        baseline = dict(anchor.targets)
        end_targets = dict(anchor.targets)
        sightings = 0
        window_addresses: Set[str] = set()
        replayed = 0
        for record in reader.records():
            replayed += 1
            kind = record.get("t")
            if kind == "grab":
                grab = grab_from_json(record)
                if t0 <= grab.time < t1:
                    label = record["label"]
                    bucket = results.get(label)
                    if bucket is None:
                        bucket = results[label] = ScanResults(label=label)
                    bucket.bucket(grab.protocol).append(grab)
            elif kind == "sighting":
                if t0 <= record["time"] < t1:
                    sightings += 1
                    window_addresses.add(record["addr"])
            elif kind == "mark":
                clock = record["clock"]
                if clock <= t0 + _EPS:
                    baseline.update(record["targets"])
                if clock <= t1 + _EPS:
                    end_targets.update(record["targets"])
                if clock >= t1 - _EPS:
                    break
        document = window_document(
            results, start=t0, end=t1,
            targets_start=baseline, targets_end=end_targets,
            sightings=sightings, addresses=len(window_addresses),
            ntp_label=self.ntp_label)
        self._m_replayed.inc(replayed)
        self._m_windows.inc()
        return WindowFrame(start=t0, end=t1, document=document,
                           anchor=anchor, replayed=replayed)

    def series(self, *, since: float, window: float, step: float,
               horizon: Optional[float] = None) -> List[WindowFrame]:
        """Every complete window of a rolling span (seconds, simulated).

        Windows whose end lies past the data horizon are *not*
        materialized — a partial window would silently undercount, and
        the next refresh would produce a different "same" window.
        """
        if window <= 0:
            raise ValueError(f"window={window}: must be positive")
        if step <= 0:
            raise ValueError(f"step={step}: must be positive")
        if horizon is None:
            horizon = self.horizon()
        frames = []
        t0 = since
        while t0 + window <= horizon + _EPS:
            frames.append(self.window(t0, t0 + window))
            t0 += step
        return frames


class WindowedAttributionReader:
    """Rolling strategy-attribution windows over a telescope stream.

    The attribution counterpart of :class:`WindowedStudyReader`: the
    same span semantics (``[t0, t1)`` windows, complete-windows-only
    series against a data horizon) applied to an in-memory
    :class:`~repro.core.telescope.InboundEvent` stream instead of a WAL
    replay.  Events are held in a canonical sort so every query — and
    every worker count, when a pool is threaded through — produces
    byte-identical window documents.
    """

    def __init__(self, events, *, truth=None, rdns=None,
                 pool=None) -> None:
        self._events = sorted(
            events, key=lambda e: (e.time, e.src, e.dst, e.dst_port))
        self._truth = dict(truth) if truth else {}
        self._rdns = rdns
        self._pool = pool
        self._m_windows = current_registry().counter(
            "service_attribution_windows_total")

    def horizon(self) -> float:
        """The newest event time (the complete-data frontier)."""
        return self._events[-1].time if self._events else 0.0

    def window(self, t0: float, t1: float) -> Dict:
        """Attribute one ``[t0, t1)`` span of the event stream."""
        from repro.core.attribution import attribute_events

        if not t1 > t0:
            raise ValueError(f"window=[{t0}, {t1}): end must exceed start")
        subset = [event for event in self._events
                  if t0 <= event.time < t1]
        report, _ = attribute_events(subset, truth=self._truth,
                                     rdns=self._rdns, pool=self._pool)
        strategies: Dict[str, int] = {}
        for attribution in report.attributions:
            strategies[attribution.strategy] = (
                strategies.get(attribution.strategy, 0) + 1)
        self._m_windows.inc()
        return {
            "window": {"start": t0, "end": t1, "days": (t1 - t0) / DAY},
            "events": len(subset),
            "clusters": len(report.attributions),
            "strategies": dict(sorted(strategies.items())),
            "accuracy": report.tables()["accuracy"],
        }

    def series(self, *, since: float, window: float, step: float,
               horizon: Optional[float] = None) -> List[Dict]:
        """Every complete attribution window of a rolling span.

        Same rule as :meth:`WindowedStudyReader.series`: windows whose
        end lies past the horizon are not materialized — a partial
        window would shift cluster verdicts as late probes arrive.
        """
        if window <= 0:
            raise ValueError(f"window={window}: must be positive")
        if step <= 0:
            raise ValueError(f"step={step}: must be positive")
        if horizon is None:
            horizon = self.horizon()
        documents = []
        t0 = since
        while t0 + window <= horizon + _EPS:
            documents.append(self.window(t0, t0 + window))
            t0 += step
        return documents
