"""Durable run store: write-ahead log, checkpoints, resume, analysis.

The paper's measurement ran for four weeks and ingested billions of
client addresses; a production deployment of the sourcing→scan pipeline
must survive process death without losing history or re-probing targets
inside their cool-down.  This package provides that durability layer:

* :mod:`repro.store.wal` — segmented, CRC'd, fsync-batched append log;
* :mod:`repro.store.checkpoint` — atomic periodic state snapshots;
* :mod:`repro.store.runstore` — the run directory (recovery, compaction,
  offline verify/inspect);
* :mod:`repro.store.writer` — the bus stage streaming a run into the
  store, with deterministic-replay recovery;
* :mod:`repro.store.reader` — incremental analysis over stored segments.
"""

from repro.store.checkpoint import (
    Checkpoint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.store.reader import (
    CompactedBehindReader,
    IncrementalStudyReader,
    read_study,
)
from repro.store.runstore import Recovery, RunStore
from repro.store.wal import (
    RecoveryError,
    WalError,
    WalReader,
    WalWriter,
    chain_extend,
    fault_injection,
    list_segments,
    record_crc,
    segment_name,
    verify_record,
)
from repro.store.writer import StoreWriter

__all__ = [
    "Checkpoint",
    "CompactedBehindReader",
    "IncrementalStudyReader",
    "Recovery",
    "RecoveryError",
    "RunStore",
    "StoreWriter",
    "WalError",
    "WalReader",
    "WalWriter",
    "chain_extend",
    "fault_injection",
    "latest_checkpoint",
    "list_checkpoints",
    "list_segments",
    "load_checkpoint",
    "read_study",
    "record_crc",
    "save_checkpoint",
    "segment_name",
    "verify_record",
]
