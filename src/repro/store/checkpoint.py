"""Atomic checkpoints: periodic state snapshots keyed to a WAL position.

A checkpoint is one JSON document written atomically (temp file +
``os.replace``) under ``run_dir/checkpoints/``.  It names the WAL
sequence number it covers, the chain CRC at that point, and a state
snapshot (campaign counters, scheduler cool-down maps, metrics
registry, clock position).  Its own CRC protects the document.

Checkpoints serve two masters:

* **compaction** — segments wholly at or below the latest checkpoint's
  sequence number can be deleted, because the chain CRC lets recovery
  verify a replayed prefix without the records themselves;
* **offline verification** — ``repro store verify`` re-derives the
  chain from the surviving log and cross-checks every checkpoint that
  falls inside it.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.io.jsonl import to_canonical_json
from repro.store.wal import WalError

PathLike = Union[str, Path]

CHECKPOINT_PREFIX = "ckpt-"
CHECKPOINT_SUFFIX = ".json"
CHECKPOINT_VERSION = 1


@dataclass
class Checkpoint:
    """One durable snapshot of run state at WAL position ``seq``."""

    seq: int
    chain: int
    state: Dict = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    def body(self) -> Dict:
        return {"kind": "checkpoint", "version": self.version,
                "seq": self.seq, "chain": self.chain, "state": self.state}

    def crc(self) -> str:
        canonical = to_canonical_json(self.body())
        return f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"

    @property
    def name(self) -> str:
        return f"{CHECKPOINT_PREFIX}{self.seq:012d}{CHECKPOINT_SUFFIX}"


def save_checkpoint(ckpt_dir: PathLike, checkpoint: Checkpoint) -> Path:
    """Write ``checkpoint`` atomically; returns its path.

    The rename is the commit point: a crash mid-write leaves at worst a
    ``*.tmp`` file that loaders ignore, never a half-written checkpoint.
    """
    ckpt_dir = Path(ckpt_dir)
    ckpt_dir.mkdir(parents=True, exist_ok=True)
    document = dict(checkpoint.body(), crc=checkpoint.crc())
    path = ckpt_dir / checkpoint.name
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(to_canonical_json(document) + "\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    return path


def load_checkpoint(path: PathLike) -> Checkpoint:
    """Read and CRC-validate one checkpoint file."""
    path = Path(path)
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise WalError(f"{path.name}: malformed checkpoint") from exc
    if not isinstance(document, dict) or document.get("kind") != "checkpoint":
        raise WalError(f"{path.name}: not a checkpoint document")
    checkpoint = Checkpoint(
        seq=document.get("seq", 0),
        chain=document.get("chain", 0),
        state=document.get("state", {}),
        version=document.get("version", CHECKPOINT_VERSION),
    )
    if checkpoint.crc() != document.get("crc"):
        raise WalError(f"{path.name}: checkpoint CRC mismatch")
    return checkpoint


def list_checkpoints(ckpt_dir: PathLike) -> List[Path]:
    """Checkpoint files in ``ckpt_dir``, ordered by sequence number."""
    ckpt_dir = Path(ckpt_dir)
    if not ckpt_dir.is_dir():
        return []
    return sorted(
        path for path in ckpt_dir.iterdir()
        if path.name.startswith(CHECKPOINT_PREFIX)
        and path.name.endswith(CHECKPOINT_SUFFIX))


def latest_checkpoint(ckpt_dir: PathLike) -> Optional[Checkpoint]:
    """The newest valid checkpoint, skipping corrupt files.

    A crash can tear at most the in-flight checkpoint (the atomic
    rename makes that one invisible), but a corrupted newest file must
    not wedge recovery — fall back to the next-newest valid one.
    """
    for path in reversed(list_checkpoints(ckpt_dir)):
        try:
            return load_checkpoint(path)
        except WalError:
            continue
    return None
