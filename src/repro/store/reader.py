"""Incremental readers: analysis over a store without the live run.

``analyze`` used to require the full in-memory study (or its saved
result files).  :class:`IncrementalStudyReader` instead folds a run
directory's WAL into :class:`~repro.scan.result.ScanResults` — and it
does so *incrementally*: each :meth:`refresh` picks up only records
appended since the last call, so a monitoring loop can re-analyze a
running (or crashed) campaign in time proportional to the new tail,
not the whole history.

Grab records rebuild the per-protocol result buckets; ``mark`` records
carry the cumulative ``targets_seen`` denominators, so hit rates from
the store match the live pipeline's.  Compaction deletes old segments,
so analysis over a compacted store only covers the surviving suffix —
the pipeline therefore never compacts implicitly (``repro store
compact`` is an explicit operator decision trading history for disk).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Union

from repro.obs.metrics import current_registry
from repro.scan.result import ScanResults
from repro.store.runstore import RunStore
from repro.store.wal import WalError, WalReader

PathLike = Union[str, Path]


class CompactedBehindReader(WalError):
    """Compaction deleted records an open incremental reader still needs.

    ``repro store compact`` records its horizon in ``meta.json``
    *before* deleting segments; an :class:`IncrementalStudyReader`
    whose fold position lags behind that horizon would silently skip
    the deleted records on its next :meth:`~IncrementalStudyReader.
    refresh` (the WAL reader cannot distinguish "compacted away" from
    "never written").  Raising instead makes the gap explicit: reopen
    with :func:`read_study` to analyze the surviving suffix.
    """


class IncrementalStudyReader:
    """Folds a store's WAL into per-label scan results, resumably."""

    def __init__(self, store: RunStore) -> None:
        self.store = store
        self.results: Dict[str, ScanResults] = {}
        self.sightings = 0
        self.marks = 0
        self.last_seq = store.meta.get("compacted_through", 0)
        self._chain = store.meta.get("chain_at_compaction", 0)
        metrics = current_registry()
        self._m_read = metrics.counter("store_analyze_records_total")
        self._m_refreshes = metrics.counter("store_analyze_refreshes_total")

    def _bucket(self, label: str) -> ScanResults:
        results = self.results.get(label)
        if results is None:
            results = ScanResults(label=label)
            self.results[label] = results
        return results

    def refresh(self) -> int:
        """Fold records appended since the last call; returns how many.

        Raises :class:`CompactedBehindReader` if the store was compacted
        past this reader's fold position since the last refresh (the
        horizon is re-read from ``meta.json``, so compaction by another
        process is detected too).
        """
        from repro.io.jsonl import grab_from_json

        meta = self.store.reload_meta()
        horizon = meta.get("compacted_through", 0)
        if horizon > self.last_seq:
            raise CompactedBehindReader(
                f"{self.store.run_dir}: store compacted through seq "
                f"{horizon} but this reader last folded seq "
                f"{self.last_seq}; the records in between were deleted — "
                "reopen with read_study() to analyze the surviving suffix")
        reader = WalReader(self.store.wal_dir, start_seq=self.last_seq + 1,
                           chain=self._chain)
        folded = 0
        for record in reader.records():
            folded += 1
            kind = record.get("t")
            if kind == "grab":
                grab = grab_from_json(record)
                self._bucket(record["label"]).bucket(
                    grab.protocol).append(grab)
            elif kind == "mark":
                self.marks += 1
                for label, seen in record.get("targets", {}).items():
                    # Marks carry *cumulative* denominators; the latest
                    # mark wins, so replays of the same store converge.
                    self._bucket(label).targets_seen = seen
            elif kind == "sighting":
                self.sightings += 1
        self.last_seq = max(reader.last_seq, self.last_seq)
        self._chain = reader.chain
        self._m_read.inc(folded)
        self._m_refreshes.inc()
        return folded

    def scan(self, label: str) -> ScanResults:
        """The (possibly empty) results for one scan label."""
        return self._bucket(label)


def read_study(run_dir: PathLike) -> IncrementalStudyReader:
    """Open ``run_dir`` and fold its entire surviving WAL once."""
    reader = IncrementalStudyReader(RunStore.open(run_dir))
    reader.refresh()
    return reader
