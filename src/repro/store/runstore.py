"""The run store: one directory holding a study's durable state.

Layout of a run directory::

    run_dir/
      meta.json          — store identity: config snapshot, cooldown TTL,
                           WAL tuning, compaction horizon
      wal/wal-*.jsonl    — the segmented write-ahead log
      checkpoints/ckpt-* — atomic state snapshots

:class:`RunStore` owns the layout and the crash-safety protocol around
it: creating a store, recovering one after a crash (torn-tail repair +
chain verification), compacting segments below the latest checkpoint,
and the offline ``verify``/``inspect`` queries behind the CLI.

The **cooldown invariant** checked by :meth:`RunStore.verify` is the
paper's own scanning-ethics rule (Appendix A.2.1): the same address is
never probed twice within the engine's cool-down TTL.  Every admission
is logged, so the check is a pure fold over the surviving WAL.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.io.jsonl import to_canonical_json
from repro.obs.metrics import current_registry
from repro.store.checkpoint import (
    Checkpoint,
    latest_checkpoint,
    list_checkpoints,
    load_checkpoint,
    save_checkpoint,
)
from repro.store.wal import (
    WalError,
    WalReader,
    WalWriter,
    chain_extend,
    list_segments,
    segment_first_seq,
)

PathLike = Union[str, Path]

META_NAME = "meta.json"
META_VERSION = 1


@dataclass
class Recovery:
    """What survived a crash: the replayable tail plus its provenance."""

    #: Records after the compaction horizon, in sequence order.
    records: List[Dict] = field(default_factory=list)
    #: Highest surviving sequence number (0 for an empty store).
    last_seq: int = 0
    #: Chain CRC folded through ``last_seq``.
    chain: int = 0
    #: Records at or below this seq were compacted away.
    compacted_through: int = 0
    chain_at_compaction: int = 0
    #: Newest valid checkpoint, if any.
    checkpoint: Optional[Checkpoint] = None
    #: Torn-tail lines truncated from the final segment.
    truncated_lines: int = 0


class RunStore:
    """A run directory's durable store (WAL + checkpoints + meta)."""

    def __init__(self, run_dir: PathLike, meta: Dict) -> None:
        self.run_dir = Path(run_dir)
        self.meta = meta
        self.wal_dir = self.run_dir / "wal"
        self.ckpt_dir = self.run_dir / "checkpoints"

    # -- lifecycle ---------------------------------------------------------

    @classmethod
    def create(cls, run_dir: PathLike, *, config: Dict,
               cooldown_ttl: float,
               segment_max_records: int = 4096,
               fsync_every: int = 256) -> "RunStore":
        """Initialize an empty store; refuses to clobber an existing one."""
        run_dir = Path(run_dir)
        if (run_dir / META_NAME).exists():
            raise WalError(f"{run_dir}: store already exists "
                           "(use resume, or choose a fresh directory)")
        run_dir.mkdir(parents=True, exist_ok=True)
        (run_dir / "wal").mkdir(exist_ok=True)
        (run_dir / "checkpoints").mkdir(exist_ok=True)
        meta = {
            "kind": "run-store",
            "version": META_VERSION,
            "config": config,
            "cooldown_ttl": cooldown_ttl,
            "segment_max_records": segment_max_records,
            "fsync_every": fsync_every,
            "compacted_through": 0,
            "chain_at_compaction": 0,
        }
        store = cls(run_dir, meta)
        store._save_meta()
        return store

    @classmethod
    def open(cls, run_dir: PathLike) -> "RunStore":
        run_dir = Path(run_dir)
        path = run_dir / META_NAME
        if not path.exists():
            raise WalError(f"{run_dir}: not a run store (no {META_NAME})")
        try:
            meta = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise WalError(f"{path}: malformed store metadata") from exc
        if meta.get("kind") != "run-store":
            raise WalError(f"{path}: not a run store metadata file")
        if meta.get("version") != META_VERSION:
            raise WalError(
                f"{path}: unsupported store version {meta.get('version')}")
        return cls(run_dir, meta)

    def reload_meta(self) -> Dict:
        """Re-read ``meta.json`` from disk (another process may have
        compacted).  A mid-replace read keeps the in-memory copy —
        ``_save_meta``'s atomic rename guarantees the *next* read sees a
        complete document."""
        path = self.run_dir / META_NAME
        try:
            self.meta = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            pass
        return self.meta

    def _save_meta(self) -> None:
        # Same commit protocol as checkpoints: the rename is atomic, so
        # meta either reflects the old horizon or the new one — crashes
        # mid-compaction can strand deletable segments but never lose
        # the chain needed to verify what remains.
        path = self.run_dir / META_NAME
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(to_canonical_json(self.meta) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)

    # -- writers -----------------------------------------------------------

    def new_writer(self) -> WalWriter:
        """A writer for a fresh (never-written) store."""
        return WalWriter(
            self.wal_dir,
            segment_max_records=self.meta["segment_max_records"],
            fsync_every=self.meta["fsync_every"],
        )

    def writer_for_append(self, recovery: Recovery) -> WalWriter:
        """A writer positioned exactly after the recovered tail."""
        segments = list_segments(self.wal_dir)
        active: Optional[Path] = None
        active_records = 0
        if segments and recovery.last_seq > 0:
            tail = segments[-1]
            first = segment_first_seq(tail.name)
            if first <= recovery.last_seq:
                active = tail
                active_records = recovery.last_seq - first + 1
        return WalWriter(
            self.wal_dir,
            segment_max_records=self.meta["segment_max_records"],
            fsync_every=self.meta["fsync_every"],
            next_seq=recovery.last_seq + 1,
            chain=recovery.chain,
            active_segment=active,
            active_records=active_records,
        )

    # -- recovery ----------------------------------------------------------

    def recover(self, *, repair: bool = True) -> Recovery:
        """Read everything that survived, verifying CRCs and the chain.

        With ``repair=True`` (the default for resuming) a torn tail is
        truncated in place so the next writer appends to a clean
        segment; ``repair=False`` leaves the files untouched (used by
        the read-only CLI paths).
        """
        compacted_through = self.meta.get("compacted_through", 0)
        chain_at_compaction = self.meta.get("chain_at_compaction", 0)
        reader = WalReader(self.wal_dir, start_seq=compacted_through + 1,
                           chain=chain_at_compaction)
        records = list(reader.records(repair=repair))
        checkpoint = latest_checkpoint(self.ckpt_dir)
        if (checkpoint is not None
                and compacted_through <= checkpoint.seq <= reader.last_seq):
            # Cross-check the replayed chain against the checkpoint's.
            check = chain_at_compaction
            seq = compacted_through
            if checkpoint.seq > compacted_through:
                for record in records:
                    check = chain_extend(check, record["crc"])
                    seq = record["seq"]
                    if seq == checkpoint.seq:
                        break
            if seq != checkpoint.seq or check != checkpoint.chain:
                raise WalError(
                    f"checkpoint {checkpoint.name} chain mismatch: "
                    f"log disagrees with snapshot at seq {checkpoint.seq}")
        metrics = current_registry()
        metrics.counter("store_recovery_records_total").inc(len(records))
        metrics.counter("store_recovery_truncated_lines_total").inc(
            reader.truncated_lines)
        return Recovery(
            records=records,
            last_seq=max(reader.last_seq, compacted_through),
            chain=reader.chain,
            compacted_through=compacted_through,
            chain_at_compaction=chain_at_compaction,
            checkpoint=checkpoint,
            truncated_lines=reader.truncated_lines,
        )

    # -- checkpoints ---------------------------------------------------------

    def write_checkpoint(self, checkpoint: Checkpoint) -> Path:
        path = save_checkpoint(self.ckpt_dir, checkpoint)
        current_registry().counter("store_checkpoints_total").inc()
        return path

    # -- compaction ----------------------------------------------------------

    def compact(self) -> Dict:
        """Delete whole segments covered by the latest checkpoint.

        Only segments *entirely* at or below the checkpoint's sequence
        number go (and never the last segment, which the active writer
        may still be appending to).  The meta horizon is committed
        **before** any file is deleted: a crash between the two leaves
        stale segments the reader already knows to skip.
        """
        checkpoint = latest_checkpoint(self.ckpt_dir)
        report = {"segments_deleted": 0, "records_dropped": 0,
                  "compacted_through": self.meta.get("compacted_through", 0)}
        if checkpoint is None:
            return report
        segments = list_segments(self.wal_dir)
        deletable: List[Path] = []
        for index, path in enumerate(segments[:-1]):
            next_first = segment_first_seq(segments[index + 1].name)
            if next_first - 1 <= checkpoint.seq:
                deletable.append(path)
        if not deletable:
            return report
        horizon = segment_first_seq(
            segments[len(deletable)].name) - 1
        # Fold the chain through every record being dropped so readers
        # can still verify the surviving suffix end-to-end.
        reader = WalReader(
            self.wal_dir,
            start_seq=self.meta.get("compacted_through", 0) + 1,
            chain=self.meta.get("chain_at_compaction", 0))
        dropped = 0
        for record in reader.records():
            dropped += 1
            if record["seq"] == horizon:
                break
        self.meta["compacted_through"] = horizon
        self.meta["chain_at_compaction"] = reader.chain
        self._save_meta()
        for path in deletable:
            path.unlink()
        metrics = current_registry()
        metrics.counter("store_compactions_total").inc()
        metrics.counter("store_compacted_segments_total").inc(len(deletable))
        report.update(segments_deleted=len(deletable),
                      records_dropped=dropped, compacted_through=horizon)
        return report

    # -- offline queries -----------------------------------------------------

    def verify(self) -> Dict:
        """Full structural + invariant check; returns a findings report.

        Checks, in order: record CRCs and sequence contiguity (via the
        reader), chain agreement with every checkpoint inside the
        surviving log, and the cooldown invariant — no address admitted
        twice by one engine within ``cooldown_ttl`` simulated seconds.
        """
        problems: List[str] = []
        compacted_through = self.meta.get("compacted_through", 0)
        reader = WalReader(self.wal_dir, start_seq=compacted_through + 1,
                           chain=self.meta.get("chain_at_compaction", 0))
        ttl = self.meta.get("cooldown_ttl", 0.0)
        last_admit: Dict[tuple, float] = {}
        cooldown_violations = 0
        counts: Dict[str, int] = {}
        records = 0
        chains_at: Dict[int, int] = {}
        try:
            for record in reader.records():
                records += 1
                kind = record.get("t", "unknown")
                counts[kind] = counts.get(kind, 0) + 1
                chains_at[record["seq"]] = reader.chain
                if kind == "admit":
                    key = (record["engine"], record["addr"])
                    previous = last_admit.get(key)
                    if previous is not None and record["time"] - previous < ttl:
                        cooldown_violations += 1
                        problems.append(
                            f"seq {record['seq']}: {record['addr']} admitted "
                            f"by {record['engine']} {record['time'] - previous:.0f}s "
                            f"after previous admit (TTL {ttl:.0f}s)")
                    last_admit[key] = record["time"]
        except WalError as exc:
            problems.append(str(exc))
        for path in list_checkpoints(self.ckpt_dir):
            try:
                checkpoint = load_checkpoint(path)
            except WalError as exc:
                problems.append(str(exc))
                continue
            if checkpoint.seq <= compacted_through:
                continue  # its records are gone; nothing to compare
            expected = chains_at.get(checkpoint.seq)
            if expected is None:
                problems.append(
                    f"{path.name}: no log record at seq {checkpoint.seq}")
            elif expected != checkpoint.chain:
                problems.append(
                    f"{path.name}: chain mismatch at seq {checkpoint.seq}")
        return {
            "ok": not problems,
            "records": records,
            "records_by_kind": counts,
            "last_seq": reader.last_seq,
            "torn_tail_lines": reader.truncated_lines,
            "compacted_through": compacted_through,
            "checkpoints": len(list_checkpoints(self.ckpt_dir)),
            "cooldown_violations": cooldown_violations,
            "problems": problems,
        }

    def inspect(self) -> Dict:
        """Cheap summary for the CLI: layout, sizes, positions."""
        segments = list_segments(self.wal_dir)
        checkpoints = list_checkpoints(self.ckpt_dir)
        latest = latest_checkpoint(self.ckpt_dir)
        return {
            "run_dir": str(self.run_dir),
            "segments": len(segments),
            "segment_files": [path.name for path in segments],
            "wal_bytes": sum(path.stat().st_size for path in segments),
            "checkpoints": len(checkpoints),
            "latest_checkpoint_seq": latest.seq if latest else None,
            "compacted_through": self.meta.get("compacted_through", 0),
            "cooldown_ttl": self.meta.get("cooldown_ttl"),
            "segment_max_records": self.meta.get("segment_max_records"),
            "fsync_every": self.meta.get("fsync_every"),
            "config": self.meta.get("config", {}),
        }
