"""Segmented write-ahead log: append-only JSONL with CRCs and fsync batching.

The WAL is the durability primitive of :mod:`repro.store`: every event
the pipeline wants to survive a crash (sightings, grabs, scheduler
admissions, progress marks) is appended as one JSONL record before the
in-memory state that produced it is considered safe.  The format is the
repo's canonical JSONL (:func:`repro.io.to_canonical_json` — sorted
keys, raw unicode) with two extra fields per record:

* ``seq`` — a contiguous sequence number starting at 1, so readers can
  detect gaps and writers can resume exactly where a crash stopped;
* ``crc`` — CRC-32 of the canonical record (without the ``crc`` field
  itself), so bit rot and torn writes are detected record-by-record.

Records are grouped into segments (``wal-<firstseq>.jsonl``) of at most
``segment_max_records`` records; whole segments below a checkpoint can
be deleted by compaction without rewriting anything.  Durability is
batched: the file is flushed + fsynced every ``fsync_every`` records,
and a record counts as **acked** only once its batch is synced — the
"no lost acked records" invariant the crash-injection tests enforce is
stated in terms of :attr:`WalWriter.acked_seq`.

A rolling **chain CRC** (CRC-32 folded over every record's ``crc``)
summarizes the whole log prefix in one integer.  Checkpoints record the
chain at their sequence number, which lets recovery verify a replayed
prefix even after the segments that held it were compacted away.
"""

from __future__ import annotations

import json
import os
import zlib
from contextlib import contextmanager
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Tuple, Union

from repro.io.jsonl import to_canonical_json
from repro.obs.metrics import current_registry

PathLike = Union[str, Path]

SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"
#: Digits in a segment's zero-padded first sequence number.  Wide
#: enough for multi-year campaigns (12 digits ≈ 10¹² records).
SEGMENT_DIGITS = 12


class WalError(ValueError):
    """Raised for structural log corruption (gaps, CRC failures)."""


class RecoveryError(WalError):
    """Raised when a recovery replay diverges from the logged run."""


# -- fault injection (crash tests) ------------------------------------------

#: Test hook called at durability-relevant points; raising from it
#: simulates a crash.  Signature: ``hook(point, seq, acked_seq)`` where
#: ``point`` is one of ``pre-append``, ``post-append``, ``pre-fsync``,
#: ``post-fsync``, ``checkpoint``.
_fault_hook: Optional[Callable[[str, int, int], None]] = None


@contextmanager
def fault_injection(hook: Callable[[str, int, int], None]):
    """Install ``hook`` as the store-wide fault hook for a ``with`` block."""
    global _fault_hook
    previous = _fault_hook
    _fault_hook = hook
    try:
        yield
    finally:
        _fault_hook = previous


def fault_point(point: str, seq: int, acked: int) -> None:
    """Invoke the installed fault hook (no-op outside crash tests)."""
    if _fault_hook is not None:
        _fault_hook(point, seq, acked)


# -- record framing ----------------------------------------------------------

def record_crc(seq: int, payload: Dict) -> str:
    """CRC-32 (8 hex digits) of the canonical ``{seq, **payload}`` record."""
    canonical = to_canonical_json({"seq": seq, **payload})
    return f"{zlib.crc32(canonical.encode('utf-8')) & 0xFFFFFFFF:08x}"


def chain_extend(chain: int, crc_hex: str) -> int:
    """Fold one record's CRC into the rolling chain CRC."""
    return zlib.crc32(crc_hex.encode("ascii"), chain) & 0xFFFFFFFF


def verify_record(record: Dict) -> bool:
    """Whether ``record``'s stored CRC matches its contents."""
    stored = record.get("crc")
    seq = record.get("seq")
    if not isinstance(stored, str) or not isinstance(seq, int):
        return False
    payload = {key: value for key, value in record.items()
               if key not in ("seq", "crc")}
    return record_crc(seq, payload) == stored


def segment_name(first_seq: int) -> str:
    return f"{SEGMENT_PREFIX}{first_seq:0{SEGMENT_DIGITS}d}{SEGMENT_SUFFIX}"


def segment_first_seq(name: str) -> int:
    """The first sequence number encoded in a segment file name."""
    stem = name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
    if (not name.startswith(SEGMENT_PREFIX)
            or not name.endswith(SEGMENT_SUFFIX) or not stem.isdigit()):
        raise WalError(f"not a WAL segment name: {name!r}")
    return int(stem)


def list_segments(wal_dir: PathLike) -> List[Path]:
    """Every segment in ``wal_dir``, ordered by first sequence number."""
    wal_dir = Path(wal_dir)
    if not wal_dir.is_dir():
        return []
    segments = [path for path in wal_dir.iterdir()
                if path.name.startswith(SEGMENT_PREFIX)
                and path.name.endswith(SEGMENT_SUFFIX)]
    return sorted(segments, key=lambda path: segment_first_seq(path.name))


# -- writer ------------------------------------------------------------------

class WalWriter:
    """Appends records to segment files with batched fsync.

    ``next_seq``/``chain``/``active_segment`` let a recovered run
    continue appending exactly where the surviving log ends.
    """

    def __init__(self, wal_dir: PathLike, *,
                 segment_max_records: int = 4096,
                 fsync_every: int = 256,
                 next_seq: int = 1,
                 chain: int = 0,
                 active_segment: Optional[Path] = None,
                 active_records: int = 0) -> None:
        if segment_max_records < 1:
            raise ValueError(f"segment_max_records={segment_max_records}: "
                             "must be >= 1")
        if fsync_every < 1:
            raise ValueError(f"fsync_every={fsync_every}: must be >= 1")
        self.wal_dir = Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.segment_max_records = segment_max_records
        self.fsync_every = fsync_every
        self._next_seq = next_seq
        self._chain = chain
        self._acked_seq = next_seq - 1
        self._pending = 0
        self._segment_records = active_records
        self._handle = None
        if active_segment is not None:
            # Line buffered: each record reaches the OS at append time;
            # only the fsync (the ack) is batched.  A record must never
            # linger in a userspace buffer where a crashed writer could
            # replay it into the file after recovery has moved on.
            self._handle = open(active_segment, "a", encoding="utf-8",
                                buffering=1)
        metrics = current_registry()
        self._m_segments = metrics.counter("store_segments_total")
        self._m_bytes = metrics.counter("store_bytes_total")
        self._m_fsyncs = metrics.counter("store_fsyncs_total")
        self._m_records: Dict[str, object] = {}
        self._registry = metrics

    # -- introspection -----------------------------------------------------

    @property
    def last_seq(self) -> int:
        """Sequence number of the last appended record (0 when none)."""
        return self._next_seq - 1

    @property
    def acked_seq(self) -> int:
        """Highest sequence number known durable (flushed + fsynced)."""
        return self._acked_seq

    @property
    def chain(self) -> int:
        """Rolling chain CRC over every appended record."""
        return self._chain

    # -- appending ---------------------------------------------------------

    def append(self, payload: Dict) -> int:
        """Append one record; returns its sequence number.

        The record is durable only once its fsync batch completes — use
        :attr:`acked_seq` (or call :meth:`sync`) for the durability
        horizon.
        """
        seq = self._next_seq
        crc = record_crc(seq, payload)
        line = to_canonical_json({"crc": crc, "seq": seq, **payload}) + "\n"
        fault_point("pre-append", seq, self._acked_seq)
        if self._handle is None or self._segment_records >= self.segment_max_records:
            self._roll(seq)
        self._handle.write(line)
        self._segment_records += 1
        self._next_seq = seq + 1
        self._chain = chain_extend(self._chain, crc)
        self._pending += 1
        kind = payload.get("t", "unknown")
        counter = self._m_records.get(kind)
        if counter is None:
            counter = self._registry.counter("store_records_total", kind=kind)
            self._m_records[kind] = counter
        counter.inc()
        self._m_bytes.inc(len(line.encode("utf-8")))
        fault_point("post-append", seq, self._acked_seq)
        if self._pending >= self.fsync_every:
            self.sync()
        return seq

    def _roll(self, first_seq: int) -> None:
        """Close the active segment (synced) and start a new one."""
        if self._handle is not None:
            self.sync()
            self._handle.close()
        path = self.wal_dir / segment_name(first_seq)
        self._handle = open(path, "w", encoding="utf-8", buffering=1)
        self._segment_records = 0
        self._m_segments.inc()

    def sync(self) -> int:
        """Flush + fsync pending records; returns the new acked seq."""
        if self._handle is not None and self._pending:
            fault_point("pre-fsync", self.last_seq, self._acked_seq)
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._acked_seq = self.last_seq
            self._pending = 0
            self._m_fsyncs.inc()
            fault_point("post-fsync", self.last_seq, self._acked_seq)
        return self._acked_seq

    def close(self) -> None:
        if self._handle is not None:
            self.sync()
            self._handle.close()
            self._handle = None


# -- reader ------------------------------------------------------------------

class WalReader:
    """Reads records in sequence order, verifying CRCs and contiguity.

    After (or during) iteration, :attr:`last_seq`, :attr:`chain` and
    :attr:`truncated_lines` describe what was read.  A torn tail — one
    or more undecodable/mismatching lines at the *end of the last
    segment*, the signature of a crash mid-write — is tolerated:
    iteration stops at the last valid record (and the file is truncated
    back to it when ``repair=True``).  Invalid data anywhere else is
    structural corruption and raises :class:`WalError`.
    """

    def __init__(self, wal_dir: PathLike, *, start_seq: int = 1,
                 chain: int = 0) -> None:
        self.wal_dir = Path(wal_dir)
        self.start_seq = start_seq
        self.chain = chain
        self.last_seq = start_seq - 1
        self.truncated_lines = 0
        self.segments_read = 0

    @staticmethod
    def _parse(line: str) -> Optional[Dict]:
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            return None
        if not isinstance(record, dict) or not verify_record(record):
            return None
        return record

    def _segments(self) -> List[Path]:
        """Segments that can hold records >= ``start_seq``.

        Compacted-away prefixes leave no files; a leftover segment from
        a crash mid-compaction is included and filtered record-by-record.
        """
        segments = list_segments(self.wal_dir)
        selected: List[Path] = []
        straddler: Optional[Path] = None
        for path in segments:
            if segment_first_seq(path.name) >= self.start_seq:
                selected.append(path)
            else:
                straddler = path  # highest first_seq below start wins
        if straddler is not None:
            selected.insert(0, straddler)
        return selected

    def records(self, *, repair: bool = False) -> Iterator[Dict]:
        expected = self.start_seq
        selected = self._segments()
        for index, path in enumerate(selected):
            self.segments_read += 1
            last_segment = index == len(selected) - 1
            lines = path.read_text(encoding="utf-8").split("\n")
            lines = [(number, line) for number, line in enumerate(lines, 1)
                     if line.strip()]
            for position, (line_number, line) in enumerate(lines):
                record = self._parse(line)
                if record is None:
                    if last_segment and not any(
                            self._parse(later) is not None
                            for _, later in lines[position + 1:]):
                        # Torn tail: a crash interrupted the final write.
                        self.truncated_lines = len(lines) - position
                        if repair:
                            self._truncate(path, lines[:position])
                        return
                    raise WalError(
                        f"{path.name}:{line_number}: corrupt WAL record")
                if record["seq"] < self.start_seq:
                    continue  # pre-compaction leftovers
                if record["seq"] != expected:
                    raise WalError(
                        f"{path.name}:{line_number}: sequence gap — "
                        f"expected {expected}, found {record['seq']}")
                self.chain = chain_extend(self.chain, record["crc"])
                self.last_seq = expected
                expected += 1
                yield record

    def _truncate(self, path: Path, keep: List[Tuple[int, str]]) -> None:
        """Rewrite ``path`` with only its valid prefix (torn-tail repair)."""
        text = "".join(line + "\n" for _, line in keep)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(text, encoding="utf-8")
        os.replace(tmp, path)


def read_all(wal_dir: PathLike, *, start_seq: int = 1, chain: int = 0,
             repair: bool = False) -> Tuple[List[Dict], "WalReader"]:
    """All surviving records plus the reader holding scan statistics."""
    reader = WalReader(wal_dir, start_seq=start_seq, chain=chain)
    return list(reader.records(repair=repair)), reader
