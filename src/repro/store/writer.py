"""StoreWriter: the bus stage that streams a run into the store.

In a **fresh** run the writer appends every event straight to the WAL:
sightings (from the event bus), scheduler admissions and probe grabs
(via hooks the engines call), and per-day progress marks.

In a **resumed** run the writer starts in *verify* mode.  Recovery here
is deterministic replay: the whole simulation re-runs from genesis
under the original seed, and every record it regenerates is checked
against the surviving log — sequence numbers and CRCs must match
record-for-record (the compacted prefix is checked via the chain CRC at
the compaction horizon instead, since its records no longer exist).
The instant replay reaches the end of the log, the writer switches to
*live* mode at record granularity and the very same run continues,
appending new records as if the crash never happened.  Any divergence —
a config edit, a code change, a corrupted log — surfaces as a
:class:`~repro.store.wal.RecoveryError` at the first differing record
rather than as silently forked history.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Type

from repro.ipv6 import address as addrmod
from repro.obs.metrics import current_registry
from repro.runtime.bus import AddressSighted, Event, Handler
from repro.runtime.stage import Stage
from repro.store.checkpoint import Checkpoint
from repro.store.runstore import Recovery, RunStore
from repro.store.wal import RecoveryError, chain_extend, record_crc


class StoreWriter(Stage):
    """Streams pipeline events into a :class:`RunStore`'s WAL."""

    name = "store-writer"

    def __init__(self, store: RunStore,
                 recovery: Optional[Recovery] = None) -> None:
        super().__init__()
        self.store = store
        self._recovery = recovery
        self._wal = None
        self._seq = 0      # last regenerated/appended seq (verify mode)
        self._chain = 0
        self._cursor = 0   # next recovery record to verify against
        metrics = current_registry()
        self._m_replayed = metrics.counter("store_recovery_replayed_total")
        self._m_chain_checks = metrics.counter("store_chain_checks_total")
        if recovery is None or recovery.last_seq == 0:
            self._mode = "live"
            self._wal = (store.new_writer() if recovery is None
                         else store.writer_for_append(recovery))
        else:
            self._mode = "verify"

    # -- introspection -----------------------------------------------------

    @property
    def mode(self) -> str:
        """``"verify"`` while replaying logged history, ``"live"`` after."""
        return self._mode

    @property
    def last_seq(self) -> int:
        return self._wal.last_seq if self._mode == "live" else self._seq

    @property
    def acked_seq(self) -> int:
        """Durability horizon (replayed history is durable by definition)."""
        return self._wal.acked_seq if self._mode == "live" else self._seq

    # -- the one funnel ----------------------------------------------------

    def emit(self, payload: Dict) -> int:
        """Record one event; returns its sequence number.

        Live mode appends to the WAL.  Verify mode checks the
        regenerated record against logged history and switches to live
        mode when the log runs out.
        """
        self.mark_received()
        if self._mode == "live":
            seq = self._wal.append(payload)
            self.mark_processed()
            return seq
        recovery = self._recovery
        seq = self._seq + 1
        crc = record_crc(seq, payload)
        self._chain = chain_extend(self._chain, crc)
        if seq <= recovery.compacted_through:
            # Compacted prefix: the records are gone; the chain CRC at
            # the horizon is the only (and sufficient) witness.
            if (seq == recovery.compacted_through
                    and self._chain != recovery.chain_at_compaction):
                raise RecoveryError(
                    f"replay diverged inside the compacted prefix: chain "
                    f"mismatch at seq {seq} — the store was written by a "
                    "different config, seed, or code version")
            if seq == recovery.compacted_through:
                self._m_chain_checks.inc()
        else:
            expected = recovery.records[self._cursor]
            if expected["seq"] != seq or expected["crc"] != crc:
                raise RecoveryError(
                    f"replay diverged at seq {seq}: regenerated record "
                    f"(crc {crc}) does not match logged record "
                    f"(seq {expected['seq']}, crc {expected['crc']}) — "
                    "the store was written by a different config, seed, "
                    "or code version")
            self._cursor += 1
        self._seq = seq
        self._m_replayed.inc()
        self.mark_processed()
        if seq == recovery.last_seq:
            self._switch_live()
        return seq

    def _switch_live(self) -> None:
        self._wal = self.store.writer_for_append(self._recovery)
        self._mode = "live"

    # -- event sources -----------------------------------------------------

    def subscriptions(self) -> Mapping[Type[Event], Handler]:
        return {AddressSighted: self._on_sighting}

    def _on_sighting(self, event: AddressSighted) -> None:
        self.emit({"t": "sighting",
                   "addr": addrmod.format_address(event.address),
                   "time": event.time,
                   "server": event.server_location})

    def admit_sink(self, engine_name: str) -> Callable[[int, float], None]:
        """A scheduler admit-hook recording admissions for ``engine_name``."""

        def sink(target: int, now: float) -> None:
            self.emit({"t": "admit", "engine": engine_name,
                       "addr": addrmod.format_address(target), "time": now})

        return sink

    def grab_sink(self, label: str) -> Callable[[object], None]:
        """A probe grab-hook recording results under scan ``label``."""
        from repro.io.jsonl import grab_to_json

        def sink(grab) -> None:
            self.emit({"t": "grab", "label": label, **grab_to_json(grab)})

        return sink

    def mark(self, phase: str, day: int, clock: float,
             targets: Dict[str, int]) -> int:
        """A progress mark: phase/day boundary + cumulative denominators."""
        return self.emit({"t": "mark", "phase": phase, "day": day,
                          "clock": clock, "targets": targets})

    # -- durability points -------------------------------------------------

    def checkpoint(self, state_fn: Callable[[], Dict],
                   *, compact: bool = False) -> Optional[Checkpoint]:
        """Sync the WAL, snapshot state, optionally compact old segments.

        ``state_fn`` is a thunk so resumed runs skip the snapshot cost:
        in verify mode the checkpoints already exist for this prefix and
        the call is a no-op.  Compaction is opt-in (``repro store
        compact`` or ``compact=True``): it trades replayable/analyzable
        history for disk, so the pipeline never triggers it implicitly.
        """
        if self._mode != "live":
            return None
        from repro.store.wal import fault_point

        self._wal.sync()
        checkpoint = Checkpoint(seq=self._wal.last_seq, chain=self._wal.chain,
                                state=state_fn())
        fault_point("checkpoint", checkpoint.seq, self._wal.acked_seq)
        self.store.write_checkpoint(checkpoint)
        if compact:
            self.store.compact()
        return checkpoint

    def close(self) -> None:
        """Final sync + release; errors if replay never caught up."""
        if self._mode == "live":
            if self._wal is not None:
                self._wal.close()
                self._wal = None
            return
        raise RecoveryError(
            f"replay finished at seq {self._seq} but the log continues to "
            f"seq {self._recovery.last_seq} — the store holds more history "
            "than this configuration regenerates")
