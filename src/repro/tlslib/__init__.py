"""TLS substrate: keys, certificates, and a byte-level mini handshake."""

from repro.tlslib.certificate import (
    PUBLIC_CA,
    Certificate,
    CertificateDecodeError,
    issue_public,
    issue_self_signed,
)
from repro.tlslib.handshake import (
    ALERT_HANDSHAKE_FAILURE,
    ALERT_UNRECOGNIZED_NAME,
    HandshakeResult,
    HandshakeStatus,
    TlsTerminator,
    client_hello,
    parse_client_hello,
    perform_handshake,
)
from repro.tlslib.keys import KeyIdentity, KeyPool, derive_key, unique_fingerprints

__all__ = [
    "ALERT_HANDSHAKE_FAILURE",
    "ALERT_UNRECOGNIZED_NAME",
    "Certificate",
    "CertificateDecodeError",
    "HandshakeResult",
    "HandshakeStatus",
    "KeyIdentity",
    "KeyPool",
    "PUBLIC_CA",
    "TlsTerminator",
    "client_hello",
    "derive_key",
    "issue_public",
    "issue_self_signed",
    "parse_client_hello",
    "perform_handshake",
    "unique_fingerprints",
]
