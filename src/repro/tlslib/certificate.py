"""X.509-like certificates as observable objects.

A certificate carries exactly the fields the paper's analyses read:
subject/issuer names, validity window, SAN list, the public-key
identity, and a stable fingerprint.  Certificates serialize to a compact
binary TLV form so the TLS handshake can ship them as real bytes and
the scan module can parse them back.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.tlslib.keys import KeyIdentity, derive_key

#: Issuer name used for publicly trusted (Let's-Encrypt-like) certs.
PUBLIC_CA = "R11 Sim Trust Services"


class CertificateDecodeError(ValueError):
    """Raised when bytes do not form a valid certificate blob."""


@dataclass(frozen=True)
class Certificate:
    """One leaf certificate as seen in a TLS handshake."""

    subject: str
    issuer: str
    not_before: float
    not_after: float
    key: KeyIdentity
    san: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def self_signed(self) -> bool:
        return self.subject == self.issuer

    @property
    def publicly_trusted(self) -> bool:
        return self.issuer == PUBLIC_CA

    def expired(self, now: float) -> bool:
        return now > self.not_after

    def valid_at(self, now: float) -> bool:
        return self.not_before <= now <= self.not_after

    @property
    def fingerprint(self) -> bytes:
        """SHA-256 over the encoded form — the dedup identity."""
        return hashlib.sha256(self.encode()).digest()

    def matches_hostname(self, hostname: str) -> bool:
        """Simple SAN matching with single-label wildcard support."""
        for name in self.san or (self.subject,):
            if name == hostname:
                return True
            if name.startswith("*.") and "." in hostname:
                if hostname.split(".", 1)[1] == name[2:]:
                    return True
        return False

    # -- wire form ------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize: length-prefixed UTF-8 fields + doubles + key blob.

        SAN entries are individually length-prefixed (a delimiter would
        corrupt names containing the delimiter character).
        """
        out = bytearray()
        for part in (self.subject, self.issuer, self.key.algorithm):
            raw = part.encode("utf-8")
            out += struct.pack("!H", len(raw)) + raw
        out += struct.pack("!H", len(self.san))
        for name in self.san:
            raw = name.encode("utf-8")
            out += struct.pack("!H", len(raw)) + raw
        out += struct.pack("!dd", self.not_before, self.not_after)
        out += struct.pack("!H", len(self.key.fingerprint))
        out += self.key.fingerprint
        return bytes(out)

    @classmethod
    def decode(cls, data: bytes) -> "Certificate":
        """Parse the TLV form produced by :meth:`encode`."""

        def read_string(offset: int) -> tuple[str, int]:
            (length,) = struct.unpack_from("!H", data, offset)
            offset += 2
            raw = data[offset:offset + length]
            if len(raw) != length:
                raise CertificateDecodeError("truncated certificate field")
            return raw.decode("utf-8"), offset + length

        try:
            offset = 0
            subject, offset = read_string(offset)
            issuer, offset = read_string(offset)
            algorithm, offset = read_string(offset)
            (san_count,) = struct.unpack_from("!H", data, offset)
            offset += 2
            san = []
            for _ in range(san_count):
                name, offset = read_string(offset)
                san.append(name)
            not_before, not_after = struct.unpack_from("!dd", data, offset)
            offset += 16
            (key_length,) = struct.unpack_from("!H", data, offset)
            offset += 2
            fingerprint = data[offset:offset + key_length]
            if len(fingerprint) != key_length:
                raise CertificateDecodeError("truncated key fingerprint")
        except struct.error as exc:
            raise CertificateDecodeError(str(exc)) from exc
        return cls(
            subject=subject,
            issuer=issuer,
            not_before=not_before,
            not_after=not_after,
            key=KeyIdentity(fingerprint=fingerprint, algorithm=algorithm),
            san=tuple(san),
        )


def issue_public(subject: str, key: Optional[KeyIdentity] = None, *,
                 issued_at: float = 0.0,
                 lifetime: float = 90 * 86_400.0) -> Certificate:
    """A publicly trusted (ACME-style) 90-day certificate."""
    return Certificate(
        subject=subject,
        issuer=PUBLIC_CA,
        not_before=issued_at,
        not_after=issued_at + lifetime,
        key=key or derive_key(f"cert|{subject}|{issued_at}", "rsa-2048"),
        san=(subject,),
    )


def issue_self_signed(subject: str, key: Optional[KeyIdentity] = None, *,
                      issued_at: float = 0.0,
                      lifetime: float = 3650 * 86_400.0) -> Certificate:
    """A device-style self-signed certificate (often very long-lived)."""
    return Certificate(
        subject=subject,
        issuer=subject,
        not_before=issued_at,
        not_after=issued_at + lifetime,
        key=key or derive_key(f"selfsigned|{subject}|{issued_at}", "rsa-2048"),
        san=(subject,),
    )
