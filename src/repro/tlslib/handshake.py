"""A miniature TLS: record layer, ClientHello/ServerHello, alerts.

This is not a secure channel — it is the *observable surface* of a TLS
handshake, at byte level: the scanner sends a ClientHello record
(optionally with an SNI extension), and the server answers either with
a ServerHello + Certificate record or with a fatal alert.

Implementing the SNI path for real matters: the paper attributes the
TUM hitlist's abysmal HTTPS success rate to hundreds of millions of
CDN (Cloudfront) front addresses that abort the handshake when the
probe carries no hostname.  Our CDN device model requires SNI and
answers ``unrecognized_name`` otherwise, reproducing that artefact
through the same mechanism.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Dict, Optional

from repro.net.simnet import Stream
from repro.tlslib.certificate import Certificate, CertificateDecodeError

#: TLS record content types.
RECORD_HANDSHAKE = 22
RECORD_ALERT = 21

#: Handshake message types.
HS_CLIENT_HELLO = 1
HS_SERVER_HELLO = 2
HS_CERTIFICATE = 11

#: TLS 1.2 wire version.
VERSION = 0x0303

#: Alert descriptions.
ALERT_HANDSHAKE_FAILURE = 40
ALERT_UNRECOGNIZED_NAME = 112


class TlsDecodeError(ValueError):
    """Raised on malformed TLS records."""


def _record(content_type: int, payload: bytes) -> bytes:
    return struct.pack("!BHH", content_type, VERSION, len(payload)) + payload


def _parse_record(data: bytes) -> tuple[int, bytes, bytes]:
    """Return (content_type, payload, remainder)."""
    if len(data) < 5:
        raise TlsDecodeError("record too short for header")
    content_type, version, length = struct.unpack("!BHH", data[:5])
    if version >> 8 != 0x03:
        raise TlsDecodeError(f"not a TLS record (version {version:#06x})")
    payload = data[5:5 + length]
    if len(payload) != length:
        raise TlsDecodeError("truncated record payload")
    return content_type, payload, data[5 + length:]


def client_hello(hostname: Optional[str] = None,
                 client_random: bytes = b"\x00" * 32) -> bytes:
    """Encode a ClientHello record, optionally carrying SNI."""
    if len(client_random) != 32:
        raise ValueError("client_random must be 32 bytes")
    sni = (hostname or "").encode("idna" if hostname else "ascii")
    body = client_random + struct.pack("!H", len(sni)) + sni
    message = struct.pack("!B", HS_CLIENT_HELLO)
    message += len(body).to_bytes(3, "big") + body
    return _record(RECORD_HANDSHAKE, message)


def parse_client_hello(data: bytes) -> Optional[str]:
    """Extract the SNI hostname from a ClientHello record (None if absent).

    Raises :class:`TlsDecodeError` when the bytes are not a ClientHello.
    """
    content_type, payload, _ = _parse_record(data)
    if content_type != RECORD_HANDSHAKE or not payload:
        raise TlsDecodeError("not a handshake record")
    if payload[0] != HS_CLIENT_HELLO:
        raise TlsDecodeError(f"unexpected handshake type {payload[0]}")
    length = int.from_bytes(payload[1:4], "big")
    body = payload[4:4 + length]
    if len(body) != length or length < 34:
        raise TlsDecodeError("truncated ClientHello")
    (sni_length,) = struct.unpack_from("!H", body, 32)
    sni = body[34:34 + sni_length]
    if len(sni) != sni_length:
        raise TlsDecodeError("truncated SNI")
    return sni.decode("ascii") if sni else None


def server_hello(certificate: Certificate,
                 server_random: bytes = b"\x01" * 32) -> bytes:
    """Encode ServerHello + Certificate as one flight of records."""
    hello_body = server_random
    hello = struct.pack("!B", HS_SERVER_HELLO)
    hello += len(hello_body).to_bytes(3, "big") + hello_body
    cert_blob = certificate.encode()
    cert = struct.pack("!B", HS_CERTIFICATE)
    cert += len(cert_blob).to_bytes(3, "big") + cert_blob
    return _record(RECORD_HANDSHAKE, hello) + _record(RECORD_HANDSHAKE, cert)


def alert(description: int) -> bytes:
    """Encode a fatal alert record."""
    return _record(RECORD_ALERT, bytes((2, description)))


class HandshakeStatus(enum.Enum):
    """Client-side outcome categories the scanner records."""

    OK = "ok"
    ALERT = "alert"
    NOT_TLS = "not-tls"
    NO_RESPONSE = "no-response"


@dataclass(frozen=True)
class HandshakeResult:
    """What one TLS probe learned."""

    status: HandshakeStatus
    certificate: Optional[Certificate] = None
    alert_description: Optional[int] = None

    @property
    def succeeded(self) -> bool:
        return self.status is HandshakeStatus.OK


def perform_handshake(stream: Stream,
                      hostname: Optional[str] = None) -> HandshakeResult:
    """Run the client side of the mini-TLS handshake over a stream."""
    response = stream.write(client_hello(hostname))
    if response is None:
        return HandshakeResult(status=HandshakeStatus.NO_RESPONSE)
    try:
        content_type, payload, remainder = _parse_record(response)
    except TlsDecodeError:
        return HandshakeResult(status=HandshakeStatus.NOT_TLS)
    if content_type == RECORD_ALERT:
        description = payload[1] if len(payload) >= 2 else None
        return HandshakeResult(
            status=HandshakeStatus.ALERT, alert_description=description
        )
    if content_type != RECORD_HANDSHAKE:
        return HandshakeResult(status=HandshakeStatus.NOT_TLS)
    # Expect the certificate in the follow-up record of the same flight.
    try:
        cert_type, cert_payload, _ = _parse_record(remainder)
    except TlsDecodeError:
        return HandshakeResult(status=HandshakeStatus.NOT_TLS)
    if cert_type != RECORD_HANDSHAKE or not cert_payload or \
            cert_payload[0] != HS_CERTIFICATE:
        return HandshakeResult(status=HandshakeStatus.NOT_TLS)
    length = int.from_bytes(cert_payload[1:4], "big")
    blob = cert_payload[4:4 + length]
    try:
        certificate = Certificate.decode(blob)
    except CertificateDecodeError:
        return HandshakeResult(status=HandshakeStatus.NOT_TLS)
    return HandshakeResult(status=HandshakeStatus.OK, certificate=certificate)


class TlsTerminator:
    """Server-side handshake policy: which cert to serve to which SNI.

    Device models embed one of these in front of their TLS-enabled
    services.  With ``require_sni`` set (CDN fronts), a ClientHello
    without a hostname gets a fatal ``unrecognized_name`` alert.
    """

    def __init__(self, certificate: Optional[Certificate] = None, *,
                 require_sni: bool = False,
                 sni_certificates: Optional[Dict[str, Certificate]] = None) -> None:
        if certificate is None and not sni_certificates:
            raise ValueError("terminator needs a default or SNI certificate")
        self.certificate = certificate
        self.require_sni = require_sni
        self.sni_certificates = dict(sni_certificates or {})

    def respond(self, data: bytes) -> bytes:
        """Consume a ClientHello, produce the server flight or an alert."""
        try:
            hostname = parse_client_hello(data)
        except TlsDecodeError:
            return alert(ALERT_HANDSHAKE_FAILURE)
        if hostname and hostname in self.sni_certificates:
            return server_hello(self.sni_certificates[hostname])
        if self.require_sni and not hostname:
            return alert(ALERT_UNRECOGNIZED_NAME)
        if self.certificate is None:
            return alert(ALERT_UNRECOGNIZED_NAME)
        return server_hello(self.certificate)
