"""Deterministic key material for TLS certificates and SSH host keys.

Real cryptography is irrelevant to every analysis in the paper — what
matters is *identity*: the scanner deduplicates hosts by certificate and
host-key fingerprints, and Section 6 measures how widely one key is
shared across addresses and ASes.  A key here is therefore a stable
SHA-256-derived fingerprint over a seed, plus the algorithm label the
grab reports.

:class:`KeyPool` models the paper's key-reuse root cause: pre-built
system/container images that ship identical secrets, so many devices
draw the *same* key object from a small pool.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Sequence


@dataclass(frozen=True)
class KeyIdentity:
    """One (a)symmetric key as the scanner can observe it."""

    fingerprint: bytes
    algorithm: str = "ssh-ed25519"

    @property
    def hex(self) -> str:
        return self.fingerprint.hex()

    @property
    def short(self) -> str:
        """First 8 hex chars — convenient for table rendering."""
        return self.fingerprint.hex()[:8]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.algorithm}:{self.short}"


def derive_key(seed: str, algorithm: str = "ssh-ed25519") -> KeyIdentity:
    """Derive a stable key identity from an arbitrary seed string."""
    digest = hashlib.sha256(f"key|{algorithm}|{seed}".encode()).digest()
    return KeyIdentity(fingerprint=digest, algorithm=algorithm)


class KeyPool:
    """A finite pool of keys shared among many devices.

    ``reuse_rate`` is the probability that a new device draws a key from
    the shared pool instead of generating a unique one.  Pool keys are
    generated lazily on first draw so small experiments stay small.
    """

    def __init__(self, name: str, size: int, reuse_rate: float,
                 algorithm: str = "ssh-ed25519") -> None:
        if size <= 0:
            raise ValueError(f"pool size must be positive, got {size}")
        if not 0.0 <= reuse_rate <= 1.0:
            raise ValueError(f"reuse_rate must be in [0, 1], got {reuse_rate}")
        self.name = name
        self.size = size
        self.reuse_rate = reuse_rate
        self.algorithm = algorithm
        self._unique_counter = 0

    def _pool_key(self, index: int) -> KeyIdentity:
        return derive_key(f"pool|{self.name}|{index}", self.algorithm)

    def draw(self, rng: random.Random) -> KeyIdentity:
        """Draw a key for a new device: shared or unique."""
        if rng.random() < self.reuse_rate:
            return self._pool_key(rng.randrange(self.size))
        self._unique_counter += 1
        return derive_key(
            f"unique|{self.name}|{self._unique_counter}|{rng.getrandbits(64)}",
            self.algorithm,
        )

    def shared_keys(self) -> List[KeyIdentity]:
        """All keys in the shared portion of the pool."""
        return [self._pool_key(index) for index in range(self.size)]


def unique_fingerprints(keys: Sequence[KeyIdentity]) -> int:
    """Number of distinct keys in a sequence (Table 2's #Certs/Keys)."""
    return len({key.fingerprint for key in keys})
