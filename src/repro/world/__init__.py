"""Synthetic Internet population: ASes, geography, devices, churn, hitlist."""

from repro.world.asdb import AsDatabase, AutonomousSystem, build_asdb
from repro.world.churn import ChurnModel, Premises
from repro.world.devices import Device
from repro.world.geo import DEPLOYMENT_COUNTRIES, Country, GeoDatabase, default_geo
from repro.world.hitlist import Hitlist, HitlistConfig, build_hitlist
from repro.world.population import World, WorldConfig, build_world
from repro.world.tga import EntropyTga, train as train_tga

__all__ = [
    "AsDatabase",
    "AutonomousSystem",
    "ChurnModel",
    "Country",
    "DEPLOYMENT_COUNTRIES",
    "Device",
    "GeoDatabase",
    "Hitlist",
    "HitlistConfig",
    "Premises",
    "World",
    "WorldConfig",
    "EntropyTga",
    "build_asdb",
    "build_hitlist",
    "build_world",
    "default_geo",
    "train_tga",
]
