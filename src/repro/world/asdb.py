"""Autonomous-system registry with PeeringDB-style categories.

Gives every simulated prefix an origin AS, every AS a country and a
business category.  The paper uses exactly two things from the real
counterparts (PeeringDB, RIPE RIS, RIR delegation files): the
address→AS mapping for counting ASes/overlaps (Table 1) and the
"Cable/DSL/ISP" category share (Figure 1, right).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.ipv6 import address as addr
from repro.ipv6.columnar import AddressColumn

#: PeeringDB-inspired network categories.
CATEGORIES = (
    "Cable/DSL/ISP",
    "NSP",
    "Content",
    "Enterprise",
    "Educational/Research",
    "Non-Profit",
)

#: Category mix per AS *kind* used by the world generator.
EYEBALL = "Cable/DSL/ISP"
CLOUD = "Content"


@dataclass(frozen=True)
class AutonomousSystem:
    """One AS: number, descriptive name, category, home country."""

    number: int
    name: str
    category: str
    country: str


class AsDatabase:
    """Prefix-indexed AS registry.

    Allocation hands each AS a set of /32 blocks inside the simulated
    global unicast space ``2000::/12``; lookups shift an address down to
    its /32 and consult a dict, which is O(1) and fast enough for tens
    of millions of lookups.
    """

    #: All allocations live under this prefix.
    GLOBAL_UNICAST = addr.parse("2000::")

    def __init__(self) -> None:
        self._systems: Dict[int, AutonomousSystem] = {}
        self._prefix_owner: Dict[int, int] = {}  # /32 key -> ASN
        self._allocations: Dict[int, List[int]] = {}  # ASN -> [/32 keys]
        self._next_slot = 1

    # -- registration ---------------------------------------------------

    def register(self, system: AutonomousSystem, block_count: int = 1) -> None:
        """Register an AS and allocate ``block_count`` /32 blocks to it."""
        if system.number in self._systems:
            raise ValueError(f"AS{system.number} already registered")
        if block_count <= 0:
            raise ValueError("block_count must be positive")
        self._systems[system.number] = system
        slots = []
        for _ in range(block_count):
            key = (self.GLOBAL_UNICAST >> 96) + self._next_slot
            self._next_slot += 1
            self._prefix_owner[key] = system.number
            slots.append(key)
        self._allocations[system.number] = slots

    # -- lookups ----------------------------------------------------------

    def lookup(self, address_value: int) -> Optional[AutonomousSystem]:
        """Origin AS of an address (None when unrouted)."""
        asn = self._prefix_owner.get(address_value >> 96)
        return self._systems.get(asn) if asn is not None else None

    def lookup_asn(self, address_value: int) -> Optional[int]:
        return self._prefix_owner.get(address_value >> 96)

    def country_of(self, address_value: int) -> Optional[str]:
        """Country of an address, via its origin AS."""
        system = self.lookup(address_value)
        return system.country if system else None

    def system(self, asn: int) -> AutonomousSystem:
        return self._systems[asn]

    @property
    def systems(self) -> Tuple[AutonomousSystem, ...]:
        return tuple(self._systems.values())

    def blocks_of(self, asn: int) -> List[int]:
        """The /32 base addresses allocated to an AS."""
        return [key << 96 for key in self._allocations[asn]]

    def prefix_for(self, asn: int, index: int, length: int = 48) -> int:
        """Deterministic ``index``-th /length prefix inside the AS's space.

        Spreads prefixes across the AS's /32 blocks round-robin, then
        linearly within a block.
        """
        blocks = self._allocations[asn]
        if not blocks:
            raise KeyError(f"AS{asn} has no allocations")
        block_key = blocks[index % len(blocks)]
        within = index // len(blocks)
        capacity = 1 << (length - 32)
        if within >= capacity:
            raise ValueError(f"AS{asn} /32 exhausted at /{length} index {index}")
        return (block_key << 96) + (within << (128 - length))

    # -- aggregate views --------------------------------------------------
    #
    # Allocations are /32-granular, so every per-address AS property is
    # constant within a /32.  The columnar paths below bucket a packed
    # AddressColumn by /32 first and resolve one lookup per *distinct*
    # network instead of one per address — exactly equal counts, since
    # the scalar loops only ever consult ``value >> 96``.

    def distinct_as_count(self, addresses: Iterable[int]) -> int:
        """Number of distinct origin ASes among routed addresses."""
        if isinstance(addresses, AddressColumn):
            owners = self._prefix_owner
            return len({owners[key]
                        for key in addresses.distinct_network_keys(32)
                        if key in owners})
        seen = set()
        for value in addresses:
            asn = self.lookup_asn(value)
            if asn is not None:
                seen.add(asn)
        return len(seen)

    def category_share(self, addresses: Iterable[int], category: str) -> float:
        """Share of addresses whose origin AS has ``category``.

        Unrouted addresses count toward the denominator, mirroring how
        the paper normalizes by all collected addresses.
        """
        if isinstance(addresses, AddressColumn):
            total = len(addresses)
            matching = 0
            for key, count in addresses.network_key_counts(32).items():
                asn = self._prefix_owner.get(key)
                if asn is not None and \
                        self._systems[asn].category == category:
                    matching += count
            return matching / total if total else 0.0
        total = 0
        matching = 0
        for value in addresses:
            total += 1
            system = self.lookup(value)
            if system is not None and system.category == category:
                matching += 1
        return matching / total if total else 0.0

    def as_counts(self, addresses: "AddressColumn") -> Dict[int, int]:
        """``{asn: n addresses}`` for a packed column (routed only)."""
        per_as: Dict[int, int] = {}
        owners = self._prefix_owner
        for key, count in addresses.network_key_counts(32).items():
            asn = owners.get(key)
            if asn is not None:
                per_as[asn] = per_as.get(asn, 0) + count
        return per_as


def _eyeball_name(country: str, index: int) -> str:
    return f"{country} Broadband-{index}"


def build_asdb(geo_codes: Iterable[str], *, eyeballs_per_country: int = 3,
               hosting_count: int = 12, cloud_count: int = 3,
               education_count: int = 4, nsp_count: int = 6,
               rng: Optional[random.Random] = None,
               base_asn: int = 64500) -> AsDatabase:
    """Construct the standard AS layout for a world.

    Per country: a handful of eyeball ISPs (Cable/DSL/ISP).  Globally:
    hosting/content providers, hyperscale clouds (with many /32s —
    where CDN fronts live), research networks and transit NSPs.
    """
    rng = rng or random.Random(0xA5DB)
    db = AsDatabase()
    asn = base_asn
    codes = list(geo_codes)
    for country in codes:
        for index in range(eyeballs_per_country):
            db.register(AutonomousSystem(
                number=asn, name=_eyeball_name(country, index + 1),
                category=EYEBALL, country=country,
            ), block_count=rng.randint(1, 2))
            asn += 1
    for index in range(hosting_count):
        db.register(AutonomousSystem(
            number=asn, name=f"SimHost-{index + 1}",
            category="Content", country=rng.choice(codes),
        ), block_count=1)
        asn += 1
    for index in range(cloud_count):
        db.register(AutonomousSystem(
            number=asn, name=f"HyperCloud-{index + 1}",
            category="Content", country="US",
        ), block_count=4)
        asn += 1
    for index in range(education_count):
        db.register(AutonomousSystem(
            number=asn, name=f"SimResearchNet-{index + 1}",
            category="Educational/Research", country=rng.choice(codes),
        ), block_count=1)
        asn += 1
    for index in range(nsp_count):
        db.register(AutonomousSystem(
            number=asn, name=f"SimTransit-{index + 1}",
            category="NSP", country=rng.choice(codes),
        ), block_count=1)
        asn += 1
    return db
