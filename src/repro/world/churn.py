"""Dynamic addressing: prefix rotation and privacy-IID churn.

Two mechanisms make end-user IPv6 addresses short-lived, and both are
central to the paper (they inflate collected-address counts and make
static hitlists stale for eyeball networks):

* **prefix churn** — ISPs delegate a new /56 to a customer premises
  periodically (German ISPs famously rotate daily), moving *every*
  device in the home to new addresses;
* **privacy extensions** — RFC 8981 hosts rotate their interface
  identifier about once a day even under a stable prefix.

The model steps in whole days.  Each premises has a rotation
probability per day; each privacy-addressed device re-draws its IID
daily.  Devices keep their identity (keys, certificates, MAC) across
moves, which is exactly why the paper deduplicates by key/certificate.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.net.clock import VirtualClock
from repro.net.dns import DnsZone
from repro.net.simnet import Network
from repro.world.devices import Device


@dataclass
class Premises:
    """One customer site: a delegated /56 hosting several devices."""

    site_id: int
    asn: int
    country: str
    prefix56: int
    devices: List[Device] = field(default_factory=list)
    #: Per-day probability that the ISP delegates a fresh /56.
    rotation_rate: float = 0.0
    #: Allocation cursor inside the AS (used to derive fresh prefixes).
    allocation_index: int = 0

    def device_prefix64(self, slot: int) -> int:
        """The /64 used by device slot ``slot`` inside the /56."""
        if not 0 <= slot < 256:
            raise ValueError(f"/56 holds 256 /64s, slot {slot} invalid")
        return self.prefix56 + (slot << 64)


class ChurnModel:
    """Advances dynamic addressing one day at a time."""

    def __init__(self, network: Network, rng: random.Random,
                 fresh_prefix56, dns: Optional[DnsZone] = None,
                 clock: Optional[VirtualClock] = None) -> None:
        """``fresh_prefix56(premises) -> int`` allocates a new /56 for a
        rotating premises (provided by the world builder, which owns the
        per-AS address plan).  With a ``dns`` zone attached, devices
        carrying a ``dns_name`` label run a DDNS update after moving."""
        self.network = network
        self.rng = rng
        self._fresh_prefix56 = fresh_prefix56
        self.dns = dns
        self.clock = clock
        self.premises: List[Premises] = []
        self.rotations = 0
        self.iid_rotations = 0
        self.ddns_updates = 0

    def register(self, premises: Premises) -> None:
        self.premises.append(premises)

    def step_day(self) -> None:
        """One day of churn across every registered premises."""
        for site in self.premises:
            if site.rotation_rate > 0 and self.rng.random() < site.rotation_rate:
                self._rotate_prefix(site)
            else:
                self._rotate_privacy_iids(site)

    def _rotate_prefix(self, site: Premises) -> None:
        new56 = self._fresh_prefix56(site)
        site.prefix56 = new56
        for slot, device in enumerate(site.devices):
            device.rehome(self.network, site.device_prefix64(slot), self.rng)
            self._ddns_update(device)
        self.rotations += 1

    def _ddns_update(self, device: Device) -> None:
        if self.dns is None:
            return
        name = device.labels.get("dns_name")
        if name is None:
            return
        now = self.clock.now() if self.clock is not None else 0.0
        self.dns.update(name, device.address, now)
        self.ddns_updates += 1

    def _rotate_privacy_iids(self, site: Premises) -> None:
        for device in site.devices:
            if device.addressing == "privacy":
                device.rotate_iid(self.network, self.rng)
                self.iid_rotations += 1


def stable_premises(site: Premises) -> bool:
    """Whether a premises keeps its prefix for the whole experiment."""
    return site.rotation_rate == 0.0
